//! One tile: an engine, its BPC, and an LLC slice behind a mesh port.

use smappic_coherence::{Bpc, CoreReq, CoreResp, LlcSlice};
use smappic_noc::{Gid, Msg, Packet};
use smappic_sim::{Cycle, MetricsRegistry, Port, SaveState, SnapReader, SnapWriter};

use crate::tri::{Engine, MmioResp, Tri};

/// Shim giving the engine TRI access to the tile's BPC.
struct BpcTri<'a>(&'a mut Bpc);

impl Tri for BpcTri<'_> {
    fn try_request(&mut self, now: Cycle, req: CoreReq) -> Result<(), CoreReq> {
        self.0.request(now, req)
    }
    fn pop_resp(&mut self) -> Option<CoreResp> {
        self.0.pop_resp()
    }
}

/// A BYOC tile: compute engine + private cache + LLC slice + NoC routers
/// (the routers live in the node's [`Mesh`](smappic_noc::Mesh); the tile
/// exposes push/pop endpoints the node wires to its mesh port).
///
/// Incoming packets are dispatched by message type: coherence responses go
/// to the BPC, coherence requests and directory traffic to the LLC slice,
/// interrupt packets to the engine's wires, and non-cacheable accesses to
/// the engine's MMIO handler (this is how accelerator tiles expose their
/// register files, §4.2).
pub struct Tile {
    id: Gid,
    bpc: Bpc,
    llc: LlcSlice,
    engine: Box<dyn Engine>,
    /// MMIO accesses answered `Pending` by the device, retried each tick:
    /// (requester, is_store, addr, size, data).
    pending_mmio: Port<(Gid, bool, u64, u8, u64)>,
    /// Per-virtual-network egress queues: requests blocked by congestion
    /// must never stall the responses queued behind them (protocol
    /// deadlock freedom depends on it).
    out: [Port<Packet>; 3],
    /// Per-component event scheduling: `Some(wake_at)` while ticks are
    /// being skipped because every queue is drained and the engine declared
    /// itself event-free until `wake_at` (see [`Engine::next_event_after`]).
    /// Host-side *derived* state — never serialized, cleared by any
    /// [`Tile::push_noc`] and on restore. Skipped ticks still age the
    /// engine ([`Engine::advance_idle`]), so architectural counters are
    /// never stale.
    sleep_until: Option<Cycle>,
    /// Host-side count of ticks skipped by the scheduler (diagnostics for
    /// `simperf`; not an architectural stat).
    skipped_cycles: u64,
    /// Host fast-path switch. When false the tile never sleeps (every tick
    /// runs the full component pipeline) and the engine decodes every
    /// instruction — the plain reference simulator. Bit-identical either
    /// way; this only changes how much host work each cycle costs.
    fast_path: bool,
}

impl Tile {
    /// Assembles a tile.
    pub fn new(id: Gid, bpc: Bpc, llc: LlcSlice, engine: Box<dyn Engine>) -> Self {
        let out = std::array::from_fn(|vn| Port::elastic_with(format!("out.vn{vn}"), 8));
        Self {
            id,
            bpc,
            llc,
            engine,
            pending_mmio: Port::elastic_with("pending_mmio", 4),
            out,
            sleep_until: None,
            skipped_cycles: 0,
            fast_path: true,
        }
    }

    /// The tile's NoC identity.
    pub fn id(&self) -> Gid {
        self.id
    }

    /// The compute engine (for result inspection).
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// Mutable engine access (program loading, IRQ wires in tests). The
    /// caller may change engine state the scheduler reasoned about, so any
    /// sleep is cancelled.
    pub fn engine_mut(&mut self) -> &mut dyn Engine {
        self.sleep_until = None;
        self.engine.as_mut()
    }

    /// Replaces the compute engine (cores and accelerators are installed
    /// into freshly-built nodes before the run starts).
    pub fn set_engine(&mut self, engine: Box<dyn Engine>) {
        self.sleep_until = None;
        self.engine = engine;
    }

    /// The private cache (stats).
    pub fn bpc(&self) -> &Bpc {
        &self.bpc
    }

    /// Mutable private-cache access (trace enablement and harvest). Cancels
    /// any sleep, since the caller may change state the scheduler assumed
    /// quiescent (waking early is always safe; staying asleep is not).
    pub fn bpc_mut(&mut self) -> &mut Bpc {
        self.sleep_until = None;
        &mut self.bpc
    }

    /// The LLC slice (stats).
    pub fn llc(&self) -> &LlcSlice {
        &self.llc
    }

    /// Mutable LLC-slice access (trace enablement and harvest). Cancels any
    /// sleep, like [`Tile::bpc_mut`].
    pub fn llc_mut(&mut self) -> &mut LlcSlice {
        self.sleep_until = None;
        &mut self.llc
    }

    /// True when the engine finished and all cache machinery is quiescent.
    pub fn is_idle(&self) -> bool {
        self.engine.is_done()
            && self.bpc.is_idle()
            && self.llc.is_idle()
            && self.pending_mmio.is_empty()
            && self.out.iter().all(Port::is_empty)
    }

    /// Merges every port meter in the tile (egress VN queues, MMIO retry
    /// queue, then the BPC's and LLC slice's ports under `.bpc` / `.llc`)
    /// into `m` under `port.{prefix}...`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        for q in &self.out {
            q.meter().merge_into(prefix, m);
        }
        self.pending_mmio.meter().merge_into(prefix, m);
        self.bpc.merge_port_metrics(&format!("{prefix}.bpc"), m);
        self.llc.merge_port_metrics(&format!("{prefix}.llc"), m);
    }

    /// Ticks skipped by the per-component scheduler (host diagnostics).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// True when the tick at `now` is guaranteed to take the skip path
    /// (sleep armed and not yet due). Lets the node elide the surrounding
    /// queue pumping too: a sleeping tile's egress queues are empty by the
    /// sleep predicate.
    pub fn is_sleeping(&self, now: Cycle) -> bool {
        self.sleep_until.is_some_and(|w| now < w)
    }

    /// The armed wake cycle, if the tile is sleeping. While armed, every
    /// tick strictly before it takes the skip path, so a caller may batch
    /// those ticks with [`Tile::warp_quiet`]. `Cycle::MAX` encodes "only
    /// external input wakes this tile".
    pub fn wake_at(&self) -> Option<Cycle> {
        self.sleep_until
    }

    /// Applies the `delta` skipped ticks of `[now, now + delta)` in one
    /// step: exactly what that many per-cycle skip paths would have done
    /// (engine aging, the LLC slice clock, the host skip counter). Caller
    /// guarantees the sleep covers the whole window.
    pub fn warp_quiet(&mut self, now: Cycle, delta: u64) {
        debug_assert!(self.sleep_until.is_some(), "warp_quiet requires an armed sleep");
        self.engine.advance_idle(delta);
        self.llc.sync_quiet(now + delta - 1);
        self.skipped_cycles += delta;
    }

    /// Toggles the tile's host-side fast path: the engine's decoded-block
    /// dispatch *and* the per-component sleep scheduling. Off yields the
    /// plain reference simulator (decode every instruction, tick every
    /// component every cycle). Cancels any sleep immediately.
    pub fn set_fast_path(&mut self, on: bool) {
        self.sleep_until = None;
        self.fast_path = on;
        self.engine.set_fast_path(on);
    }

    /// Decides whether the tick at `next` (and ticks after it, until the
    /// returned cycle) can be skipped: every queue must be drained — so a
    /// tick provably moves nothing — and the engine must schedule no event
    /// before then. `Cycle::MAX` encodes "only external input matters".
    fn sleep_check(&self, next: Cycle) -> Option<Cycle> {
        if !self.bpc.is_quiet()
            || !self.llc.is_quiet()
            || !self.pending_mmio.is_empty()
            || self.out.iter().any(|q| !q.is_empty())
        {
            return None;
        }
        match self.engine.next_event_after(next) {
            None => Some(Cycle::MAX),
            Some(t) if t > next => Some(t),
            Some(_) => None,
        }
    }

    /// Advances one cycle.
    pub fn tick(&mut self, now: Cycle) {
        if let Some(wake) = self.sleep_until {
            if now < wake {
                // Skipped tick: provably a no-op except for engine aging
                // and the LLC slice clock, which are applied eagerly so
                // architectural state (mcycle, compute budgets, the
                // serialized `cur`) is never stale.
                self.engine.advance_idle(1);
                self.llc.sync_quiet(now);
                self.skipped_cycles += 1;
                return;
            }
            self.sleep_until = None;
        }
        self.engine.tick(now, &mut BpcTri(&mut self.bpc));
        self.bpc.tick(now);
        self.llc.tick(now);

        // Retry the oldest pending MMIO access.
        if let Some((src, store, addr, size, data)) = self.pending_mmio.pop() {
            match self.engine.mmio(now, store, addr, size, data) {
                MmioResp::Pending => self.pending_mmio.push_front((src, store, addr, size, data)),
                resp => self.answer_mmio(src, store, addr, resp),
            }
        }

        // Drain cache outputs into the per-VN egress queues.
        while let Some(p) = self.bpc.noc_pop() {
            self.out[p.vn.index()].push(p);
        }
        while let Some(p) = self.llc.noc_pop() {
            self.out[p.vn.index()].push(p);
        }

        self.sleep_until = if self.fast_path { self.sleep_check(now + 1) } else { None };
    }

    fn answer_mmio(&mut self, src: Gid, store: bool, addr: u64, resp: MmioResp) {
        let msg = match (store, resp) {
            (false, MmioResp::Data(d)) => Msg::NcData { addr, data: d },
            (true, _) => Msg::NcAck { addr },
            (false, MmioResp::Ack) => Msg::NcData { addr, data: 0 },
            (_, MmioResp::Pending) => unreachable!("caller filters Pending"),
        };
        let pkt = Packet::on_canonical_vn(src, self.id, msg);
        self.out[pkt.vn.index()].push(pkt);
    }

    /// Delivers a packet from the mesh.
    pub fn push_noc(&mut self, now: Cycle, pkt: Packet) {
        // External input is exactly what a sleeping tile waits for.
        self.sleep_until = None;
        match &pkt.msg {
            // Responses and probes for the private cache.
            Msg::Data { .. }
            | Msg::UpgradeAck { .. }
            | Msg::Inv { .. }
            | Msg::Recall { .. }
            | Msg::Downgrade { .. }
            | Msg::AmoResp { .. }
            | Msg::NcData { .. }
            | Msg::NcAck { .. } => self.bpc.noc_push(pkt),
            // Interrupt wires.
            Msg::Irq { line_no, level } => self.engine.set_irq(*line_no, *level),
            // Device register file.
            Msg::NcLoad { addr, size } => {
                let (addr, size, src) = (*addr, *size, pkt.src);
                match self.engine.mmio(now, false, addr, size, 0) {
                    MmioResp::Pending => self.pending_mmio.push((src, false, addr, size, 0)),
                    resp => self.answer_mmio(src, false, addr, resp),
                }
            }
            Msg::NcStore { addr, size, data } => {
                let (addr, size, data, src) = (*addr, *size, *data, pkt.src);
                match self.engine.mmio(now, true, addr, size, data) {
                    MmioResp::Pending => self.pending_mmio.push((src, true, addr, size, data)),
                    resp => self.answer_mmio(src, true, addr, resp),
                }
            }
            // Everything else belongs to the LLC slice / directory.
            _ => self.llc.noc_push(now, pkt),
        }
    }

    /// Collects the next outgoing packet for the mesh, round-robining over
    /// virtual networks (a blocked VN must not starve the others).
    pub fn pop_noc(&mut self) -> Option<Packet> {
        for q in &mut self.out {
            if let Some(p) = q.pop() {
                return Some(p);
            }
        }
        None
    }

    /// Collects the next outgoing packet on one virtual network.
    pub fn pop_noc_vn(&mut self, vn: usize) -> Option<Packet> {
        self.out[vn].pop()
    }

    /// Returns a popped packet to the head of its egress queue (used when
    /// the mesh refuses injection this cycle).
    pub fn unpop_noc(&mut self, pkt: Packet) {
        self.out[pkt.vn.index()].push_front(pkt);
    }
}

impl SaveState for Tile {
    fn save(&self, w: &mut SnapWriter) {
        w.scoped("bpc", |w| self.bpc.save(w));
        w.scoped("llc", |w| self.llc.save(w));
        w.scoped("engine", |w| self.engine.save_state(w));
        self.pending_mmio.save(w);
        for q in &self.out {
            q.save(w);
        }
    }

    fn restore(&mut self, r: &mut SnapReader) {
        // Scheduler state is derived, never serialized: wake up and let the
        // restored machine re-establish its own sleep schedule.
        self.sleep_until = None;
        r.scoped("bpc", |r| self.bpc.restore(r));
        r.scoped("llc", |r| self.llc.restore(r));
        r.scoped("engine", |r| self.engine.restore_state(r));
        self.pending_mmio.restore(r);
        for q in &mut self.out {
            q.restore(r);
        }
    }
}

impl std::fmt::Debug for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tile")
            .field("id", &self.id)
            .field("engine", &self.engine.label())
            .field("pending_mmio", &self.pending_mmio.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_core::{TraceCore, TraceOp};
    use smappic_coherence::{BpcConfig, Homing, HomingMode, LlcConfig};
    use smappic_noc::{LineData, NodeId};

    fn tile_with(engine: Box<dyn Engine>) -> Tile {
        let id = Gid::tile(NodeId(0), 0);
        let homing = Homing::new(HomingMode::StripeAllNodes, 1, 1);
        let bpc = Bpc::new(BpcConfig::new(id, homing));
        let llc = LlcSlice::new(LlcConfig::new(id));
        Tile::new(id, bpc, llc, engine)
    }

    /// Runs a single-tile "node": packets loop back from the tile to
    /// itself, with MemRd/MemWr answered like a zero DRAM.
    fn run_selfcontained(tile: &mut Tile, max: Cycle) {
        for now in 0..max {
            tile.tick(now);
            let mut moved = Vec::new();
            while let Some(p) = tile.pop_noc() {
                moved.push(p);
            }
            for p in moved {
                match &p.msg {
                    Msg::MemRd { line } => {
                        let reply = Packet::on_canonical_vn(
                            p.src,
                            Gid::chipset(NodeId(0)),
                            Msg::MemData { line: *line, data: LineData::zeroed() },
                        );
                        tile.push_noc(now, reply);
                    }
                    Msg::MemWr { .. } => {}
                    _ => tile.push_noc(now, p),
                }
            }
            if tile.engine().is_done() {
                return;
            }
        }
        panic!("tile program did not finish");
    }

    #[test]
    fn trace_core_runs_against_local_slice() {
        let core = TraceCore::new(
            "t0",
            vec![TraceOp::StoreVal(0x40, 123), TraceOp::Load(0x40), TraceOp::Compute(10)],
        );
        let mut tile = tile_with(Box::new(core));
        run_selfcontained(&mut tile, 50_000);
        assert!(tile.bpc().stats().get("bpc.miss") >= 1);
    }

    #[test]
    fn mmio_pending_is_retried() {
        struct SlowDevice {
            countdown: u32,
        }
        impl Engine for SlowDevice {
            fn tick(&mut self, _now: Cycle, _tri: &mut dyn Tri) {
                self.countdown = self.countdown.saturating_sub(1);
            }
            fn mmio(&mut self, _now: Cycle, _s: bool, _a: u64, _sz: u8, _d: u64) -> MmioResp {
                if self.countdown == 0 {
                    MmioResp::Data(99)
                } else {
                    MmioResp::Pending
                }
            }
            fn label(&self) -> &str {
                "slow"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut tile = tile_with(Box::new(SlowDevice { countdown: 10 }));
        let requester = Gid::tile(NodeId(0), 5);
        tile.push_noc(
            0,
            Packet::on_canonical_vn(tile.id(), requester, Msg::NcLoad { addr: 0xF0, size: 8 }),
        );
        let mut got = None;
        for now in 0..100 {
            tile.tick(now);
            while let Some(p) = tile.pop_noc() {
                if let Msg::NcData { data, .. } = p.msg {
                    assert_eq!(p.dst, requester);
                    got = Some((now, data));
                }
            }
            if got.is_some() {
                break;
            }
        }
        let (t, data) = got.expect("mmio answered");
        assert_eq!(data, 99);
        assert!(t >= 9, "Pending must delay the answer, answered at {t}");
    }

    #[test]
    fn snapshot_round_trip_mid_program_matches_uninterrupted_run() {
        use smappic_sim::{SnapReader, SnapWriter, Snapshot};

        let program = || {
            vec![
                TraceOp::StoreVal(0x40, 11),
                TraceOp::Compute(5),
                TraceOp::StoreVal(0x80, 22),
                TraceOp::Checksum(0x40),
                TraceOp::Checksum(0x80),
                TraceOp::Compute(3),
            ]
        };
        // Uninterrupted reference run.
        let mut reference = tile_with(Box::new(TraceCore::new("t0", program())));
        run_selfcontained(&mut reference, 50_000);

        // Snapshot mid-program (the store has been issued but the checksums
        // have not run), restore into a fresh tile, finish both.
        let mut live = tile_with(Box::new(TraceCore::new("t0", program())));
        for now in 0..40 {
            live.tick(now);
            let mut moved = Vec::new();
            while let Some(p) = live.pop_noc() {
                moved.push(p);
            }
            for p in moved {
                match &p.msg {
                    Msg::MemRd { line } => live.push_noc(
                        now,
                        Packet::on_canonical_vn(
                            p.src,
                            Gid::chipset(NodeId(0)),
                            Msg::MemData { line: *line, data: LineData::zeroed() },
                        ),
                    ),
                    Msg::MemWr { .. } => {}
                    _ => live.push_noc(now, p),
                }
            }
        }
        let mut w = SnapWriter::new();
        w.scoped("tile", |w| live.save(w));
        let snap = Snapshot::new(1, 40, w);

        let mut restored = tile_with(Box::new(TraceCore::new("t0", program())));
        let mut r = SnapReader::new(&snap);
        r.scoped("tile", |r| restored.restore(r));
        r.finish().expect("clean restore");

        // Drive both forward in lockstep from cycle 40; they must finish
        // identically (and identically to the uninterrupted run).
        for tile in [&mut live, &mut restored] {
            for now in 40..50_000 {
                tile.tick(now);
                let mut moved = Vec::new();
                while let Some(p) = tile.pop_noc() {
                    moved.push(p);
                }
                for p in moved {
                    match &p.msg {
                        Msg::MemRd { line } => tile.push_noc(
                            now,
                            Packet::on_canonical_vn(
                                p.src,
                                Gid::chipset(NodeId(0)),
                                Msg::MemData { line: *line, data: LineData::zeroed() },
                            ),
                        ),
                        Msg::MemWr { .. } => {}
                        _ => tile.push_noc(now, p),
                    }
                }
                if tile.engine().is_done() {
                    break;
                }
            }
        }
        let core = |t: &Tile| {
            let c = t.engine().as_any().downcast_ref::<TraceCore>().unwrap();
            (c.finished_at(), c.checksum(), c.mem_ops())
        };
        let (ref_f, ref_c, ref_m) = core(&reference);
        assert_eq!(core(&live), (ref_f, ref_c, ref_m));
        assert_eq!(core(&restored), (ref_f, ref_c, ref_m), "restored run must be bit-exact");
        assert_eq!(
            restored.bpc().stats().get("bpc.miss"),
            live.bpc().stats().get("bpc.miss"),
            "cache counters travel with the snapshot"
        );
    }

    #[test]
    fn irq_packets_reach_the_engine() {
        use std::sync::{Arc, Mutex};
        struct IrqProbe {
            seen: Arc<Mutex<Option<(u16, bool)>>>,
        }
        impl Engine for IrqProbe {
            fn tick(&mut self, _now: Cycle, _tri: &mut dyn Tri) {}
            fn set_irq(&mut self, line: u16, level: bool) {
                *self.seen.lock().unwrap() = Some((line, level));
            }
            fn label(&self) -> &str {
                "probe"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let seen = Arc::new(Mutex::new(None));
        let mut tile = tile_with(Box::new(IrqProbe { seen: Arc::clone(&seen) }));
        tile.push_noc(
            0,
            Packet::on_canonical_vn(
                tile.id(),
                Gid::chipset(NodeId(0)),
                Msg::Irq { line_no: 11, level: true },
            ),
        );
        tile.tick(0);
        assert_eq!(*seen.lock().unwrap(), Some((11, true)));
    }
}
