//! The abstract-op trace core.

use smappic_coherence::{CoreReq, CoreResp, MemOp};
use smappic_noc::{Addr, AmoOp};
use smappic_sim::{Cycle, Pack, SnapReader, SnapWriter};

use crate::addrmap::AddrMap;
use crate::tri::{Engine, Tri};

/// One operation of a trace program.
///
/// Trace programs express a workload's *memory behaviour* — what the NUMA,
/// latency, and MAPLE experiments measure — without an instruction stream.
/// All accesses are 8 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Busy-execute for `n` cycles (models the compute between accesses).
    Compute(u64),
    /// Cacheable 8-byte load.
    Load(Addr),
    /// Cacheable 8-byte *posted* store of an arbitrary marker value: the
    /// core does not wait for completion (store-buffer semantics, bounded
    /// by the BPC's MSHRs). Use for data; synchronization operations fence
    /// all posted stores first.
    Store(Addr),
    /// Cacheable 8-byte *blocking* store of a specific value (flags,
    /// mailboxes — release stores that must be globally visible).
    StoreVal(Addr, u64),
    /// Atomic fetch-and-add; the old value is discarded.
    AmoAdd(Addr, u64),
    /// Spin (cached polling loads) until the 8 bytes at `addr` equal `v`.
    SpinUntilEq(Addr, u64),
    /// Spin until the value is ≥ `v` (barrier arrival counters).
    SpinUntilGe(Addr, u64),
    /// Non-cacheable 8-byte load from a device (resolved through the
    /// core's [`AddrMap`]; falls back to a cacheable load when the address
    /// is not a device — keeping programs valid on device-less builds).
    NcLoad(Addr),
    /// Non-cacheable store to a device.
    NcStore(Addr, u64),
    /// Cacheable 8-byte *blocking* load folded into the core's running
    /// checksum ([`TraceCore::checksum`]). Because the value travels
    /// through the coherence protocol (not a DRAM backdoor), checksums
    /// observe dirty cache lines — the tool the differential fault suite
    /// uses to compare architectural state between runs whose cache/timing
    /// behaviour differs. Fences posted stores like other sync ops.
    Checksum(Addr),
}

// Snapshot tags for enums are part of the format: append-only, never
// renumbered.
impl Pack for TraceOp {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            TraceOp::Compute(n) => {
                w.u8(0);
                w.u64(*n);
            }
            TraceOp::Load(a) => {
                w.u8(1);
                w.u64(*a);
            }
            TraceOp::Store(a) => {
                w.u8(2);
                w.u64(*a);
            }
            TraceOp::StoreVal(a, v) => {
                w.u8(3);
                w.u64(*a);
                w.u64(*v);
            }
            TraceOp::AmoAdd(a, v) => {
                w.u8(4);
                w.u64(*a);
                w.u64(*v);
            }
            TraceOp::SpinUntilEq(a, v) => {
                w.u8(5);
                w.u64(*a);
                w.u64(*v);
            }
            TraceOp::SpinUntilGe(a, v) => {
                w.u8(6);
                w.u64(*a);
                w.u64(*v);
            }
            TraceOp::NcLoad(a) => {
                w.u8(7);
                w.u64(*a);
            }
            TraceOp::NcStore(a, v) => {
                w.u8(8);
                w.u64(*a);
                w.u64(*v);
            }
            TraceOp::Checksum(a) => {
                w.u8(9);
                w.u64(*a);
            }
        }
    }

    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => TraceOp::Compute(r.u64()),
            1 => TraceOp::Load(r.u64()),
            2 => TraceOp::Store(r.u64()),
            3 => TraceOp::StoreVal(r.u64(), r.u64()),
            4 => TraceOp::AmoAdd(r.u64(), r.u64()),
            5 => TraceOp::SpinUntilEq(r.u64(), r.u64()),
            6 => TraceOp::SpinUntilGe(r.u64(), r.u64()),
            7 => TraceOp::NcLoad(r.u64()),
            8 => TraceOp::NcStore(r.u64(), r.u64()),
            9 => TraceOp::Checksum(r.u64()),
            _ => {
                r.corrupt("unknown TraceOp tag");
                TraceOp::Compute(0)
            }
        }
    }
}

/// State of the in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    None,
    /// Waiting for the response with this token.
    Mem(u64),
    /// Waiting for a spin-poll load; re-check the condition on arrival.
    Spin(u64),
}

/// A core that executes a [`TraceOp`] program against the memory system.
///
/// One op is in flight at a time (matching an in-order, blocking core).
/// `Compute(n)` consumes `n` cycles without memory traffic. The core
/// records when it finished ([`TraceCore::finished_at`]) and how many
/// memory operations it performed.
#[derive(Debug)]
pub struct TraceCore {
    label: String,
    /// The full program; ops before `pc` have retired. A plain Vec with a
    /// cursor — the program is never mutated, only advanced through.
    program: Vec<TraceOp>,
    pc: usize,
    wait: Wait,
    compute_left: u64,
    next_token: u64,
    /// Spin op currently being polled (kept until satisfied).
    spinning: Option<TraceOp>,
    /// Tokens of posted (fire-and-forget) stores still in flight.
    posted: Vec<u64>,
    finished_at: Option<Cycle>,
    mem_ops: u64,
    /// Program ops retired (spin re-polls do not count) — the engine's
    /// architectural-progress counter for the platform Watchdog.
    retired: u64,
    /// Last loaded value (inspectable by tests).
    last_load: u64,
    /// Order-sensitive fold of every [`TraceOp::Checksum`] load.
    checksum: u64,
    /// The blocking op in flight is a Checksum load.
    checksum_pending: bool,
    /// Device map for NC operations.
    addr_map: AddrMap,
}

impl TraceCore {
    /// Creates a trace core with the given program.
    pub fn new(label: impl Into<String>, program: Vec<TraceOp>) -> Self {
        Self::with_addr_map(label, program, AddrMap::new())
    }

    /// Creates a trace core with a device map for NC operations.
    pub fn with_addr_map(
        label: impl Into<String>,
        program: Vec<TraceOp>,
        addr_map: AddrMap,
    ) -> Self {
        Self {
            label: label.into(),
            program,
            pc: 0,
            wait: Wait::None,
            compute_left: 0,
            next_token: 0,
            spinning: None,
            posted: Vec::new(),
            finished_at: None,
            mem_ops: 0,
            retired: 0,
            last_load: 0,
            checksum: 0,
            checksum_pending: false,
            addr_map,
        }
    }

    /// Cycle at which the program completed, if it has.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Memory operations issued so far.
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops
    }

    /// The value returned by the most recent load.
    pub fn last_load(&self) -> u64 {
        self.last_load
    }

    /// The running fold of every [`TraceOp::Checksum`] load, in program
    /// order. Two runs that observed the same values in the same order have
    /// equal checksums.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// True when `op` cannot issue until posted stores complete:
    /// synchronization ops fence the whole store buffer, and posted stores
    /// themselves block once the 3-entry window is full.
    fn blocked_on_posted(&self, op: &TraceOp) -> bool {
        match op {
            TraceOp::Compute(_) | TraceOp::Load(_) => false,
            TraceOp::Store(_) => self.posted.len() >= 3,
            _ => !self.posted.is_empty(),
        }
    }

    fn issue(&mut self, now: Cycle, tri: &mut dyn Tri, op: &TraceOp) -> bool {
        let token = self.token();
        let (req, spin) = match *op {
            TraceOp::Load(addr) => (MemOp::Load { addr, size: 8 }, false),
            TraceOp::Store(addr) => (MemOp::Store { addr, size: 8, data: 0xD1CE }, false),
            TraceOp::StoreVal(addr, v) => (MemOp::Store { addr, size: 8, data: v }, false),
            TraceOp::AmoAdd(addr, v) => {
                (MemOp::Amo { addr, size: 8, op: AmoOp::Add, val: v, expected: 0 }, false)
            }
            TraceOp::SpinUntilEq(addr, _) | TraceOp::SpinUntilGe(addr, _) => {
                (MemOp::Load { addr, size: 8 }, true)
            }
            TraceOp::Checksum(addr) => (MemOp::Load { addr, size: 8 }, false),
            TraceOp::NcLoad(addr) => match self.addr_map.device_for(addr) {
                Some(dst) => (MemOp::NcLoad { addr, size: 8, dst }, false),
                None => (MemOp::Load { addr, size: 8 }, false),
            },
            TraceOp::NcStore(addr, data) => match self.addr_map.device_for(addr) {
                Some(dst) => (MemOp::NcStore { addr, size: 8, data, dst }, false),
                None => (MemOp::Store { addr, size: 8, data }, false),
            },
            TraceOp::Compute(_) => unreachable!("handled by caller"),
        };
        match tri.try_request(now, CoreReq { token, op: req }) {
            Ok(()) => {
                self.mem_ops += 1;
                self.checksum_pending = matches!(op, TraceOp::Checksum(_));
                self.wait = if spin { Wait::Spin(token) } else { Wait::Mem(token) };
                true
            }
            Err(_) => {
                self.next_token -= 1;
                false
            }
        }
    }
}

impl Engine for TraceCore {
    fn tick(&mut self, now: Cycle, tri: &mut dyn Tri) {
        // Drain every available response: posted-store completions are
        // discarded; the blocking transaction (if any) finishes its wait.
        while let Some(CoreResp { token, data }) = tri.pop_resp() {
            if let Some(pos) = self.posted.iter().position(|t| *t == token) {
                self.posted.swap_remove(pos);
                continue;
            }
            match self.wait {
                Wait::Mem(expect) => {
                    debug_assert_eq!(token, expect, "single outstanding blocking op");
                    self.last_load = data;
                    if self.checksum_pending {
                        self.checksum = self
                            .checksum
                            .rotate_left(7)
                            .wrapping_add(data.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        self.checksum_pending = false;
                    }
                    self.wait = Wait::None;
                }
                Wait::Spin(expect) => {
                    debug_assert_eq!(token, expect);
                    let done = match self.spinning.as_ref().expect("spin op retained") {
                        TraceOp::SpinUntilEq(_, v) => data == *v,
                        TraceOp::SpinUntilGe(_, v) => data >= *v,
                        other => unreachable!("non-spin op retained: {other:?}"),
                    };
                    self.last_load = data;
                    self.wait = Wait::None;
                    if done {
                        self.spinning = None;
                    }
                }
                Wait::None => panic!("response {token} with no waiter"),
            }
        }
        if self.wait != Wait::None {
            return;
        }

        // Busy compute.
        if self.compute_left > 0 {
            self.compute_left -= 1;
            return;
        }

        // Re-poll an unsatisfied spin.
        if let Some(op) = self.spinning.clone() {
            self.issue(now, tri, &op);
            return;
        }

        // Next program op.
        let Some(op) = self.program.get(self.pc).cloned() else {
            if self.posted.is_empty() && self.finished_at.is_none() {
                self.finished_at = Some(now);
            }
            return;
        };
        // Synchronization ops fence all posted stores first; a posted store
        // itself waits for a free store-buffer slot.
        if self.blocked_on_posted(&op) {
            return;
        }
        match op {
            TraceOp::Compute(n) => {
                self.pc += 1;
                self.retired += 1;
                self.compute_left = n.saturating_sub(1); // this tick counts
            }
            TraceOp::SpinUntilEq(..) | TraceOp::SpinUntilGe(..) => {
                if self.issue(now, tri, &op) {
                    self.pc += 1;
                    // Retires once on issue; the re-polls a never-satisfied
                    // spin keeps sending do NOT count as progress, so a
                    // livelocked spin freezes this counter for the Watchdog.
                    self.retired += 1;
                    self.spinning = Some(op);
                }
            }
            TraceOp::Store(addr) => {
                // Posted store: issue and continue (store-buffer model,
                // bounded by the window blocked_on_posted enforces).
                let token = self.token();
                let req = CoreReq { token, op: MemOp::Store { addr, size: 8, data: 0xD1CE } };
                if tri.try_request(now, req).is_ok() {
                    self.mem_ops += 1;
                    self.posted.push(token);
                    self.pc += 1;
                    self.retired += 1;
                } else {
                    self.next_token -= 1;
                }
            }
            _ => {
                if self.issue(now, tri, &op) {
                    self.pc += 1;
                    self.retired += 1;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn progress(&self) -> u64 {
        self.retired
    }

    fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        if self.finished_at.is_some() {
            // Finished ticks drain nothing and set nothing: pure no-ops.
            return None;
        }
        if self.wait != Wait::None {
            // Blocked on a response; ticks until the tile delivers one do
            // nothing (the drain loop pops from an empty queue).
            return None;
        }
        if self.compute_left > 0 {
            // Busy compute: ticks in the burst only decrement the counter;
            // the next program op issues when it reaches zero.
            return Some(now + self.compute_left);
        }
        if self.spinning.is_some() {
            return Some(now); // re-polls every cycle
        }
        match self.program.get(self.pc) {
            // Fenced behind posted stores: progress resumes only when their
            // completions arrive through the tile.
            Some(op) if self.blocked_on_posted(op) => None,
            // Program done but posted stores outstanding: finished_at is
            // recorded only after they complete.
            None if !self.posted.is_empty() => None,
            // An op is ready to issue (or finished_at is due to be set).
            _ => Some(now),
        }
    }

    fn advance_idle(&mut self, delta: u64) {
        // The only aging a skippable stretch performs is draining the
        // compute burst.
        self.compute_left -= self.compute_left.min(delta);
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // The program, label, and addr_map are configuration; everything a
        // running core mutates is here. Wait tags: 0=None, 1=Mem, 2=Spin.
        w.usize(self.pc);
        match self.wait {
            Wait::None => {
                w.u8(0);
                w.u64(0);
            }
            Wait::Mem(t) => {
                w.u8(1);
                w.u64(t);
            }
            Wait::Spin(t) => {
                w.u8(2);
                w.u64(t);
            }
        }
        w.u64(self.compute_left);
        w.u64(self.next_token);
        self.spinning.pack(w);
        self.posted.pack(w);
        self.finished_at.pack(w);
        w.u64(self.mem_ops);
        w.u64(self.retired);
        w.u64(self.last_load);
        w.u64(self.checksum);
        w.bool(self.checksum_pending);
    }

    fn restore_state(&mut self, r: &mut SnapReader) {
        self.pc = r.usize();
        if self.pc > self.program.len() {
            r.corrupt("trace pc beyond program end");
            self.pc = self.program.len();
        }
        let tag = r.u8();
        let token = r.u64();
        self.wait = match tag {
            0 => Wait::None,
            1 => Wait::Mem(token),
            2 => Wait::Spin(token),
            _ => {
                r.corrupt("unknown trace-core wait tag");
                Wait::None
            }
        };
        self.compute_left = r.u64();
        self.next_token = r.u64();
        self.spinning = Option::unpack(r);
        self.posted = Vec::unpack(r);
        self.finished_at = Option::unpack(r);
        self.mem_ops = r.u64();
        self.retired = r.u64();
        self.last_load = r.u64();
        self.checksum = r.u64();
        self.checksum_pending = r.bool();
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smappic_coherence::{Bpc, BpcConfig, Homing, HomingMode};
    use smappic_noc::{Gid, LineData, Msg, NodeId, Packet};
    use std::collections::HashMap;

    /// A Tri implementation backed by a BPC with an instant fake home.
    struct Rig {
        bpc: Bpc,
        backing: HashMap<u64, LineData>,
    }

    impl Rig {
        fn new() -> Self {
            let homing = Homing::new(HomingMode::StripeAllNodes, 1, 4);
            Self {
                bpc: Bpc::new(BpcConfig::new(Gid::tile(NodeId(0), 0), homing)),
                backing: HashMap::new(),
            }
        }

        fn pump(&mut self, now: Cycle) {
            self.bpc.tick(now);
            while let Some(pkt) = self.bpc.noc_pop() {
                let reply = match pkt.msg {
                    Msg::ReqS { line } => Some(Msg::Data {
                        line,
                        data: *self.backing.entry(line).or_default(),
                        excl: false,
                    }),
                    Msg::ReqM { line } => Some(Msg::Data {
                        line,
                        data: *self.backing.entry(line).or_default(),
                        excl: true,
                    }),
                    Msg::Amo { addr, size, op, val, expected } => {
                        let line = smappic_noc::line_of(addr);
                        let entry = self.backing.entry(line).or_default();
                        let off = smappic_noc::line_offset(addr);
                        let old = entry.read(off, size as usize);
                        entry.write(
                            off,
                            size as usize,
                            op.apply(old, val, expected, size as usize),
                        );
                        Some(Msg::AmoResp { addr, old })
                    }
                    Msg::WbData { line, data } => {
                        self.backing.insert(line, data);
                        None
                    }
                    Msg::WbClean { .. } | Msg::InvAck { .. } => None,
                    other => panic!("unexpected {other:?}"),
                };
                if let Some(msg) = reply {
                    self.bpc.noc_push(Packet::on_canonical_vn(pkt.src, pkt.dst, msg));
                }
            }
        }
    }

    impl Tri for Rig {
        fn try_request(&mut self, now: Cycle, req: CoreReq) -> Result<(), CoreReq> {
            self.bpc.request(now, req)
        }
        fn pop_resp(&mut self) -> Option<CoreResp> {
            self.bpc.pop_resp()
        }
    }

    fn run(core: &mut TraceCore, rig: &mut Rig, max: Cycle) -> Cycle {
        for now in 0..max {
            core.tick(now, rig);
            rig.pump(now);
            if core.is_done() {
                return core.finished_at().unwrap();
            }
        }
        panic!("trace program did not finish in {max} cycles");
    }

    #[test]
    fn compute_consumes_exact_cycles() {
        let mut rig = Rig::new();
        let mut core = TraceCore::new("t", vec![TraceOp::Compute(100)]);
        let t = run(&mut core, &mut rig, 1_000);
        assert_eq!(t, 100);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let mut rig = Rig::new();
        let mut core =
            TraceCore::new("t", vec![TraceOp::StoreVal(0x100, 4242), TraceOp::Load(0x100)]);
        run(&mut core, &mut rig, 10_000);
        assert_eq!(core.last_load(), 4242);
        assert_eq!(core.mem_ops(), 2);
    }

    #[test]
    fn spin_until_eq_waits_for_writer() {
        let mut rig = Rig::new();
        let mut core = TraceCore::new("t", vec![TraceOp::SpinUntilEq(0x200, 7)]);
        // Run a while: not done (flag is 0).
        for now in 0..2_000 {
            core.tick(now, &mut rig);
            rig.pump(now);
        }
        assert!(!core.is_done());
        // Another agent sets the flag via the backing store — but the line
        // is cached Shared in our BPC, so flip it through an invalidation,
        // as a real writer would.
        let mut d = LineData::zeroed();
        d.write(0, 8, 7);
        rig.backing.insert(0x200, d);
        rig.bpc.noc_push(Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 0),
            Gid::tile(NodeId(0), 0),
            Msg::Inv { line: 0x200 },
        ));
        for now in 2_000..10_000 {
            core.tick(now, &mut rig);
            rig.pump(now);
            if core.is_done() {
                return;
            }
        }
        panic!("spin never satisfied");
    }

    #[test]
    fn checksum_folds_loaded_values_in_order() {
        let run_program = |vals: &[u64]| {
            let mut rig = Rig::new();
            let mut prog = Vec::new();
            for (i, &v) in vals.iter().enumerate() {
                prog.push(TraceOp::StoreVal(0x400 + i as u64 * 8, v));
            }
            for i in 0..vals.len() {
                prog.push(TraceOp::Checksum(0x400 + i as u64 * 8));
            }
            let mut core = TraceCore::new("t", prog);
            run(&mut core, &mut rig, 100_000);
            core.checksum()
        };
        let a = run_program(&[1, 2, 3]);
        assert_eq!(a, run_program(&[1, 2, 3]), "checksum must be deterministic");
        assert_ne!(a, run_program(&[3, 2, 1]), "checksum must be order-sensitive");
        assert_ne!(a, run_program(&[1, 2, 4]), "checksum must be value-sensitive");
    }

    #[test]
    fn spin_polls_do_not_advance_progress() {
        let mut rig = Rig::new();
        let mut core =
            TraceCore::new("t", vec![TraceOp::Compute(1), TraceOp::SpinUntilEq(0x200, 7)]);
        for now in 0..2_000 {
            core.tick(now, &mut rig);
            rig.pump(now);
        }
        let frozen = core.progress();
        assert_eq!(frozen, 2, "compute + spin issue retire exactly once each");
        for now in 2_000..4_000 {
            core.tick(now, &mut rig);
            rig.pump(now);
        }
        assert_eq!(core.progress(), frozen, "unsatisfied spin must not count as progress");
    }

    #[test]
    fn amo_add_counts_as_mem_op() {
        let mut rig = Rig::new();
        let mut core = TraceCore::new(
            "t",
            vec![TraceOp::AmoAdd(0x300, 5), TraceOp::AmoAdd(0x300, 5), TraceOp::Load(0x300)],
        );
        run(&mut core, &mut rig, 10_000);
        assert_eq!(core.last_load(), 10);
        assert_eq!(core.mem_ops(), 3);
    }
}
