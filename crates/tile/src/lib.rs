//! # smappic-tile — the Transaction-Response Interface and core models
//!
//! BYOC's **Transaction-Response Interface (TRI)** is the gateway between a
//! compute element and the memory system (§2.2 of the paper): cores issue
//! memory transactions and receive responses without knowing anything about
//! the coherence protocol behind the BPC. That isolation is what makes
//! integrating new cores and accelerators cheap — the paper integrates the
//! MAPLE engine in "about a hundred lines of Verilog".
//!
//! This crate provides:
//!
//! - the [`Tri`] trait (request/response against the tile's BPC) and the
//!   [`Engine`] trait every compute element implements,
//! - [`TraceCore`] — an abstract-op core executing [`TraceOp`] programs;
//!   the workload layer uses it for the NUMA and MAPLE studies where the
//!   memory access pattern, not the instruction stream, is the experiment,
//! - [`ArianeCore`] — the timing wrapper around the RV64 interpreter: a
//!   single-issue in-order pipeline (1 instruction per cycle when nothing
//!   stalls), an L1 instruction cache, taken-branch and ECALL handling, and
//!   the interrupt wires driven by the platform's depacketizer,
//! - [`Tile`] — one mesh endpoint bundling an engine, its BPC, and the
//!   node's LLC slice, with message-type dispatch for everything the NoC
//!   delivers,
//! - [`AddrMap`] — the physical address map that decides which accesses are
//!   cacheable memory and which are MMIO to a device tile or the chipset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrmap;
mod ariane;
#[cfg(test)]
pub(crate) mod testkit;
mod tile;
mod trace_core;
mod tri;

pub use addrmap::AddrMap;
pub use ariane::{ArianeConfig, ArianeCore};
pub use tile::Tile;
pub use trace_core::{TraceCore, TraceOp};
pub use tri::{Engine, IdleEngine, MmioResp, Tri};
