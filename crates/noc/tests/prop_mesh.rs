//! Property tests: the mesh delivers every packet exactly once, in
//! per-(src,dst,VN) order, for arbitrary traffic on arbitrary geometries.

use proptest::prelude::*;
use smappic_noc::{Gid, Mesh, MeshConfig, Msg, NodeId, Packet};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Traffic {
    tiles: usize,
    // (src tile, dst tile) pairs; the payload line encodes a sequence id.
    flows: Vec<(u16, u16)>,
}

fn traffic_strategy() -> impl Strategy<Value = Traffic> {
    (2usize..=12)
        .prop_flat_map(|tiles| {
            let pairs = prop::collection::vec(
                (0..tiles as u16, 0..tiles as u16),
                1..120,
            );
            (Just(tiles), pairs)
        })
        .prop_map(|(tiles, flows)| Traffic { tiles, flows })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_packet_delivered_exactly_once_and_in_order(t in traffic_strategy()) {
        let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), t.tiles));
        let total = t.flows.len();
        let mut pending = t.flows.clone();
        let mut seq = 0u64;
        // received[(src,dst)] = sequence ids in arrival order
        let mut received: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
        let mut sent: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
        let mut delivered = 0usize;
        let mut now = 0u64;
        while delivered < total {
            // Inject as many as the network accepts this cycle.
            pending.retain(|&(src, dst)| {
                let pkt = Packet::on_canonical_vn(
                    Gid::tile(NodeId(0), dst),
                    Gid::tile(NodeId(0), src),
                    Msg::ReqS { line: seq * 64 },
                );
                match mesh.inject(src, pkt) {
                    Ok(()) => {
                        sent.entry((src, dst)).or_default().push(seq);
                        seq += 1;
                        false
                    }
                    Err(_) => true,
                }
            });
            mesh.tick(now);
            for tile in 0..t.tiles as u16 {
                while let Some(p) = mesh.eject(tile) {
                    let src = p.src.tile_id().unwrap();
                    prop_assert_eq!(p.dst.tile_id().unwrap(), tile, "misrouted packet");
                    if let Msg::ReqS { line } = p.msg {
                        received.entry((src, tile)).or_default().push(line / 64);
                    }
                    delivered += 1;
                }
            }
            now += 1;
            prop_assert!(now < 500_000, "livelock: {delivered}/{total} delivered");
        }
        prop_assert!(mesh.is_idle(), "mesh must drain completely");
        // Exactly-once, in-order per flow.
        for (flow, ids) in &sent {
            prop_assert_eq!(received.get(flow), Some(ids), "flow {:?}", flow);
        }
    }

    #[test]
    fn edge_traffic_round_trips(tiles in 1usize..=12, n in 1usize..40) {
        // Tiles send to the chipset; the "chipset" echoes back.
        let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), tiles));
        let mut injected = 0usize;
        let mut echoed = 0usize;
        let mut returned = 0usize;
        let mut now = 0u64;
        while returned < n {
            if injected < n {
                let src = (injected % tiles) as u16;
                let pkt = Packet::on_canonical_vn(
                    Gid::chipset(NodeId(0)),
                    Gid::tile(NodeId(0), src),
                    Msg::MemRd { line: injected as u64 * 64 },
                );
                if mesh.inject(src, pkt).is_ok() {
                    injected += 1;
                }
            }
            mesh.tick(now);
            while let Some(p) = mesh.eject_edge() {
                // Echo a response back to the source tile.
                let reply = Packet::on_canonical_vn(
                    p.src,
                    Gid::chipset(NodeId(0)),
                    Msg::NcAck { addr: 0 },
                );
                // Edge injection may back-pressure; retry by re-queuing.
                let mut r = Some(reply);
                while let Some(x) = r.take() {
                    if let Err(x) = mesh.inject_edge(x) {
                        mesh.tick(now);
                        r = Some(x);
                    }
                }
                echoed += 1;
            }
            for tile in 0..tiles as u16 {
                while mesh.eject(tile).is_some() {
                    returned += 1;
                }
            }
            now += 1;
            prop_assert!(now < 500_000, "stuck: {injected} in, {echoed} echoed, {returned} back");
        }
        prop_assert_eq!(returned, n);
    }
}
