//! Randomized tests: the mesh delivers every packet exactly once, in
//! per-(src,dst,VN) order, for arbitrary traffic on arbitrary geometries.
//!
//! Traffic shapes are drawn from the workspace's deterministic [`SimRng`]
//! (fixed seeds, no external test dependencies) so every run exercises the
//! same reproducible case set.

use smappic_noc::{Gid, Mesh, MeshConfig, Msg, NodeId, Packet, VirtNet};
use smappic_sim::SimRng;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Traffic {
    tiles: usize,
    // (src tile, dst tile) pairs; the payload line encodes a sequence id.
    flows: Vec<(u16, u16)>,
}

fn random_traffic(rng: &mut SimRng) -> Traffic {
    let tiles = 2 + rng.gen_range(11) as usize; // 2..=12
    let n = 1 + rng.gen_range(119) as usize; // 1..120 flows
    let flows = (0..n)
        .map(|_| (rng.gen_range(tiles as u64) as u16, rng.gen_range(tiles as u64) as u16))
        .collect();
    Traffic { tiles, flows }
}

#[test]
fn every_packet_delivered_exactly_once_and_in_order() {
    let mut rng = SimRng::new(0x0E5_00C1);
    for case in 0..64 {
        let t = random_traffic(&mut rng);
        let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), t.tiles));
        let total = t.flows.len();
        let mut pending = t.flows.clone();
        let mut seq = 0u64;
        // received[(src,dst)] = sequence ids in arrival order
        let mut received: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
        let mut sent: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
        let mut delivered = 0usize;
        let mut now = 0u64;
        while delivered < total {
            // Inject as many as the network accepts this cycle.
            pending.retain(|&(src, dst)| {
                let pkt = Packet::on_canonical_vn(
                    Gid::tile(NodeId(0), dst),
                    Gid::tile(NodeId(0), src),
                    Msg::ReqS { line: seq * 64 },
                );
                match mesh.inject(src, pkt) {
                    Ok(()) => {
                        sent.entry((src, dst)).or_default().push(seq);
                        seq += 1;
                        false
                    }
                    Err(_) => true,
                }
            });
            mesh.tick(now);
            for tile in 0..t.tiles as u16 {
                while let Some(p) = mesh.eject(tile) {
                    let src = p.src.tile_id().unwrap();
                    assert_eq!(p.dst.tile_id().unwrap(), tile, "misrouted packet (case {case})");
                    if let Msg::ReqS { line } = p.msg {
                        received.entry((src, tile)).or_default().push(line / 64);
                    }
                    delivered += 1;
                }
            }
            now += 1;
            assert!(now < 500_000, "livelock: {delivered}/{total} delivered (case {case})");
        }
        assert!(mesh.is_idle(), "mesh must drain completely (case {case})");
        // Exactly-once, in-order per flow.
        for (flow, ids) in &sent {
            assert_eq!(received.get(flow), Some(ids), "flow {flow:?} (case {case})");
        }
    }
}

#[test]
fn edge_traffic_round_trips() {
    let mut rng = SimRng::new(0x0ED6_E3C0);
    for case in 0..32 {
        // Tiles send to the chipset; the "chipset" echoes back.
        let tiles = 1 + rng.gen_range(12) as usize; // 1..=12
        let n = 1 + rng.gen_range(39) as usize; // 1..40
        let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), tiles));
        let mut injected = 0usize;
        let mut echoed = 0usize;
        let mut returned = 0usize;
        let mut now = 0u64;
        while returned < n {
            if injected < n {
                let src = (injected % tiles) as u16;
                let pkt = Packet::on_canonical_vn(
                    Gid::chipset(NodeId(0)),
                    Gid::tile(NodeId(0), src),
                    Msg::MemRd { line: injected as u64 * 64 },
                );
                if mesh.inject(src, pkt).is_ok() {
                    injected += 1;
                }
            }
            mesh.tick(now);
            while let Some(p) = mesh.eject_edge() {
                // Echo a response back to the source tile.
                let reply =
                    Packet::on_canonical_vn(p.src, Gid::chipset(NodeId(0)), Msg::NcAck { addr: 0 });
                // Edge injection may back-pressure; retry by re-queuing.
                let mut r = Some(reply);
                while let Some(x) = r.take() {
                    if let Err(x) = mesh.inject_edge(x) {
                        mesh.tick(now);
                        r = Some(x);
                    }
                }
                echoed += 1;
            }
            for tile in 0..tiles as u16 {
                while mesh.eject(tile).is_some() {
                    returned += 1;
                }
            }
            now += 1;
            assert!(
                now < 500_000,
                "stuck: {injected} in, {echoed} echoed, {returned} back (case {case})"
            );
        }
        assert_eq!(returned, n);
    }
}

#[test]
fn random_vn_mix_never_blocks_responses() {
    // Saturate the request VN while trickling response-VN traffic through:
    // responses must keep flowing (protocol deadlock freedom relies on it).
    let mut rng = SimRng::new(0x3E55_1011);
    let tiles = 9usize;
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), tiles));
    let dst = Gid::tile(NodeId(0), 8);
    let src = Gid::tile(NodeId(0), 0);
    let mut resp_sent = 0u64;
    let mut resp_got = 0u64;
    for now in 0..50_000 {
        // Flood requests (may be refused; that's the point).
        let _ = mesh.inject(0, Packet::on_canonical_vn(dst, src, Msg::ReqS { line: now * 64 }));
        if rng.chance(0.25) && mesh.can_inject(0, VirtNet::Resp) {
            let pkt = Packet::on_canonical_vn(dst, src, Msg::NcData { addr: resp_sent, data: 0 });
            assert_eq!(pkt.vn, VirtNet::Resp);
            mesh.inject(0, pkt).unwrap();
            resp_sent += 1;
        }
        mesh.tick(now);
        while let Some(p) = mesh.eject(8) {
            if matches!(p.msg, Msg::NcData { .. }) {
                resp_got += 1;
            }
        }
        if resp_got >= 64 {
            break;
        }
    }
    assert!(resp_got >= 64, "responses starved behind requests: {resp_got}/{resp_sent} arrived");
}
