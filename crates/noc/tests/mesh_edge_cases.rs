//! Directed edge-case tests for the mesh: degenerate 1-tile geometry,
//! round-robin fairness under full-buffer back-pressure, and X-Y routing
//! on non-square (and ragged) meshes. Complements the randomized
//! exactly-once properties in `prop_mesh.rs`.

use smappic_noc::{Gid, Mesh, MeshConfig, Msg, NodeId, Packet};
use std::collections::HashMap;

fn tile_pkt(src: u16, dst: u16, line: u64) -> Packet {
    Packet::on_canonical_vn(
        Gid::tile(NodeId(0), dst),
        Gid::tile(NodeId(0), src),
        Msg::ReqS { line: line * 64 },
    )
}

#[test]
fn single_tile_mesh_delivers_self_and_edge_traffic() {
    // tiles = 1 ⇒ width 1, one router: self-sends turn straight around,
    // and the chipset edge port still attaches at (0,0).
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), 1));
    assert_eq!(mesh.config().width, 1);
    mesh.inject(0, tile_pkt(0, 0, 1)).expect("self-send accepted");
    mesh.inject(
        0,
        Packet::on_canonical_vn(
            Gid::chipset(NodeId(0)),
            Gid::tile(NodeId(0), 0),
            Msg::MemRd { line: 128 },
        ),
    )
    .expect("edge-bound accepted");
    let mut got_self = false;
    let mut got_edge = false;
    for now in 0..100 {
        mesh.tick(now);
        if let Some(p) = mesh.eject(0) {
            assert!(matches!(p.msg, Msg::ReqS { line: 64 }));
            got_self = true;
        }
        if let Some(p) = mesh.eject_edge() {
            assert!(matches!(p.msg, Msg::MemRd { line: 128 }));
            got_edge = true;
        }
    }
    assert!(got_self, "self-send never delivered on a 1-tile mesh");
    assert!(got_edge, "edge-bound packet never reached the chipset port");
    assert!(mesh.is_idle());

    // And the reverse direction: chipset → the only tile.
    mesh.inject_edge(Packet::on_canonical_vn(
        Gid::tile(NodeId(0), 0),
        Gid::chipset(NodeId(0)),
        Msg::NcAck { addr: 0 },
    ))
    .expect("edge injection accepted");
    let mut back = false;
    for now in 100..200 {
        mesh.tick(now);
        if mesh.eject(0).is_some() {
            back = true;
        }
    }
    assert!(back, "chipset→tile packet lost on a 1-tile mesh");
}

#[test]
fn full_buffers_back_pressure_without_loss() {
    // Keep injecting into tile 0's port without ever ticking: the input
    // buffer must fill, then refuse — and everything accepted must later
    // come out exactly once.
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), 4));
    let mut accepted = 0u64;
    while mesh.inject(0, tile_pkt(0, 3, accepted)).is_ok() {
        accepted += 1;
        assert!(accepted < 10_000, "input buffer never back-pressured");
    }
    assert!(accepted > 0, "a fresh mesh must accept at least one packet");
    let mut lines = Vec::new();
    for now in 0..10_000 {
        mesh.tick(now);
        while let Some(p) = mesh.eject(3) {
            if let Msg::ReqS { line } = p.msg {
                lines.push(line / 64);
            }
        }
        if lines.len() as u64 == accepted {
            break;
        }
    }
    assert_eq!(lines, (0..accepted).collect::<Vec<_>>(), "loss or reorder under back-pressure");
    assert!(mesh.is_idle());
}

#[test]
fn round_robin_arbitration_is_fair_under_saturation() {
    // Three tiles of a 2x2 mesh flood the fourth. With every contended
    // output arbitrated round-robin, no source may starve, and over a
    // long window the per-source delivery counts must be close.
    let tiles = 4usize;
    let hot = 0u16;
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), tiles));
    let mut sent: HashMap<u16, u64> = HashMap::new();
    let mut got: HashMap<u16, u64> = HashMap::new();
    for now in 0..30_000u64 {
        for src in 1..tiles as u16 {
            // Offer a packet every cycle; refusal is the back-pressure
            // under test, not an error.
            if mesh.inject(src, tile_pkt(src, hot, now)).is_ok() {
                *sent.entry(src).or_default() += 1;
            }
        }
        mesh.tick(now);
        while let Some(p) = mesh.eject(hot) {
            *got.entry(p.src.tile_id().unwrap()).or_default() += 1;
        }
    }
    let counts: Vec<u64> = (1..tiles as u16).map(|s| got.get(&s).copied().unwrap_or(0)).collect();
    let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
    assert!(min > 0, "a source starved under round-robin: {counts:?}");
    // Positional asymmetry (path lengths differ) is allowed; starvation
    // or gross bias is not.
    assert!(max <= min * 2, "round-robin arbitration is unfair: {counts:?}");
    // Saturation sanity: the hot port was genuinely contended.
    assert!(counts.iter().sum::<u64>() > 10_000, "workload never saturated the mesh");
}

/// All-pairs exactly-once delivery on one geometry.
fn all_pairs_exactly_once(tiles: usize) {
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), tiles));
    let mut pending: Vec<(u16, u16, u64)> = Vec::new();
    let mut id = 0u64;
    for s in 0..tiles as u16 {
        for d in 0..tiles as u16 {
            pending.push((s, d, id));
            id += 1;
        }
    }
    let total = pending.len();
    let mut seen: HashMap<u64, (u16, u16)> = HashMap::new();
    let mut delivered = 0usize;
    let mut now = 0u64;
    while delivered < total {
        pending.retain(|&(s, d, i)| mesh.inject(s, tile_pkt(s, d, i)).is_err());
        mesh.tick(now);
        for t in 0..tiles as u16 {
            while let Some(p) = mesh.eject(t) {
                let Msg::ReqS { line } = p.msg else { panic!("unexpected message") };
                let i = line / 64;
                let src = p.src.tile_id().unwrap();
                assert_eq!(p.dst.tile_id().unwrap(), t, "misrouted: id {i} ended at tile {t}");
                assert_eq!(i % tiles as u64, t as u64, "payload/destination mismatch");
                assert!(seen.insert(i, (src, t)).is_none(), "id {i} delivered twice");
                delivered += 1;
            }
        }
        now += 1;
        assert!(now < 200_000, "{tiles}-tile mesh stuck at {delivered}/{total}");
    }
    assert!(mesh.is_idle(), "{tiles}-tile mesh failed to drain");
    assert_eq!(mesh.stats().get("noc.delivered"), total as u64);
}

#[test]
fn xy_routing_covers_non_square_meshes() {
    // width = ⌈√tiles⌉ makes 6 a 3x2 grid, 7 a ragged 3x3 (last row of
    // one), 12 a 4x3 — X-Y routing must cover every pair on each, with a
    // prime and a one-column degenerate shape for good measure.
    for tiles in [2usize, 3, 5, 6, 7, 11, 12] {
        all_pairs_exactly_once(tiles);
    }
}

#[test]
fn ragged_last_row_reaches_the_far_corner() {
    // 7 tiles on width 3: tile 6 sits alone on row 2. The (0,0)-attached
    // edge port must still reach it and hear back from it.
    let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), 7));
    assert_eq!(mesh.config().width, 3);
    mesh.inject_edge(Packet::on_canonical_vn(
        Gid::tile(NodeId(0), 6),
        Gid::chipset(NodeId(0)),
        Msg::NcAck { addr: 7 },
    ))
    .expect("edge injects");
    mesh.inject(
        6,
        Packet::on_canonical_vn(
            Gid::chipset(NodeId(0)),
            Gid::tile(NodeId(0), 6),
            Msg::MemRd { line: 6 * 64 },
        ),
    )
    .expect("tile injects");
    let (mut down, mut up) = (false, false);
    for now in 0..200 {
        mesh.tick(now);
        if mesh.eject(6).is_some() {
            down = true;
        }
        if mesh.eject_edge().is_some() {
            up = true;
        }
    }
    assert!(down && up, "corner tile unreachable on ragged mesh (down={down}, up={up})");
}
