//! # smappic-noc — BYOC/OpenPiton-style Network-on-Chip
//!
//! SMAPPIC's nodes are BYOC instances: a 2-D mesh of tiles connected by
//! credit-based wormhole NoCs carrying the coherence, memory, MMIO, and
//! interrupt traffic of the chip. This crate provides:
//!
//! - the global addressing scheme ([`Gid`], [`NodeId`], [`TileId`]),
//! - the NoC message protocol ([`Msg`]) — the lingua franca between private
//!   caches, LLC slices, the memory controller, devices, and the inter-node
//!   bridge,
//! - [`Packet`] with flit accounting (64-bit flits, as in OpenPiton),
//! - a 5-port XY-routed [`Router`] and a [`Mesh`] that wires routers into a
//!   node-level network with an *edge port* at tile 0 where traffic leaves
//!   the node toward the chipset and the inter-node bridge (§3.1 of the
//!   paper: *"NoC routers are programmed to route inter-node packets into
//!   tile 0, then in the northbound direction"*).
//!
//! OpenPiton uses three physical NoCs; we model them as three virtual
//! networks ([`VirtNet`]) over one mesh with per-VN buffering, preserving the
//! ordering and deadlock-avoidance structure (documented deviation #1 in
//! DESIGN.md).
//!
//! ```
//! use smappic_noc::{Mesh, MeshConfig, Packet, Msg, Gid, NodeId, VirtNet};
//!
//! let mut mesh = Mesh::new(MeshConfig::new(NodeId(0), 4));
//! let pkt = Packet::new(
//!     Gid::tile(NodeId(0), 3),
//!     Gid::tile(NodeId(0), 0),
//!     VirtNet::Req,
//!     Msg::ReqS { line: 0x1000 },
//! );
//! mesh.inject(0, pkt).unwrap();
//! let mut now = 0;
//! loop {
//!     mesh.tick(now);
//!     if let Some(p) = mesh.eject(3) {
//!         assert_eq!(p.src, Gid::tile(NodeId(0), 0));
//!         break;
//!     }
//!     now += 1;
//!     assert!(now < 100, "packet should arrive quickly");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mesh;
mod packet;
mod protocol;
mod router;
mod snap_impls;
mod types;

pub use mesh::{Mesh, MeshConfig};
pub use packet::Packet;
pub use protocol::{AmoOp, Msg};
pub use router::{Port, Router};
pub use types::{
    line_of, line_offset, Addr, Elem, Gid, LineData, NodeId, TileId, VirtNet, LINE_BYTES,
};
