//! Identifiers, addresses, and cache-line data shared across the platform.

use std::fmt;

/// A physical memory address in the prototype's unified address space.
pub type Addr = u64;

/// Cache line size in bytes (BYOC uses 64-byte lines).
pub const LINE_BYTES: usize = 64;

/// Identifies one node (one chip/die of the target system).
///
/// A node maps to one BYOC instance; nodes are distributed across FPGAs in
/// AxBxC configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one tile within a node (linear index into the mesh).
pub type TileId = u16;

/// The element within a node a packet is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Elem {
    /// A tile in the node's mesh (core or accelerator plus caches).
    Tile(TileId),
    /// The node's chipset: memory controller, I/O devices, inter-node bridge.
    Chipset,
}

/// A global identifier: which node, and which element within it.
///
/// ```
/// use smappic_noc::{Gid, NodeId, Elem};
/// let g = Gid::tile(NodeId(2), 5);
/// assert_eq!(g.node, NodeId(2));
/// assert_eq!(g.elem, Elem::Tile(5));
/// assert_eq!(Gid::chipset(NodeId(0)).elem, Elem::Chipset);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gid {
    /// The node (chip/die) this element belongs to.
    pub node: NodeId,
    /// The element within the node.
    pub elem: Elem,
}

impl Gid {
    /// Address of tile `tile` on node `node`.
    pub fn tile(node: NodeId, tile: TileId) -> Self {
        Self { node, elem: Elem::Tile(tile) }
    }

    /// Address of the chipset of `node`.
    pub fn chipset(node: NodeId) -> Self {
        Self { node, elem: Elem::Chipset }
    }

    /// Returns the tile index if this addresses a tile.
    pub fn tile_id(&self) -> Option<TileId> {
        match self.elem {
            Elem::Tile(t) => Some(t),
            Elem::Chipset => None,
        }
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.elem {
            Elem::Tile(t) => write!(f, "{}.t{}", self.node, t),
            Elem::Chipset => write!(f, "{}.chipset", self.node),
        }
    }
}

/// The three virtual networks (OpenPiton's NoC1/NoC2/NoC3).
///
/// Requests, responses, and writeback/memory traffic travel on separate
/// networks so the coherence protocol cannot deadlock on shared buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VirtNet {
    /// NoC1: requests from private caches toward LLC/devices.
    Req,
    /// NoC2: responses and LLC-initiated probes toward private caches.
    Resp,
    /// NoC3: writebacks, acks, and LLC↔memory traffic.
    Mem,
}

impl VirtNet {
    /// All virtual networks, in fixed priority order.
    pub const ALL: [VirtNet; 3] = [VirtNet::Req, VirtNet::Resp, VirtNet::Mem];

    /// Dense index (0..3) for table lookups.
    pub fn index(self) -> usize {
        match self {
            VirtNet::Req => 0,
            VirtNet::Resp => 1,
            VirtNet::Mem => 2,
        }
    }
}

/// The payload of one cache line moving through the system.
///
/// Functional fidelity matters: real bytes move between DRAM, LLC slices,
/// private caches and cores, so the RISC-V interpreter observes a coherent
/// memory image produced by the protocol itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData(pub [u8; LINE_BYTES]);

impl LineData {
    /// An all-zero line.
    pub fn zeroed() -> Self {
        Self([0; LINE_BYTES])
    }

    /// Reads `size` bytes (1, 2, 4, or 8) at byte `offset` as a
    /// little-endian integer.
    ///
    /// # Panics
    ///
    /// Panics if `offset + size` exceeds the line or `size` is unsupported.
    pub fn read(&self, offset: usize, size: usize) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "unsupported access size {size}");
        assert!(offset + size <= LINE_BYTES, "access crosses line boundary");
        let mut v = 0u64;
        for i in (0..size).rev() {
            v = (v << 8) | u64::from(self.0[offset + i]);
        }
        v
    }

    /// Writes `size` bytes of `value` (little-endian) at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + size` exceeds the line or `size` is unsupported.
    pub fn write(&mut self, offset: usize, size: usize, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "unsupported access size {size}");
        assert!(offset + size <= LINE_BYTES, "access crosses line boundary");
        for i in 0..size {
            self.0[offset + i] = (value >> (8 * i)) as u8;
        }
    }
}

impl Default for LineData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Summarize: full 64-byte dumps drown debug logs.
        write!(
            f,
            "LineData[{:02x}{:02x}{:02x}{:02x}..]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Returns the line-aligned base address containing `addr`.
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES as Addr - 1)
}

/// Returns the byte offset of `addr` within its cache line.
pub fn line_offset(addr: Addr) -> usize {
    (addr & (LINE_BYTES as Addr - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_read_write_roundtrip() {
        let mut l = LineData::zeroed();
        l.write(8, 8, 0x1122_3344_5566_7788);
        assert_eq!(l.read(8, 8), 0x1122_3344_5566_7788);
        assert_eq!(l.read(8, 4), 0x5566_7788);
        assert_eq!(l.read(12, 4), 0x1122_3344);
        assert_eq!(l.read(8, 1), 0x88);
        l.write(0, 2, 0xABCD);
        assert_eq!(l.read(0, 2), 0xABCD);
        assert_eq!(l.read(0, 1), 0xCD);
        assert_eq!(l.read(1, 1), 0xAB);
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn line_write_out_of_bounds_panics() {
        LineData::zeroed().write(60, 8, 0);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn line_read_bad_size_panics() {
        LineData::zeroed().read(0, 3);
    }

    #[test]
    fn line_helpers() {
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(line_offset(0x1234), 0x34);
        assert_eq!(line_of(0x1240), 0x1240);
    }

    #[test]
    fn gid_display() {
        assert_eq!(Gid::tile(NodeId(1), 4).to_string(), "n1.t4");
        assert_eq!(Gid::chipset(NodeId(3)).to_string(), "n3.chipset");
    }

    #[test]
    fn virtnet_indices_are_dense() {
        for (i, vn) in VirtNet::ALL.iter().enumerate() {
            assert_eq!(vn.index(), i);
        }
    }
}
