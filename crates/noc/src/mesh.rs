//! The node-level mesh: routers, buffers, arbitration, and the edge port.

use smappic_sim::{
    CounterSet, Cycle, FaultInjector, Histogram, MetricsRegistry, Port as FlowPort, SaveState,
    SnapReader, SnapWriter, Stats, TraceBuf, TraceEventKind,
};

use crate::packet::Packet;
use crate::router::{Port, Router};
use crate::types::{NodeId, TileId, VirtNet};

/// Port-name fragments for the five router input directions, indexed by
/// [`Port::index`].
const DIR_NAMES: [&str; 5] = ["north", "south", "east", "west", "local"];

// Pre-interned counter slots: these are bumped on the per-flit hot path, so
// they use indexed `CounterSet` slots instead of string-keyed `Stats`.
const NOC_KEYS: &[&str] = &[
    "noc.injected",
    "noc.edge_in",
    "noc.flits",
    "noc.edge_out",
    "noc.delivered",
    "noc.fault_stall",
];
const K_INJECTED: usize = 0;
const K_EDGE_IN: usize = 1;
const K_FLITS: usize = 2;
const K_EDGE_OUT: usize = 3;
const K_DELIVERED: usize = 4;
const K_FAULT_STALL: usize = 5;

/// Geometry and timing of one node's mesh.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// The node this mesh belongs to.
    pub node: NodeId,
    /// Number of tiles.
    pub tiles: usize,
    /// Mesh width in columns (defaults to ⌈√tiles⌉).
    pub width: u16,
    /// Link traversal latency per hop, in cycles (router pipeline + wire).
    pub hop_latency: Cycle,
    /// Capacity of each (input port, virtual network) buffer, in packets.
    pub input_buffer_capacity: usize,
    /// Capacity of the edge-out queue toward the chipset, in packets.
    pub edge_capacity: usize,
}

impl MeshConfig {
    /// A mesh for `tiles` tiles with default timing (1-cycle hops, 4-packet
    /// buffers) — the defaults used by the SMAPPIC platform crate.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(node: NodeId, tiles: usize) -> Self {
        assert!(tiles > 0, "a node needs at least one tile");
        let width = (tiles as f64).sqrt().ceil() as u16;
        Self {
            node,
            tiles,
            width: width.max(1),
            hop_latency: 1,
            input_buffer_capacity: 4,
            edge_capacity: 64,
        }
    }

    /// Sets the per-hop latency.
    pub fn with_hop_latency(mut self, hop_latency: Cycle) -> Self {
        assert!(hop_latency >= 1, "hop latency below 1 would let packets teleport within a tick");
        self.hop_latency = hop_latency;
        self
    }
}

/// One (input-port, virtual-network) buffer: packets with arrival times,
/// held in a named bounded flow-control port.
#[derive(Debug, Clone)]
struct InBuf {
    q: FlowPort<(Cycle, Packet)>,
}

impl InBuf {
    fn head_ready(&self, now: Cycle) -> Option<&Packet> {
        self.q.peek().filter(|(t, _)| *t <= now).map(|(_, p)| p)
    }
}

/// Per-router state: 5 input ports × 3 VNs of buffering, output link
/// occupancy, and a round-robin arbitration pointer per output.
#[derive(Debug, Clone)]
struct RouterState {
    bufs: [[InBuf; 3]; 5],
    busy_until: [Cycle; 5],
    rr: [usize; 5],
    /// Total packets buffered across all ports/VNs; lets the tick loop
    /// skip idle routers (the common case in large meshes).
    occupancy: usize,
}

impl RouterState {
    fn new(router: usize, capacity: usize) -> Self {
        let bufs = std::array::from_fn(|p| {
            std::array::from_fn(|vn| InBuf {
                q: FlowPort::bounded(format!("r{router}.{}.vc{vn}", DIR_NAMES[p]), capacity),
            })
        });
        Self { bufs, busy_until: [0; 5], rr: [0; 5], occupancy: 0 }
    }
}

/// A 2-D mesh of routers forming one node's NoC.
///
/// Tiles inject with [`Mesh::inject`] and drain with [`Mesh::eject`]; the
/// chipset attaches at the *edge port* ([`Mesh::inject_edge`] /
/// [`Mesh::eject_edge`]), which is the north edge of router (0,0).
///
/// Call [`Mesh::tick`] once per cycle. Determinism: arbitration is
/// round-robin with fixed tie-breaking, so identical inputs yield identical
/// schedules.
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: MeshConfig,
    routers: Vec<RouterState>,
    route_fns: Vec<Router>,
    eject_q: Vec<[FlowPort<Packet>; 3]>,
    eject_rr: Vec<usize>,
    edge_out: FlowPort<Packet>,
    /// Packets buffered across the whole mesh (sum of router occupancies);
    /// lets [`Mesh::tick`] return in O(1) when the mesh is fully drained —
    /// the dominant case once components sleep between bursts. Derived
    /// state: recomputed on restore, never serialized.
    total_occupancy: usize,
    /// Packets sitting in the output queues (per-tile eject queues and the
    /// edge-out port), which `total_occupancy` does not count. Together
    /// they make [`Mesh::is_drained`] O(1). Derived state, like
    /// `total_occupancy`.
    output_occupancy: usize,
    /// Host fast-path switch: when false the tick always performs the full
    /// router scan, reproducing the plain reference simulator's work (the
    /// scan is a no-op on an empty mesh either way, so results are
    /// bit-identical).
    fast_path: bool,
    counters: CounterSet,
    faults: Option<FaultInjector>,
    /// Manhattan hop count of every packet leaving the mesh (tile
    /// delivery or edge exit), measured from its entry router — the XY
    /// route length, independent of congestion stalls.
    hops: Histogram,
    trace: TraceBuf,
}

impl Mesh {
    /// Builds the mesh for `cfg`.
    pub fn new(cfg: MeshConfig) -> Self {
        let n = cfg.tiles;
        let route_fns = (0..n as u16)
            .map(|t| {
                let (x, y) = Router::coords_of(t, cfg.width);
                Router::new(x, y, cfg.width, cfg.tiles as u16, cfg.node)
            })
            .collect();
        Self {
            routers: (0..n).map(|r| RouterState::new(r, cfg.input_buffer_capacity)).collect(),
            route_fns,
            eject_q: (0..n)
                .map(|t| {
                    std::array::from_fn(|vn| {
                        FlowPort::elastic_with(format!("eject.t{t}.vc{vn}"), 8)
                    })
                })
                .collect(),
            eject_rr: vec![0; n],
            edge_out: FlowPort::bounded("edge_out", cfg.edge_capacity),
            total_occupancy: 0,
            output_occupancy: 0,
            fast_path: true,
            cfg,
            counters: CounterSet::new(NOC_KEYS),
            faults: None,
            hops: Histogram::new(),
            trace: TraceBuf::new(4096),
        }
    }

    /// Per-packet hop-count histogram (XY route length at exit).
    pub fn hops(&self) -> &Histogram {
        &self.hops
    }

    /// The mesh's trace lane (delivery events).
    pub fn trace_mut(&mut self) -> &mut TraceBuf {
        &mut self.trace
    }

    /// The router a packet entered the mesh at: its source tile's router
    /// for local injections, router 0 (the edge port) for everything
    /// arriving from the chipset or off-node.
    fn entry_router(&self, pkt: &Packet) -> usize {
        if pkt.src.node == self.cfg.node {
            if let Some(t) = pkt.src.tile_id() {
                if (t as usize) < self.cfg.tiles {
                    return t as usize;
                }
            }
        }
        0
    }

    /// XY route length between two routers (Manhattan distance).
    fn manhattan(&self, a: usize, b: usize) -> u16 {
        let w = self.cfg.width as usize;
        let (ax, ay) = (a % w, a / w);
        let (bx, by) = (b % w, b / w);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u16
    }

    /// Installs a fault injector that transiently freezes router output
    /// ports: while a port's stall window hits, that link forwards nothing
    /// (pure back-pressure into the input buffers — no loss, no reorder).
    /// Stalls at routers holding traffic count as `noc.fault_stall`.
    pub fn set_faults(&mut self, inj: FaultInjector) {
        self.faults = Some(inj);
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Injects a packet from tile `tile`'s local port. Fails with the packet
    /// when the local input buffer is full (back-pressure to the tile).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn inject(&mut self, tile: TileId, pkt: Packet) -> Result<(), Packet> {
        let r = &mut self.routers[tile as usize];
        let buf = &mut r.bufs[Port::Local.index()][pkt.vn.index()];
        // Local injection is immediately visible to the router.
        match buf.q.try_push((0, pkt)) {
            Ok(()) => {
                r.occupancy += 1;
                self.total_occupancy += 1;
                self.counters.bump(K_INJECTED);
                Ok(())
            }
            Err((_, pkt)) => Err(pkt),
        }
    }

    /// True when tile `tile` can inject on `vn` this cycle.
    pub fn can_inject(&self, tile: TileId, vn: VirtNet) -> bool {
        !self.routers[tile as usize].bufs[Port::Local.index()][vn.index()].q.is_full()
    }

    /// Removes the next packet delivered to tile `tile`, round-robining over
    /// virtual networks.
    pub fn eject(&mut self, tile: TileId) -> Option<Packet> {
        let t = tile as usize;
        for i in 0..3 {
            let vn = (self.eject_rr[t] + i) % 3;
            if let Some(p) = self.eject_q[t][vn].pop() {
                self.eject_rr[t] = (vn + 1) % 3;
                self.output_occupancy -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Injects a packet arriving from the chipset through the edge port.
    /// Fails with the packet when the edge input buffer is full.
    pub fn inject_edge(&mut self, pkt: Packet) -> Result<(), Packet> {
        let r = &mut self.routers[0];
        let buf = &mut r.bufs[Port::North.index()][pkt.vn.index()];
        match buf.q.try_push((0, pkt)) {
            Ok(()) => {
                r.occupancy += 1;
                self.total_occupancy += 1;
                self.counters.bump(K_EDGE_IN);
                Ok(())
            }
            Err((_, pkt)) => Err(pkt),
        }
    }

    /// True when the chipset can inject on `vn` through the edge port.
    pub fn can_inject_edge(&self, vn: VirtNet) -> bool {
        !self.routers[0].bufs[Port::North.index()][vn.index()].q.is_full()
    }

    /// Removes the next packet leaving the node through the edge port.
    pub fn eject_edge(&mut self) -> Option<Packet> {
        let p = self.edge_out.pop();
        if p.is_some() {
            self.output_occupancy -= 1;
        }
        p
    }

    /// True when no packet is buffered anywhere — router inputs, eject
    /// queues, or the edge port — in O(1). Equivalent to [`Mesh::is_idle`]
    /// but cheap enough to probe every cycle.
    pub fn is_drained(&self) -> bool {
        self.total_occupancy == 0 && self.output_occupancy == 0
    }

    /// Counters collected so far (`noc.injected`, `noc.delivered`,
    /// `noc.flits`, `noc.edge_in`, `noc.edge_out`), materialized as string-
    /// keyed [`Stats`]. The live counters are indexed [`CounterSet`] slots so
    /// the per-flit hot path never hashes or compares key strings.
    pub fn stats(&self) -> Stats {
        self.counters.to_stats()
    }

    /// Merges this mesh's counters into `out` without materializing an
    /// intermediate map.
    pub fn merge_stats_into(&self, out: &mut Stats) {
        self.counters.merge_into(out);
    }

    /// True when no packet is buffered anywhere in the mesh.
    pub fn is_idle(&self) -> bool {
        self.edge_out.is_empty()
            && self.eject_q.iter().all(|qs| qs.iter().all(|q| q.is_empty()))
            && self
                .routers
                .iter()
                .all(|r| r.bufs.iter().all(|pb| pb.iter().all(|b| b.q.is_empty())))
    }

    /// Merges every port meter into `m` under `port.<prefix>.<name>.*`, in
    /// a fixed order (router buffers, eject queues, edge-out).
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        for r in &self.routers {
            for pb in &r.bufs {
                for b in pb {
                    b.q.meter().merge_into(prefix, m);
                }
            }
        }
        for qs in &self.eject_q {
            for q in qs {
                q.meter().merge_into(prefix, m);
            }
        }
        self.edge_out.meter().merge_into(prefix, m);
    }

    fn neighbor(&self, tile: usize, port: Port) -> Option<usize> {
        let w = self.cfg.width as usize;
        let (x, y) = (tile % w, tile / w);
        let n = self.cfg.tiles;
        match port {
            Port::North => (y > 0).then(|| tile - w),
            Port::South => (tile + w < n).then(|| tile + w),
            Port::East => {
                let nx = x + 1;
                (nx < w && tile + 1 < n).then(|| tile + 1)
            }
            Port::West => (x > 0).then(|| tile - 1),
            Port::Local => None,
        }
    }

    /// Toggles the host fast path (the empty-mesh tick elision). Purely a
    /// host-side switch; the simulated behaviour is identical either way.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Advances the mesh by one cycle: every router moves at most one packet
    /// per output port, subject to link occupancy (flit serialization) and
    /// downstream buffer space.
    pub fn tick(&mut self, now: Cycle) {
        if self.fast_path && self.total_occupancy == 0 {
            return; // nothing buffered anywhere: the whole scan is a no-op
        }
        let n = self.cfg.tiles;
        for r in 0..n {
            if self.routers[r].occupancy == 0 {
                continue;
            }
            for &out in &Port::ALL {
                self.try_forward(now, r, out);
            }
        }
    }

    /// Attempts to forward one packet out of router `r` through `out`.
    fn try_forward(&mut self, now: Cycle, r: usize, out: Port) {
        let oi = out.index();
        if now < self.routers[r].busy_until[oi] {
            return;
        }
        if let Some(inj) = &self.faults {
            // Lane = flattened (router, output port); the tick loop only
            // reaches routers with buffered traffic, so every counted stall
            // is a cycle where the fault could actually hold something up.
            if inj.stalled((r * 5 + oi) as u64, now) {
                self.counters.bump(K_FAULT_STALL);
                return;
            }
        }
        let edge_exit = r == 0 && out == Port::North;
        // Pre-compute downstream capacity for non-local moves.
        let neigh = self.neighbor(r, out);
        if !edge_exit && out != Port::Local && neigh.is_none() {
            return; // no link on this side of the chip
        }

        let start = self.routers[r].rr[oi];
        // 15 candidate (input port, VN) pairs, round-robin.
        for k in 0..15 {
            let c = (start + k) % 15;
            let (inp, vn) = (c / 3, c % 3);
            // A packet never turns back out the port it came in on (except
            // Local, and the edge where in/out share the North port).
            let routed = {
                let buf = &self.routers[r].bufs[inp][vn];
                match buf.head_ready(now) {
                    Some(pkt) => self.route_fns[r].route(pkt.dst) == out,
                    None => false,
                }
            };
            if !routed {
                continue;
            }
            // Check downstream space.
            let ok = if edge_exit {
                !self.edge_out.is_full()
            } else if out == Port::Local {
                true // eject queues are drained by the tile every cycle
            } else {
                let nb = neigh.expect("checked above");
                let inport = out.opposite().index();
                !self.routers[nb].bufs[inport][vn].q.is_full()
            };
            if !ok {
                continue; // this candidate blocked; try others (adaptive VC arbitration)
            }
            let (_, pkt) = self.routers[r].bufs[inp][vn].q.pop().expect("head checked");
            self.routers[r].occupancy -= 1;
            self.total_occupancy -= 1;
            let flits = pkt.flits();
            self.routers[r].busy_until[oi] = now + Cycle::from(flits);
            self.routers[r].rr[oi] = (c + 1) % 15;
            self.counters.add(K_FLITS, u64::from(flits));
            if edge_exit {
                let h = self.manhattan(self.entry_router(&pkt), r);
                self.hops.record(u64::from(h));
                self.trace.record(now, || TraceEventKind::NocDeliver {
                    dst: 0,
                    hops: h,
                    vn: vn as u8,
                    edge: true,
                });
                self.edge_out.push(pkt); // space checked above
                self.output_occupancy += 1;
                self.counters.bump(K_EDGE_OUT);
            } else if out == Port::Local {
                let h = self.manhattan(self.entry_router(&pkt), r);
                self.hops.record(u64::from(h));
                self.trace.record(now, || TraceEventKind::NocDeliver {
                    dst: r as u16,
                    hops: h,
                    vn: vn as u8,
                    edge: false,
                });
                self.eject_q[r][vn].push(pkt);
                self.output_occupancy += 1;
                self.counters.bump(K_DELIVERED);
            } else {
                let nb = neigh.expect("checked above");
                let inport = out.opposite().index();
                // Space checked above.
                self.routers[nb].bufs[inport][vn].q.push((now + self.cfg.hop_latency, pkt));
                self.routers[nb].occupancy += 1;
                self.total_occupancy += 1;
            }
            return;
        }
    }
}

impl SaveState for Mesh {
    fn save(&self, w: &mut SnapWriter) {
        self.counters.save(w);
        self.hops.save(w);
        self.edge_out.save(w);
        for rr in &self.eject_rr {
            w.usize(*rr);
        }
        for (t, qs) in self.eject_q.iter().enumerate() {
            w.scoped(&format!("eject{t}"), |w| {
                for q in qs {
                    q.save(w);
                }
            });
        }
        for (ri, r) in self.routers.iter().enumerate() {
            w.scoped(&format!("r{ri}"), |w| {
                for pb in &r.bufs {
                    for b in pb {
                        b.q.save(w);
                    }
                }
                for busy in &r.busy_until {
                    w.u64(*busy);
                }
                for rr in &r.rr {
                    w.usize(*rr);
                }
            });
        }
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.counters.restore(r);
        self.hops.restore(r);
        self.edge_out.restore(r);
        for rr in &mut self.eject_rr {
            *rr = r.usize();
        }
        for (t, qs) in self.eject_q.iter_mut().enumerate() {
            r.scoped(&format!("eject{t}"), |r| {
                for q in qs {
                    q.restore(r);
                }
            });
        }
        let mut total = 0;
        for (ri, rt) in self.routers.iter_mut().enumerate() {
            r.scoped(&format!("r{ri}"), |r| {
                let mut occupancy = 0;
                for pb in &mut rt.bufs {
                    for b in pb {
                        b.q.restore(r);
                        occupancy += b.q.len();
                    }
                }
                for busy in &mut rt.busy_until {
                    *busy = r.u64();
                }
                for rr in &mut rt.rr {
                    *rr = r.usize();
                }
                // Occupancy is the buffered-packet total, derivable from the
                // restored queues.
                rt.occupancy = occupancy;
                total += occupancy;
            });
        }
        self.total_occupancy = total;
        self.output_occupancy = self.edge_out.len()
            + self
                .eject_q
                .iter()
                .map(|qs| qs.iter().map(|q| q.len()).sum::<usize>())
                .sum::<usize>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Msg;
    use crate::types::{Gid, LineData};

    fn mesh(tiles: usize) -> Mesh {
        Mesh::new(MeshConfig::new(NodeId(0), tiles))
    }

    fn req(dst: Gid, src: Gid, line: u64) -> Packet {
        Packet::on_canonical_vn(dst, src, Msg::ReqS { line })
    }

    /// Runs the mesh until `tile` ejects a packet, returning (packet, cycles).
    fn run_until_eject(m: &mut Mesh, tile: TileId, max: Cycle) -> (Packet, Cycle) {
        for now in 0..max {
            m.tick(now);
            if let Some(p) = m.eject(tile) {
                return (p, now);
            }
        }
        panic!("packet not delivered within {max} cycles");
    }

    #[test]
    fn single_hop_delivery() {
        let mut m = mesh(4);
        m.inject(0, req(Gid::tile(NodeId(0), 1), Gid::tile(NodeId(0), 0), 0x40)).unwrap();
        let (p, t) = run_until_eject(&mut m, 1, 50);
        assert_eq!(p.msg, Msg::ReqS { line: 0x40 });
        assert!(t <= 5, "one hop should take a handful of cycles, took {t}");
    }

    #[test]
    fn corner_to_corner_in_12_tile_mesh() {
        // 12 tiles → 4-wide, 3 rows. Tile 0 = (0,0), tile 11 = (3,2).
        let mut m = mesh(12);
        m.inject(0, req(Gid::tile(NodeId(0), 11), Gid::tile(NodeId(0), 0), 0x80)).unwrap();
        let (_, t) = run_until_eject(&mut m, 11, 100);
        // 5 hops; each hop ~1 cycle latency + arbitration.
        assert!((5..=20).contains(&t), "corner-to-corner took {t} cycles");
        // Tile 0 = (0,0) to tile 11 = (3,2): Manhattan distance 5.
        assert_eq!(m.hops().count(), 1);
        assert_eq!(m.hops().max(), 5, "hop histogram must see the XY route length");
    }

    #[test]
    fn hop_histogram_distinguishes_local_and_edge_paths() {
        let mut m = mesh(4); // 2x2
                             // Self-delivery: 0 hops.
        m.inject(2, req(Gid::tile(NodeId(0), 2), Gid::tile(NodeId(0), 2), 0)).unwrap();
        run_until_eject(&mut m, 2, 20);
        // Off-node: tile 3 = (1,1) to the edge at router 0 = 2 hops.
        m.inject(3, req(Gid::tile(NodeId(2), 0), Gid::tile(NodeId(0), 3), 0x40)).unwrap();
        for now in 0..100 {
            m.tick(now);
            if m.eject_edge().is_some() {
                break;
            }
        }
        // Edge injection toward tile 3: enters at router 0, 2 hops.
        let pkt = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 3),
            Gid::chipset(NodeId(0)),
            Msg::Data { line: 0, data: LineData::zeroed(), excl: false },
        );
        m.inject_edge(pkt).unwrap();
        run_until_eject(&mut m, 3, 100);
        assert_eq!(m.hops().count(), 3);
        assert_eq!(m.hops().min(), 0, "self-delivery is zero hops");
        assert_eq!(m.hops().max(), 2);
        assert_eq!(m.hops().bucket(1), 2, "both cross-mesh trips were 2 hops");
    }

    #[test]
    fn self_delivery_works() {
        let mut m = mesh(4);
        m.inject(2, req(Gid::tile(NodeId(0), 2), Gid::tile(NodeId(0), 2), 0)).unwrap();
        let (p, _) = run_until_eject(&mut m, 2, 20);
        assert_eq!(p.dst, Gid::tile(NodeId(0), 2));
    }

    #[test]
    fn chipset_traffic_leaves_through_edge() {
        let mut m = mesh(12);
        m.inject(7, req(Gid::chipset(NodeId(0)), Gid::tile(NodeId(0), 7), 0xC0)).unwrap();
        let mut got = None;
        for now in 0..100 {
            m.tick(now);
            if let Some(p) = m.eject_edge() {
                got = Some(p);
                break;
            }
        }
        assert_eq!(got.expect("edge packet").dst, Gid::chipset(NodeId(0)));
    }

    #[test]
    fn off_node_traffic_leaves_through_edge() {
        let mut m = mesh(4);
        m.inject(3, req(Gid::tile(NodeId(2), 0), Gid::tile(NodeId(0), 3), 0)).unwrap();
        let mut got = false;
        for now in 0..100 {
            m.tick(now);
            if m.eject_edge().is_some() {
                got = true;
                break;
            }
        }
        assert!(got);
    }

    #[test]
    fn edge_injection_reaches_tile() {
        let mut m = mesh(12);
        let pkt = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 10),
            Gid::chipset(NodeId(0)),
            Msg::Data { line: 0, data: LineData::zeroed(), excl: false },
        );
        m.inject_edge(pkt).unwrap();
        let (p, _) = run_until_eject(&mut m, 10, 100);
        assert!(matches!(p.msg, Msg::Data { .. }));
    }

    #[test]
    fn back_pressure_on_full_local_buffer() {
        let mut m = mesh(4);
        let cap = m.config().input_buffer_capacity;
        for i in 0..cap {
            m.inject(0, req(Gid::tile(NodeId(0), 3), Gid::tile(NodeId(0), 0), i as u64 * 64))
                .unwrap();
        }
        assert!(!m.can_inject(0, VirtNet::Req));
        let extra = req(Gid::tile(NodeId(0), 3), Gid::tile(NodeId(0), 0), 0x999);
        assert!(m.inject(0, extra).is_err());
    }

    #[test]
    fn per_pair_ordering_is_preserved() {
        let mut m = mesh(9);
        let dst = Gid::tile(NodeId(0), 8);
        let src = Gid::tile(NodeId(0), 0);
        let mut sent = 0u64;
        let mut received = Vec::new();
        let mut now = 0;
        while received.len() < 20 {
            if sent < 20 && m.can_inject(0, VirtNet::Req) {
                m.inject(0, req(dst, src, sent * 64)).unwrap();
                sent += 1;
            }
            m.tick(now);
            while let Some(p) = m.eject(8) {
                if let Msg::ReqS { line } = p.msg {
                    received.push(line / 64);
                }
            }
            now += 1;
            assert!(now < 10_000, "packets stuck");
        }
        assert_eq!(received, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn big_packets_occupy_links_longer() {
        // Send two 9-flit packets; second is serialized behind the first.
        let mut m = mesh(2);
        let dst = Gid::tile(NodeId(0), 1);
        let src = Gid::tile(NodeId(0), 0);
        let data = Msg::Data { line: 0, data: LineData::zeroed(), excl: false };
        m.inject(0, Packet::on_canonical_vn(dst, src, data.clone())).unwrap();
        m.inject(0, Packet::on_canonical_vn(dst, src, data)).unwrap();
        let mut arrivals = Vec::new();
        for now in 0..100 {
            m.tick(now);
            while m.eject(1).is_some() {
                arrivals.push(now);
            }
            if arrivals.len() == 2 {
                break;
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(arrivals[1] - arrivals[0] >= 8, "9-flit serialization gap missing: {arrivals:?}");
    }

    #[test]
    fn is_idle_reflects_buffered_state() {
        let mut m = mesh(4);
        assert!(m.is_idle());
        m.inject(0, req(Gid::tile(NodeId(0), 3), Gid::tile(NodeId(0), 0), 0)).unwrap();
        assert!(!m.is_idle());
        for now in 0..50 {
            m.tick(now);
            m.eject(3);
        }
        assert!(m.is_idle());
    }

    #[test]
    fn stats_count_traffic() {
        let mut m = mesh(4);
        m.inject(0, req(Gid::tile(NodeId(0), 1), Gid::tile(NodeId(0), 0), 0)).unwrap();
        for now in 0..20 {
            m.tick(now);
            m.eject(1);
        }
        assert_eq!(m.stats().get("noc.injected"), 1);
        assert_eq!(m.stats().get("noc.delivered"), 1);
        assert!(m.stats().get("noc.flits") >= 1);
    }
}
