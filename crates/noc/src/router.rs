//! 5-port mesh router with dimension-ordered (XY) routing.

use crate::types::{Elem, Gid, NodeId};

/// A router port. `Local` attaches the tile; on router (0,0) the `North`
/// port is the *edge port* where traffic leaves the node toward the chipset
/// (§3.1: inter-node packets are routed into tile 0, then northbound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward decreasing y (row 0 is the chip's north edge).
    North,
    /// Toward increasing y.
    South,
    /// Toward increasing x.
    East,
    /// Toward decreasing x.
    West,
    /// The tile attached to this router.
    Local,
}

impl Port {
    /// All ports in arbitration order.
    pub const ALL: [Port; 5] = [Port::North, Port::South, Port::East, Port::West, Port::Local];

    /// Dense index (0..5).
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// The port on the neighboring router that receives what this port
    /// sends (e.g. my East feeds the neighbor's West).
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            Port::Local => Port::Local,
        }
    }
}

/// Pure XY routing decision for a router at `(x, y)` in a `width`-column
/// mesh belonging to `node`.
///
/// Packets destined for another node or for the chipset are routed to the
/// edge: toward router (0,0), then out its North port. Packets for a local
/// tile take X first, then Y, then eject at `Local`.
///
/// Returns the output port the packet must take from this router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's x coordinate (column).
    pub x: u16,
    /// This router's y coordinate (row).
    pub y: u16,
    /// Mesh width in columns.
    pub width: u16,
    /// Total tiles in the mesh (the last row may be ragged).
    pub tiles: u16,
    /// The node this mesh belongs to.
    pub node: NodeId,
}

impl Router {
    /// Creates the routing function for position `(x, y)` in a mesh of
    /// `tiles` tiles.
    pub fn new(x: u16, y: u16, width: u16, tiles: u16, node: NodeId) -> Self {
        Self { x, y, width, tiles, node }
    }

    /// True when the router one hop East of this one exists (the last row
    /// of a non-rectangular tile count is shorter).
    fn east_exists(&self) -> bool {
        self.x + 1 < self.width && self.y * self.width + self.x + 1 < self.tiles
    }

    /// Coordinates of tile `t` in this mesh geometry.
    pub fn coords_of(t: u16, width: u16) -> (u16, u16) {
        (t % width, t / width)
    }

    /// Decides the output port for a packet addressed to `dst`.
    pub fn route(&self, dst: Gid) -> Port {
        let (tx, ty, exit_edge) = if dst.node != self.node || dst.elem == Elem::Chipset {
            // Off-node or chipset traffic funnels through tile 0's north edge.
            (0, 0, true)
        } else {
            let t = match dst.elem {
                Elem::Tile(t) => t,
                Elem::Chipset => unreachable!(),
            };
            let (x, y) = Self::coords_of(t, self.width);
            (x, y, false)
        };
        if tx != self.x {
            if tx > self.x {
                // Ragged last row: when the eastward hop does not exist,
                // detour North first (rows above are always full, so the
                // detour strictly approaches the target and terminates).
                if self.east_exists() {
                    Port::East
                } else {
                    Port::North
                }
            } else {
                Port::West
            }
        } else if ty != self.y {
            if ty > self.y {
                Port::South
            } else {
                Port::North
            }
        } else if exit_edge {
            Port::North
        } else {
            Port::Local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid_tile(t: u16) -> Gid {
        Gid::tile(NodeId(0), t)
    }

    #[test]
    fn xy_routing_goes_x_first() {
        // 4-wide mesh; router at tile 5 = (1,1); dst tile 3 = (3,0).
        let r = Router::new(1, 1, 4, 12, NodeId(0));
        assert_eq!(r.route(gid_tile(3)), Port::East);
        // dst tile 4 = (0,1): same row, go west.
        assert_eq!(r.route(gid_tile(4)), Port::West);
        // dst tile 9 = (1,2): same column, go south.
        assert_eq!(r.route(gid_tile(9)), Port::South);
        // dst tile 1 = (1,0): go north.
        assert_eq!(r.route(gid_tile(1)), Port::North);
        // dst self: eject.
        assert_eq!(r.route(gid_tile(5)), Port::Local);
    }

    #[test]
    fn chipset_traffic_funnels_to_tile0_north() {
        let chipset = Gid::chipset(NodeId(0));
        // From (2,1): west first.
        assert_eq!(Router::new(2, 1, 4, 12, NodeId(0)).route(chipset), Port::West);
        // From (0,1): north.
        assert_eq!(Router::new(0, 1, 4, 12, NodeId(0)).route(chipset), Port::North);
        // At (0,0): exit via the edge (north).
        assert_eq!(Router::new(0, 0, 4, 12, NodeId(0)).route(chipset), Port::North);
    }

    #[test]
    fn off_node_traffic_also_exits_at_edge() {
        let remote = Gid::tile(NodeId(3), 7);
        assert_eq!(Router::new(0, 0, 4, 12, NodeId(0)).route(remote), Port::North);
        assert_eq!(Router::new(1, 0, 4, 12, NodeId(0)).route(remote), Port::West);
    }

    #[test]
    fn ragged_mesh_detours_north_instead_of_falling_off() {
        // 3 tiles on a 2-wide grid: (0,0), (1,0), (0,1). Router (0,1) has
        // no East neighbor; traffic for tile 1 must detour North.
        let r = Router::new(0, 1, 2, 3, NodeId(0));
        assert_eq!(r.route(gid_tile(1)), Port::North);
        // After the detour, (0,0) goes East normally.
        let r0 = Router::new(0, 0, 2, 3, NodeId(0));
        assert_eq!(r0.route(gid_tile(1)), Port::East);
    }

    #[test]
    fn opposite_ports_pair_up() {
        assert_eq!(Port::East.opposite(), Port::West);
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::Local.opposite(), Port::Local);
    }
}
