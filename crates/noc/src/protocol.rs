//! The NoC message protocol: coherence, memory, MMIO, atomics, interrupts.
//!
//! This enum is the BYOC NoC packet vocabulary of the simulated platform.
//! Private caches (BPC), LLC slices, the NoC-AXI4 memory controller, MMIO
//! devices, accelerators, the interrupt packetizer, and the inter-node
//! bridge all speak it. The inter-node bridge encapsulates these messages
//! into AXI4 write bursts without inspecting them (§3.1: *"The encapsulation
//! does not change the traffic and does not significantly rely on packet
//! structure"*).

use crate::types::{Addr, LineData};

/// Atomic read-modify-write operations executed at the home LLC slice.
///
/// BYOC performs atomics near the directory so they are globally ordered
/// even across nodes; the RISC-V `A` extension maps onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Exchange: returns old value, stores operand.
    Swap,
    /// Two's-complement addition.
    Add,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Signed maximum.
    Max,
    /// Signed minimum.
    Min,
    /// Unsigned maximum.
    MaxU,
    /// Unsigned minimum.
    MinU,
    /// Compare-and-swap: stores operand only if old == expected.
    Cas,
}

impl AmoOp {
    /// Applies the operation, returning the new memory value.
    ///
    /// `old` is the current memory value, `val` the operand, and `expected`
    /// is consulted only by [`AmoOp::Cas`]. Values are interpreted at width
    /// `size` bytes (4 or 8).
    pub fn apply(self, old: u64, val: u64, expected: u64, size: usize) -> u64 {
        let sx = |v: u64| -> i64 {
            match size {
                4 => v as u32 as i32 as i64,
                _ => v as i64,
            }
        };
        let trunc = |v: u64| -> u64 {
            match size {
                4 => v & 0xFFFF_FFFF,
                _ => v,
            }
        };
        let new = match self {
            AmoOp::Swap => val,
            AmoOp::Add => old.wrapping_add(val),
            AmoOp::And => old & val,
            AmoOp::Or => old | val,
            AmoOp::Xor => old ^ val,
            AmoOp::Max => {
                if sx(old) >= sx(val) {
                    old
                } else {
                    val
                }
            }
            AmoOp::Min => {
                if sx(old) <= sx(val) {
                    old
                } else {
                    val
                }
            }
            AmoOp::MaxU => {
                if trunc(old) >= trunc(val) {
                    old
                } else {
                    val
                }
            }
            AmoOp::MinU => {
                if trunc(old) <= trunc(val) {
                    old
                } else {
                    val
                }
            }
            AmoOp::Cas => {
                if trunc(old) == trunc(expected) {
                    val
                } else {
                    old
                }
            }
        };
        trunc(new)
    }
}

/// One NoC protocol message.
///
/// Variants are grouped by the virtual network they travel on; the
/// [`Msg::virt_net`] method returns the canonical assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- VN1 (Req): private cache / device → home LLC slice ----
    /// Read-shared request: requester wants the line in S state.
    ReqS {
        /// Line-aligned address.
        line: Addr,
    },
    /// Read-exclusive / upgrade request: requester wants M state.
    ReqM {
        /// Line-aligned address.
        line: Addr,
    },
    /// Atomic read-modify-write executed at the home LLC slice.
    Amo {
        /// Target address (need not be line-aligned).
        addr: Addr,
        /// Access width in bytes (4 or 8).
        size: u8,
        /// The operation.
        op: AmoOp,
        /// Operand value.
        val: u64,
        /// Expected value (for CAS; ignored otherwise).
        expected: u64,
    },
    /// Non-cacheable load (MMIO, accelerator fetch, uncached data).
    NcLoad {
        /// Target address.
        addr: Addr,
        /// Access width in bytes (1, 2, 4, or 8).
        size: u8,
    },
    /// Non-cacheable store.
    NcStore {
        /// Target address.
        addr: Addr,
        /// Access width in bytes (1, 2, 4, or 8).
        size: u8,
        /// Store data (little-endian in the low `size` bytes).
        data: u64,
    },

    // ---- VN2 (Resp): home LLC slice → private cache / device ----
    /// Line fill carrying data; `excl` grants E/M rather than S.
    Data {
        /// Line-aligned address.
        line: Addr,
        /// The 64 bytes of the line.
        data: LineData,
        /// True when the requester may take the line exclusively.
        excl: bool,
    },
    /// Upgrade grant without data (requester already held S).
    UpgradeAck {
        /// Line-aligned address.
        line: Addr,
    },
    /// Directory asks a sharer to invalidate a line.
    Inv {
        /// Line-aligned address.
        line: Addr,
    },
    /// Directory recalls a (possibly dirty) line from its exclusive owner,
    /// invalidating the owner's copy (used for writes, atomics, evictions).
    Recall {
        /// Line-aligned address.
        line: Addr,
    },
    /// Directory downgrades the exclusive owner to Shared, pulling back any
    /// dirty data but letting the owner keep a readable copy (used to serve
    /// read-shared requests without losing the owner's locality).
    Downgrade {
        /// Line-aligned address.
        line: Addr,
    },
    /// Response to an atomic: the old memory value.
    AmoResp {
        /// Target address of the original AMO.
        addr: Addr,
        /// Value read before the modification.
        old: u64,
    },
    /// Non-cacheable load response.
    NcData {
        /// Address of the original load.
        addr: Addr,
        /// Loaded data (little-endian in the low bytes).
        data: u64,
    },
    /// Non-cacheable store acknowledgement.
    NcAck {
        /// Address of the original store.
        addr: Addr,
    },
    /// Interrupt delivery: the packetized form of an interrupt wire change
    /// (§3.3, Fig 6).
    Irq {
        /// Which interrupt line (maps onto the core's mip bits).
        line_no: u16,
        /// New level of the wire.
        level: bool,
    },

    // ---- VN3 (Mem): acks/writebacks → LLC, LLC ↔ memory controller ----
    /// Dirty eviction from a private cache.
    WbData {
        /// Line-aligned address.
        line: Addr,
        /// The dirty line contents.
        data: LineData,
    },
    /// Clean eviction notification (keeps the directory precise).
    WbClean {
        /// Line-aligned address.
        line: Addr,
    },
    /// Acknowledgement of an [`Msg::Inv`].
    InvAck {
        /// Line-aligned address.
        line: Addr,
    },
    /// Owner's reply to a [`Msg::Recall`] when it no longer holds the line
    /// (its writeback is already in flight on the same virtual network and
    /// is therefore ordered ahead of this nack).
    RecallNack {
        /// Line-aligned address.
        line: Addr,
    },
    /// Owner's reply to a [`Msg::Recall`], carrying the line back.
    RecallData {
        /// Line-aligned address.
        line: Addr,
        /// Line contents at the owner.
        data: LineData,
        /// True if the owner had modified the line.
        dirty: bool,
    },
    /// LLC miss: fetch a line from the memory controller.
    MemRd {
        /// Line-aligned address.
        line: Addr,
    },
    /// LLC eviction: write a line back to memory.
    MemWr {
        /// Line-aligned address.
        line: Addr,
        /// Line contents.
        data: LineData,
    },
    /// Memory controller's reply to a [`Msg::MemRd`].
    MemData {
        /// Line-aligned address.
        line: Addr,
        /// Line contents read from DRAM.
        data: LineData,
    },
}

impl Msg {
    /// The canonical virtual network this message travels on.
    pub fn virt_net(&self) -> crate::types::VirtNet {
        use crate::types::VirtNet::*;
        match self {
            Msg::ReqS { .. }
            | Msg::ReqM { .. }
            | Msg::Amo { .. }
            | Msg::NcLoad { .. }
            | Msg::NcStore { .. } => Req,
            Msg::Data { .. }
            | Msg::UpgradeAck { .. }
            | Msg::Inv { .. }
            | Msg::Recall { .. }
            | Msg::Downgrade { .. }
            | Msg::AmoResp { .. }
            | Msg::NcData { .. }
            | Msg::NcAck { .. }
            | Msg::Irq { .. } => Resp,
            Msg::WbData { .. }
            | Msg::WbClean { .. }
            | Msg::InvAck { .. }
            | Msg::RecallNack { .. }
            | Msg::RecallData { .. }
            | Msg::MemRd { .. }
            | Msg::MemWr { .. }
            | Msg::MemData { .. } => Mem,
        }
    }

    /// Number of 64-bit payload flits this message occupies after the header
    /// flit (OpenPiton-style: a 64-byte data payload is eight flits).
    pub fn payload_flits(&self) -> u32 {
        match self {
            Msg::Data { .. }
            | Msg::WbData { .. }
            | Msg::RecallData { .. }
            | Msg::MemWr { .. }
            | Msg::MemData { .. } => 8,
            Msg::Amo { .. } => 2,
            Msg::NcStore { .. } | Msg::NcData { .. } | Msg::AmoResp { .. } => 1,
            _ => 0,
        }
    }

    /// True for messages that carry a full cache line.
    pub fn carries_line(&self) -> bool {
        self.payload_flits() == 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VirtNet;

    #[test]
    fn amo_arithmetic() {
        assert_eq!(AmoOp::Add.apply(5, 3, 0, 8), 8);
        assert_eq!(AmoOp::Swap.apply(5, 3, 0, 8), 3);
        assert_eq!(AmoOp::And.apply(0b1100, 0b1010, 0, 8), 0b1000);
        assert_eq!(AmoOp::Or.apply(0b1100, 0b1010, 0, 8), 0b1110);
        assert_eq!(AmoOp::Xor.apply(0b1100, 0b1010, 0, 8), 0b0110);
    }

    #[test]
    fn amo_signed_minmax_32bit() {
        let neg1_32 = 0xFFFF_FFFFu64; // -1 as u32
        assert_eq!(AmoOp::Max.apply(neg1_32, 1, 0, 4), 1);
        assert_eq!(AmoOp::Min.apply(neg1_32, 1, 0, 4), neg1_32);
        assert_eq!(AmoOp::MaxU.apply(neg1_32, 1, 0, 4), neg1_32);
        assert_eq!(AmoOp::MinU.apply(neg1_32, 1, 0, 4), 1);
    }

    #[test]
    fn amo_add_wraps_at_width() {
        assert_eq!(AmoOp::Add.apply(0xFFFF_FFFF, 1, 0, 4), 0);
        assert_eq!(AmoOp::Add.apply(u64::MAX, 1, 0, 8), 0);
    }

    #[test]
    fn amo_cas_semantics() {
        assert_eq!(AmoOp::Cas.apply(7, 99, 7, 8), 99); // matches: stored
        assert_eq!(AmoOp::Cas.apply(7, 99, 8, 8), 7); // mismatch: unchanged
    }

    #[test]
    fn virt_net_assignment_is_consistent() {
        assert_eq!(Msg::ReqS { line: 0 }.virt_net(), VirtNet::Req);
        assert_eq!(
            Msg::Data { line: 0, data: LineData::zeroed(), excl: false }.virt_net(),
            VirtNet::Resp
        );
        assert_eq!(Msg::MemRd { line: 0 }.virt_net(), VirtNet::Mem);
        assert_eq!(Msg::InvAck { line: 0 }.virt_net(), VirtNet::Mem);
        assert_eq!(Msg::Irq { line_no: 0, level: true }.virt_net(), VirtNet::Resp);
    }

    #[test]
    fn line_messages_are_nine_flits_total() {
        let m = Msg::Data { line: 0, data: LineData::zeroed(), excl: false };
        assert!(m.carries_line());
        assert_eq!(m.payload_flits(), 8);
        assert!(!Msg::ReqS { line: 0 }.carries_line());
    }
}
