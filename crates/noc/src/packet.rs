//! NoC packets with flit accounting.

use crate::protocol::Msg;
use crate::types::{Gid, VirtNet};

/// One NoC packet: a header flit plus zero or more 64-bit payload flits.
///
/// Packets carry their virtual-network assignment explicitly so the mesh can
/// buffer them separately; [`Packet::new`] takes it from the caller (usually
/// `msg.virt_net()`) because a handful of paths — e.g. the inter-node bridge
/// re-injecting traffic — must preserve the original assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Destination element.
    pub dst: Gid,
    /// Source element (used for directory bookkeeping and responses).
    pub src: Gid,
    /// Virtual network the packet travels on.
    pub vn: VirtNet,
    /// Protocol payload.
    pub msg: Msg,
}

impl Packet {
    /// Creates a packet.
    pub fn new(dst: Gid, src: Gid, vn: VirtNet, msg: Msg) -> Self {
        Self { dst, src, vn, msg }
    }

    /// Creates a packet on the message's canonical virtual network.
    pub fn on_canonical_vn(dst: Gid, src: Gid, msg: Msg) -> Self {
        let vn = msg.virt_net();
        Self { dst, src, vn, msg }
    }

    /// Total flits on the wire: one header flit plus payload flits.
    pub fn flits(&self) -> u32 {
        1 + self.msg.payload_flits()
    }

    /// Size in bytes when serialized onto an off-chip link (8 bytes/flit).
    pub fn wire_bytes(&self) -> u64 {
        u64::from(self.flits()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LineData, NodeId};

    #[test]
    fn flit_accounting() {
        let p = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 1),
            Gid::tile(NodeId(0), 0),
            Msg::ReqS { line: 0x40 },
        );
        assert_eq!(p.flits(), 1);
        assert_eq!(p.wire_bytes(), 8);

        let d = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 0),
            Gid::chipset(NodeId(0)),
            Msg::Data { line: 0x40, data: LineData::zeroed(), excl: true },
        );
        assert_eq!(d.flits(), 9);
        assert_eq!(d.wire_bytes(), 72);
    }

    #[test]
    fn canonical_vn_matches_message() {
        let p = Packet::on_canonical_vn(
            Gid::chipset(NodeId(0)),
            Gid::tile(NodeId(0), 0),
            Msg::MemRd { line: 0 },
        );
        assert_eq!(p.vn, VirtNet::Mem);
    }
}
