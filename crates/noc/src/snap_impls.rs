//! [`Pack`] impls for the NoC vocabulary types, so generic queue containers
//! (`Port`, `Ring`, `TrafficShaper`) can serialize packets in flight.
//!
//! Enum variants are tagged with explicit stable `u8` discriminants in
//! declaration order — the tag is part of the snapshot format, so variants
//! must never be renumbered, only appended.

use smappic_sim::{Pack, SnapReader, SnapWriter};

use crate::packet::Packet;
use crate::protocol::{AmoOp, Msg};
use crate::types::{Elem, Gid, LineData, NodeId, VirtNet, LINE_BYTES};

impl Pack for NodeId {
    fn pack(&self, w: &mut SnapWriter) {
        w.u16(self.0);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        NodeId(r.u16())
    }
}

impl Pack for Elem {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            Elem::Tile(t) => {
                w.u8(0);
                w.u16(*t);
            }
            Elem::Chipset => w.u8(1),
        }
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => Elem::Tile(r.u16()),
            1 => Elem::Chipset,
            t => {
                r.corrupt(&format!("unknown Elem tag {t}"));
                Elem::Chipset
            }
        }
    }
}

impl Pack for Gid {
    fn pack(&self, w: &mut SnapWriter) {
        self.node.pack(w);
        self.elem.pack(w);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        Gid { node: NodeId::unpack(r), elem: Elem::unpack(r) }
    }
}

impl Pack for VirtNet {
    fn pack(&self, w: &mut SnapWriter) {
        w.u8(self.index() as u8);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => VirtNet::Req,
            1 => VirtNet::Resp,
            2 => VirtNet::Mem,
            t => {
                r.corrupt(&format!("unknown VirtNet tag {t}"));
                VirtNet::Req
            }
        }
    }
}

impl Pack for LineData {
    fn pack(&self, w: &mut SnapWriter) {
        w.bytes(&self.0);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        // Borrowed read: cache lines copy straight out of the section
        // buffer, no intermediate Vec.
        let raw = r.byte_slice();
        match <[u8; LINE_BYTES]>::try_from(raw) {
            Ok(bytes) => LineData(bytes),
            Err(_) => {
                r.corrupt("cache line is not 64 bytes");
                LineData::zeroed()
            }
        }
    }
}

impl Pack for AmoOp {
    fn pack(&self, w: &mut SnapWriter) {
        let tag: u8 = match self {
            AmoOp::Swap => 0,
            AmoOp::Add => 1,
            AmoOp::And => 2,
            AmoOp::Or => 3,
            AmoOp::Xor => 4,
            AmoOp::Max => 5,
            AmoOp::Min => 6,
            AmoOp::MaxU => 7,
            AmoOp::MinU => 8,
            AmoOp::Cas => 9,
        };
        w.u8(tag);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => AmoOp::Swap,
            1 => AmoOp::Add,
            2 => AmoOp::And,
            3 => AmoOp::Or,
            4 => AmoOp::Xor,
            5 => AmoOp::Max,
            6 => AmoOp::Min,
            7 => AmoOp::MaxU,
            8 => AmoOp::MinU,
            9 => AmoOp::Cas,
            t => {
                r.corrupt(&format!("unknown AmoOp tag {t}"));
                AmoOp::Swap
            }
        }
    }
}

impl Pack for Msg {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            Msg::ReqS { line } => {
                w.u8(0);
                w.u64(*line);
            }
            Msg::ReqM { line } => {
                w.u8(1);
                w.u64(*line);
            }
            Msg::Amo { addr, size, op, val, expected } => {
                w.u8(2);
                w.u64(*addr);
                w.u8(*size);
                op.pack(w);
                w.u64(*val);
                w.u64(*expected);
            }
            Msg::NcLoad { addr, size } => {
                w.u8(3);
                w.u64(*addr);
                w.u8(*size);
            }
            Msg::NcStore { addr, size, data } => {
                w.u8(4);
                w.u64(*addr);
                w.u8(*size);
                w.u64(*data);
            }
            Msg::Data { line, data, excl } => {
                w.u8(5);
                w.u64(*line);
                data.pack(w);
                w.bool(*excl);
            }
            Msg::UpgradeAck { line } => {
                w.u8(6);
                w.u64(*line);
            }
            Msg::Inv { line } => {
                w.u8(7);
                w.u64(*line);
            }
            Msg::Recall { line } => {
                w.u8(8);
                w.u64(*line);
            }
            Msg::Downgrade { line } => {
                w.u8(9);
                w.u64(*line);
            }
            Msg::AmoResp { addr, old } => {
                w.u8(10);
                w.u64(*addr);
                w.u64(*old);
            }
            Msg::NcData { addr, data } => {
                w.u8(11);
                w.u64(*addr);
                w.u64(*data);
            }
            Msg::NcAck { addr } => {
                w.u8(12);
                w.u64(*addr);
            }
            Msg::Irq { line_no, level } => {
                w.u8(13);
                w.u16(*line_no);
                w.bool(*level);
            }
            Msg::WbData { line, data } => {
                w.u8(14);
                w.u64(*line);
                data.pack(w);
            }
            Msg::WbClean { line } => {
                w.u8(15);
                w.u64(*line);
            }
            Msg::InvAck { line } => {
                w.u8(16);
                w.u64(*line);
            }
            Msg::RecallNack { line } => {
                w.u8(17);
                w.u64(*line);
            }
            Msg::RecallData { line, data, dirty } => {
                w.u8(18);
                w.u64(*line);
                data.pack(w);
                w.bool(*dirty);
            }
            Msg::MemRd { line } => {
                w.u8(19);
                w.u64(*line);
            }
            Msg::MemWr { line, data } => {
                w.u8(20);
                w.u64(*line);
                data.pack(w);
            }
            Msg::MemData { line, data } => {
                w.u8(21);
                w.u64(*line);
                data.pack(w);
            }
        }
    }

    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => Msg::ReqS { line: r.u64() },
            1 => Msg::ReqM { line: r.u64() },
            2 => Msg::Amo {
                addr: r.u64(),
                size: r.u8(),
                op: AmoOp::unpack(r),
                val: r.u64(),
                expected: r.u64(),
            },
            3 => Msg::NcLoad { addr: r.u64(), size: r.u8() },
            4 => Msg::NcStore { addr: r.u64(), size: r.u8(), data: r.u64() },
            5 => Msg::Data { line: r.u64(), data: LineData::unpack(r), excl: r.bool() },
            6 => Msg::UpgradeAck { line: r.u64() },
            7 => Msg::Inv { line: r.u64() },
            8 => Msg::Recall { line: r.u64() },
            9 => Msg::Downgrade { line: r.u64() },
            10 => Msg::AmoResp { addr: r.u64(), old: r.u64() },
            11 => Msg::NcData { addr: r.u64(), data: r.u64() },
            12 => Msg::NcAck { addr: r.u64() },
            13 => Msg::Irq { line_no: r.u16(), level: r.bool() },
            14 => Msg::WbData { line: r.u64(), data: LineData::unpack(r) },
            15 => Msg::WbClean { line: r.u64() },
            16 => Msg::InvAck { line: r.u64() },
            17 => Msg::RecallNack { line: r.u64() },
            18 => Msg::RecallData { line: r.u64(), data: LineData::unpack(r), dirty: r.bool() },
            19 => Msg::MemRd { line: r.u64() },
            20 => Msg::MemWr { line: r.u64(), data: LineData::unpack(r) },
            21 => Msg::MemData { line: r.u64(), data: LineData::unpack(r) },
            t => {
                r.corrupt(&format!("unknown Msg tag {t}"));
                Msg::ReqS { line: 0 }
            }
        }
    }
}

impl Pack for Packet {
    fn pack(&self, w: &mut SnapWriter) {
        self.dst.pack(w);
        self.src.pack(w);
        self.vn.pack(w);
        self.msg.pack(w);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        Packet {
            dst: Gid::unpack(r),
            src: Gid::unpack(r),
            vn: VirtNet::unpack(r),
            msg: Msg::unpack(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smappic_sim::Snapshot;

    #[test]
    fn packet_round_trips_through_pack() {
        let pkts = vec![
            Packet::on_canonical_vn(
                Gid::tile(NodeId(2), 5),
                Gid::chipset(NodeId(1)),
                Msg::Data { line: 0x1234_5640, data: LineData([7; LINE_BYTES]), excl: true },
            ),
            Packet::on_canonical_vn(
                Gid::chipset(NodeId(0)),
                Gid::tile(NodeId(0), 0),
                Msg::Amo { addr: 0x99, size: 4, op: AmoOp::Cas, val: 1, expected: 2 },
            ),
            Packet::on_canonical_vn(
                Gid::tile(NodeId(0), 1),
                Gid::chipset(NodeId(0)),
                Msg::Irq { line_no: 11, level: true },
            ),
        ];
        let mut w = SnapWriter::new();
        w.scoped("pkts", |w| pkts.pack(w));
        let snap = Snapshot::new(0, 0, w);
        let mut r = SnapReader::new(&snap);
        let mut got = Vec::new();
        r.scoped("pkts", |r| got = Vec::<Packet>::unpack(r));
        r.finish().expect("clean");
        assert_eq!(got, pkts);
    }

    #[test]
    fn every_msg_variant_round_trips() {
        let line = 0x40u64;
        let data = LineData([0xAB; LINE_BYTES]);
        let msgs = vec![
            Msg::ReqS { line },
            Msg::ReqM { line },
            Msg::Amo { addr: 1, size: 8, op: AmoOp::MinU, val: 2, expected: 3 },
            Msg::NcLoad { addr: 4, size: 2 },
            Msg::NcStore { addr: 5, size: 1, data: 6 },
            Msg::Data { line, data, excl: false },
            Msg::UpgradeAck { line },
            Msg::Inv { line },
            Msg::Recall { line },
            Msg::Downgrade { line },
            Msg::AmoResp { addr: 7, old: 8 },
            Msg::NcData { addr: 9, data: 10 },
            Msg::NcAck { addr: 11 },
            Msg::Irq { line_no: 3, level: false },
            Msg::WbData { line, data },
            Msg::WbClean { line },
            Msg::InvAck { line },
            Msg::RecallNack { line },
            Msg::RecallData { line, data, dirty: true },
            Msg::MemRd { line },
            Msg::MemWr { line, data },
            Msg::MemData { line, data },
        ];
        let mut w = SnapWriter::new();
        w.scoped("msgs", |w| msgs.pack(w));
        let snap = Snapshot::new(0, 0, w);
        let mut r = SnapReader::new(&snap);
        let mut got = Vec::new();
        r.scoped("msgs", |r| got = Vec::<Msg>::unpack(r));
        r.finish().expect("clean");
        assert_eq!(got, msgs);
    }
}
