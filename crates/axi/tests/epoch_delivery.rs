//! Epoch-batched PCIe delivery: `take_to_*_before` is the parallel
//! stepper's replacement for cycle-stepped `recv_at_*` polling, so the two
//! must agree exactly — same items, same order, same delivery cycles — and
//! the Hard Shell must apply the same inbound back-pressure either way.

use smappic_axi::{AxiRead, AxiReadResp, AxiReq, AxiResp, AxiWrite, HardShell, PcieItem, PcieLink};

/// A deterministic mixed workload: requests and responses of varying size
/// (so the bandwidth shaper spreads their delivery cycles) sent at
/// irregular cycles.
fn workload() -> Vec<(u64, PcieItem)> {
    let mut sends = Vec::new();
    for i in 0..24u64 {
        let at = i * 7 + (i % 3) * 11;
        let item = match i % 4 {
            0 => PcieItem::Req(AxiReq::Read(AxiRead::new(0x1000 + i * 64, 64, i as u16))),
            1 => PcieItem::Req(AxiReq::Write(AxiWrite::new(
                0x8000 + i * 64,
                vec![i as u8; 64],
                i as u16,
            ))),
            2 => PcieItem::Resp(AxiResp::Read(AxiReadResp {
                id: i as u16,
                data: vec![i as u8; (i as usize % 5) * 16 + 8],
            })),
            _ => PcieItem::Req(AxiReq::Read(AxiRead::new(0x2000 + i * 8, 8, i as u16))),
        };
        sends.push((at, item));
    }
    sends
}

/// Feeds the same send schedule into two links; one is drained by polling
/// every cycle, the other by one epoch-batch extraction per epoch.
#[test]
fn epoch_batches_match_cycle_stepped_delivery() {
    let mut polled = PcieLink::new(62, 160);
    let mut batched = PcieLink::new(62, 160);
    for (at, item) in workload() {
        polled.send_from_a(at, item.clone());
        batched.send_from_a(at, item);
    }

    let mut by_poll = Vec::new();
    for now in 0..4_000u64 {
        while let Some(item) = polled.recv_at_b(now) {
            by_poll.push((now, item));
        }
    }
    assert!(polled.is_idle(), "poll drain incomplete");

    // Extract in epoch-sized slices, exactly like the parallel stepper.
    let epoch = 62;
    let mut by_batch = Vec::new();
    let mut start = 0;
    while start < 4_000 {
        by_batch.extend(batched.take_to_b_before(start + epoch));
        start += epoch;
    }
    assert!(batched.is_idle(), "batch drain incomplete");

    assert_eq!(by_poll.len(), by_batch.len());
    for (i, (p, b)) in by_poll.iter().zip(&by_batch).enumerate() {
        assert_eq!(p, b, "delivery {i} diverged between polling and batching");
    }
}

#[test]
fn extraction_horizon_is_exclusive() {
    // An item maturing exactly AT the horizon belongs to the next epoch:
    // the worker for epoch [start, horizon) never sees cycle `horizon`.
    let mut link = PcieLink::new(10, 1_000_000);
    link.send_from_a(5, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
    // Ready at 5 + 10 = 15 (propagation dominates at this bandwidth).
    assert!(link.take_to_b_before(15).is_empty(), "horizon must be exclusive");
    let got = link.take_to_b_before(16);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, 15, "wrong delivery timestamp");
    assert!(link.is_idle());
}

#[test]
fn extracted_timestamps_are_monotone_and_fifo_ordered() {
    let mut link = PcieLink::new(62, 160);
    for (at, item) in workload() {
        link.send_from_a(at, item);
    }
    let got = link.take_to_b_before(u64::MAX);
    assert_eq!(got.len(), 24);
    for w in got.windows(2) {
        assert!(w[0].0 <= w[1].0, "timestamps regressed: {} then {}", w[0].0, w[1].0);
    }
    // FIFO: the i-th extracted item is the i-th sent item.
    for (i, ((_, sent), (_, got))) in workload().into_iter().zip(&got).enumerate() {
        assert_eq!(&sent, got, "item {i} out of order");
    }
}

#[test]
fn directions_extract_independently() {
    let mut link = PcieLink::new(20, 160);
    link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0x40, 8, 7))));
    link.send_from_b(3, PcieItem::Resp(AxiResp::Read(AxiReadResp { id: 7, data: vec![1] })));
    let to_b = link.take_to_b_before(u64::MAX);
    assert_eq!(to_b.len(), 1);
    assert_eq!(to_b[0].0, 20);
    let to_a = link.take_to_a_before(u64::MAX);
    assert_eq!(to_a.len(), 1);
    assert_eq!(to_a[0].0, 23);
    assert!(link.is_idle());
}

/// The inbound FIFO is 32 deep; a burst beyond that is refused, and the
/// refusal must not leak remap IDs or corrupt the accepted requests.
#[test]
fn shell_backpressures_oversized_epoch_batches() {
    let mut shell = HardShell::new(0);
    let mut accepted = 0;
    let mut dropped = Vec::new();
    // An epoch batch of 40 timestamped deliveries, replayed in order like
    // the parallel worker does.
    for i in 0..40u16 {
        let req = AxiReq::Read(AxiRead::new(0x40 * u64::from(i), 8, i));
        match shell.push_inbound(1, req) {
            Ok(()) => accepted += 1,
            Err(rejected) => {
                // The rejected request comes back with its original ID so
                // the sender could retry it verbatim.
                assert_eq!(rejected.id(), i);
                dropped.push(i);
            }
        }
    }
    assert_eq!(accepted, 32, "inbound FIFO is 32 deep");
    assert_eq!(dropped, (32..40).collect::<Vec<_>>(), "drops must hit the tail of the burst");
    assert_eq!(shell.stats().get("shell.in_req"), 32, "dropped requests must not be counted");

    // The 32 accepted requests drain intact and in order, and draining
    // frees capacity for the next epoch's deliveries.
    for i in 0..32u64 {
        let req = shell.cl_pop_inbound().expect("accepted request lost");
        assert_eq!(req.addr(), 0x40 * i);
    }
    assert!(shell.cl_pop_inbound().is_none());
    shell.push_inbound(2, AxiReq::Read(AxiRead::new(0x9000, 8, 3))).expect("capacity freed");
}
