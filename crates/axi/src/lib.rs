//! # smappic-axi — AXI4/AXI-Lite transaction models and F1 plumbing
//!
//! AWS F1 exposes the FPGA's Custom Logic to the world through AXI
//! interfaces (Fig 2 of the paper): four AXI4 DDR4 controller ports, three
//! AXI-Lite management interfaces, and an inbound/outbound AXI4 pair that
//! the Hard Shell converts to PCIe Gen3 x16. SMAPPIC tunnels *everything*
//! through these: inter-node NoC traffic, UART bytes, the virtual SD card's
//! disk image, and DRAM requests.
//!
//! This crate models that plumbing at transaction granularity:
//!
//! - [`AxiReq`]/[`AxiResp`] — AXI4 read/write bursts with IDs,
//! - [`LiteReq`]/[`LiteResp`] — single-beat AXI-Lite accesses,
//! - [`Crossbar`] — an address-decoded N×M AXI4 crossbar with ID remapping
//!   (used to bind nodes on the same FPGA together),
//! - [`PcieLink`] — a bidirectional latency/bandwidth-shaped link carrying
//!   AXI transactions between FPGAs (or FPGA and host). The paper measures
//!   1250 ns round trip on this path; at 100 MHz that is the 125-cycle
//!   inter-node latency in Table 2,
//! - [`HardShell`] — the fixed AWS partition: routes outbound requests to
//!   one of up to three peer FPGAs or the host by address window and merges
//!   inbound traffic toward the Custom Logic.
//!
//! ```
//! use smappic_axi::{AxiReq, AxiWrite, Crossbar};
//!
//! let mut xbar = Crossbar::new(2, 2);
//! xbar.map_range(0x0000_0000, 0x1000_0000, 0); // slave 0
//! xbar.map_range(0x1000_0000, 0x1000_0000, 1); // slave 1
//! xbar.master_push(0, AxiReq::Write(AxiWrite::new(0x1000_0040, vec![1, 2, 3], 7))).unwrap();
//! xbar.tick(0);
//! let req = xbar.slave_pop(1).expect("routed to slave 1");
//! assert!(matches!(req, AxiReq::Write(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossbar;
mod pcie;
mod shell;
mod snap_impls;
mod txn;

pub use crossbar::Crossbar;
pub use pcie::{Flight, PcieItem, PcieLink};
pub use shell::{HardShell, ShellRoute};
pub use txn::{AxiRead, AxiReadResp, AxiReq, AxiResp, AxiWrite, AxiWriteResp, LiteReq, LiteResp};
