//! The AWS F1 Hard Shell model: the fixed partition between Custom Logic
//! and the outside world.

use smappic_sim::{Fifo, Stats};

use crate::txn::{AxiReq, AxiResp};

/// Where the Hard Shell steers an outbound request.
///
/// §2.1: *"Depending on the target address, the outbound AXI4 request is
/// routed to one of the FPGAs connected to the host or to the host
/// itself."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShellRoute {
    /// Peer FPGA `i` in the same F1 instance (0-based global FPGA index).
    Fpga(usize),
    /// The host CPU's PCIe address space.
    Host,
}

/// The Hard Shell of one FPGA.
///
/// The shell owns the PCIe address map: each FPGA in the instance gets a
/// window ([`HardShell::fpga_window`]); everything else is host space.
/// Custom Logic pushes outbound requests ([`HardShell::cl_push_outbound`])
/// and the platform drains them ([`HardShell::pop_outbound`]) into PCIe
/// links; traffic arriving from links is pushed inbound and the CL drains
/// it. Response paths mirror the request paths.
#[derive(Debug)]
pub struct HardShell {
    fpga_index: usize,
    outbound_req: Fifo<AxiReq>,
    outbound_resp: Fifo<(usize, AxiResp)>,
    inbound_req: Fifo<AxiReq>,
    inbound_resp: Fifo<AxiResp>,
    /// Inbound-request ID remap: shell id → (source peer, original id).
    /// Two peers may use colliding IDs; the shell, like the real XDMA
    /// bridge, keeps per-source context to route completions back.
    inbound_ids: std::collections::HashMap<u16, (usize, u16)>,
    next_inbound_id: u16,
    stats: Stats,
}

/// Size of each FPGA's PCIe window (64 GiB, matching F1's per-card DRAM).
pub const FPGA_WINDOW_SIZE: u64 = 1 << 36;

/// Base of the FPGA windows in the PCIe address map.
pub const FPGA_WINDOW_BASE: u64 = 0x8000_0000_0000;

impl HardShell {
    /// Creates the shell for global FPGA index `fpga_index`.
    pub fn new(fpga_index: usize) -> Self {
        Self {
            fpga_index,
            outbound_req: Fifo::new(32),
            outbound_resp: Fifo::new(32),
            inbound_req: Fifo::new(32),
            inbound_resp: Fifo::new(32),
            inbound_ids: std::collections::HashMap::new(),
            next_inbound_id: 0,
            stats: Stats::new(),
        }
    }

    /// The PCIe window base address of FPGA `f`.
    pub fn fpga_window(f: usize) -> u64 {
        FPGA_WINDOW_BASE + (f as u64) * FPGA_WINDOW_SIZE
    }

    /// Translates an address within FPGA `f`'s window back to a local
    /// address, if it falls in that window.
    pub fn window_offset(f: usize, addr: u64) -> Option<u64> {
        let base = Self::fpga_window(f);
        (addr >= base && addr < base + FPGA_WINDOW_SIZE).then(|| addr - base)
    }

    /// Routing decision for an outbound address.
    pub fn route(&self, addr: u64) -> ShellRoute {
        if addr >= FPGA_WINDOW_BASE {
            let f = ((addr - FPGA_WINDOW_BASE) / FPGA_WINDOW_SIZE) as usize;
            if f < 8 && f != self.fpga_index {
                return ShellRoute::Fpga(f);
            }
        }
        ShellRoute::Host
    }

    /// This shell's global FPGA index.
    pub fn fpga_index(&self) -> usize {
        self.fpga_index
    }

    /// Custom Logic submits an outbound request.
    pub fn cl_push_outbound(&mut self, req: AxiReq) -> Result<(), AxiReq> {
        self.outbound_req.push(req)
    }

    /// True when the CL may push an outbound request.
    pub fn cl_can_push(&self) -> bool {
        !self.outbound_req.is_full()
    }

    /// True when a response can be accepted this cycle.
    pub fn cl_can_push_resp(&self) -> bool {
        !self.outbound_resp.is_full()
    }

    /// Custom Logic submits a response to an inbound request; the shell
    /// restores the peer's original ID and remembers which link to answer.
    pub fn cl_push_resp(&mut self, resp: AxiResp) -> Result<(), AxiResp> {
        let Some(&(peer, orig)) = self.inbound_ids.get(&resp.id()) else {
            return Err(resp); // response to an unknown inbound request
        };
        self.inbound_ids.remove(&resp.id());
        self.outbound_resp.push((peer, resp.with_id(orig))).map_err(|(_, r)| r)
    }

    /// Custom Logic collects the next inbound request.
    pub fn cl_pop_inbound(&mut self) -> Option<AxiReq> {
        self.inbound_req.pop()
    }

    /// Custom Logic collects the next response to its outbound requests.
    pub fn cl_pop_resp(&mut self) -> Option<AxiResp> {
        self.inbound_resp.pop()
    }

    /// Platform drains the next outbound request with its routing decision.
    pub fn pop_outbound(&mut self) -> Option<(ShellRoute, AxiReq)> {
        let req = self.outbound_req.pop()?;
        let route = self.route(req.addr());
        self.stats.incr("shell.out_req");
        Some((route, req))
    }

    /// Platform drains the next outbound response (answering a peer's
    /// inbound request), tagged with the peer FPGA to send it to.
    pub fn pop_outbound_resp(&mut self) -> Option<(usize, AxiResp)> {
        self.outbound_resp.pop()
    }

    /// Platform delivers a request arriving over PCIe from peer FPGA
    /// `from`. The shell remaps the transaction ID so concurrent peers
    /// cannot collide.
    pub fn push_inbound(&mut self, from: usize, req: AxiReq) -> Result<(), AxiReq> {
        if self.inbound_req.is_full() {
            return Err(req);
        }
        let orig = req.id();
        let id = loop {
            let id = self.next_inbound_id;
            self.next_inbound_id = self.next_inbound_id.wrapping_add(1);
            if !self.inbound_ids.contains_key(&id) {
                break id;
            }
        };
        self.inbound_ids.insert(id, (from, orig));
        self.stats.incr("shell.in_req");
        self.inbound_req.push(req.with_id(id)).map_err(|r| {
            self.inbound_ids.remove(&id);
            r.with_id(orig)
        })
    }

    /// Platform delivers a response arriving over PCIe.
    pub fn push_inbound_resp(&mut self, resp: AxiResp) -> Result<(), AxiResp> {
        self.inbound_resp.push(resp)
    }

    /// Counters (`shell.out_req`, `shell.in_req`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// True when all queues are empty and no inbound request awaits its
    /// response.
    pub fn is_idle(&self) -> bool {
        self.outbound_req.is_empty()
            && self.outbound_resp.is_empty()
            && self.inbound_req.is_empty()
            && self.inbound_resp.is_empty()
            && self.inbound_ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::AxiRead;

    #[test]
    fn windows_do_not_overlap() {
        for f in 0..8 {
            let base = HardShell::fpga_window(f);
            assert_eq!(HardShell::window_offset(f, base), Some(0));
            assert_eq!(
                HardShell::window_offset(f, base + FPGA_WINDOW_SIZE - 1),
                Some(FPGA_WINDOW_SIZE - 1)
            );
            if f > 0 {
                assert_eq!(HardShell::window_offset(f, base - 1), None);
            }
        }
    }

    #[test]
    fn routes_by_window() {
        let shell = HardShell::new(1);
        assert_eq!(shell.route(HardShell::fpga_window(0) + 0x40), ShellRoute::Fpga(0));
        assert_eq!(shell.route(HardShell::fpga_window(3)), ShellRoute::Fpga(3));
        // Addresses below the FPGA windows go to the host.
        assert_eq!(shell.route(0x1000), ShellRoute::Host);
        // The shell's own window also resolves to Host (loopback is not a
        // thing on F1; a request to yourself is a software bug surfaced to
        // the host).
        assert_eq!(shell.route(HardShell::fpga_window(1)), ShellRoute::Host);
    }

    #[test]
    fn outbound_flow() {
        let mut shell = HardShell::new(0);
        shell
            .cl_push_outbound(AxiReq::Read(AxiRead::new(HardShell::fpga_window(2) + 8, 8, 1)))
            .unwrap();
        let (route, req) = shell.pop_outbound().unwrap();
        assert_eq!(route, ShellRoute::Fpga(2));
        assert_eq!(req.id(), 1);
        assert!(shell.is_idle());
    }

    #[test]
    fn inbound_requests_are_remapped_and_answered_to_their_link() {
        use crate::txn::AxiReadResp;
        let mut shell = HardShell::new(0);
        // Two peers use the same transaction ID 9.
        shell.push_inbound(2, AxiReq::Read(AxiRead::new(0x40, 8, 9))).unwrap();
        shell.push_inbound(3, AxiReq::Read(AxiRead::new(0x80, 8, 9))).unwrap();
        let a = shell.cl_pop_inbound().unwrap();
        let b = shell.cl_pop_inbound().unwrap();
        assert_ne!(a.id(), b.id(), "shell must de-collide peer IDs");
        // Answer in reverse order; responses carry the right peer + ID.
        shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: b.id(), data: vec![2] })).unwrap();
        shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: a.id(), data: vec![1] })).unwrap();
        let (to_b, rb) = shell.pop_outbound_resp().unwrap();
        let (to_a, ra) = shell.pop_outbound_resp().unwrap();
        assert_eq!((to_b, rb.id()), (3, 9));
        assert_eq!((to_a, ra.id()), (2, 9));
        assert!(shell.is_idle());
    }
}
