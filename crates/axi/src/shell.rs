//! The AWS F1 Hard Shell model: the fixed partition between Custom Logic
//! and the outside world.

use std::collections::BTreeMap;

use smappic_sim::{Cycle, MetricsRegistry, Pack, Port, SaveState, SnapReader, SnapWriter, Stats};

use crate::pcie::PcieItem;
use crate::txn::{AxiReq, AxiResp};

/// Where the Hard Shell steers an outbound request.
///
/// §2.1: *"Depending on the target address, the outbound AXI4 request is
/// routed to one of the FPGAs connected to the host or to the host
/// itself."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShellRoute {
    /// Peer FPGA `i` in the same F1 instance (0-based global FPGA index).
    Fpga(usize),
    /// The host CPU's PCIe address space.
    Host,
}

/// Retry backoff ceiling for the inbound guard, in cycles. Reaching the
/// ceiling counts one `shell.guard_timeout` per stall episode; retries
/// continue (giving up would drop data — livelock is the Watchdog's job
/// to report).
const GUARD_BACKOFF_CAP: Cycle = 32;

/// Per-peer state of the inbound fault guard: a reorder buffer keyed by
/// link sequence number plus the retry/backoff state for deliveries the
/// full inbound FIFO rejected.
#[derive(Debug, Default)]
struct PeerStream {
    /// Next sequence number to hand to Custom Logic.
    expected: u64,
    /// Arrived-but-not-delivered items (out-of-order or FIFO-blocked).
    pending: BTreeMap<u64, PcieItem>,
    /// When set, the head item hit a full FIFO; retry at this cycle.
    retry_at: Option<Cycle>,
    /// Current backoff; doubles per failed retry up to [`GUARD_BACKOFF_CAP`].
    backoff: Cycle,
    /// Whether this stall episode already counted `shell.guard_timeout`.
    timed_out: bool,
}

/// The inbound fault guard: per-peer streams, keyed by peer FPGA index.
/// BTreeMap so pump order is deterministic across runs and steppers.
#[derive(Debug, Default)]
struct Guard {
    streams: BTreeMap<usize, PeerStream>,
}

/// The Hard Shell of one FPGA.
///
/// The shell owns the PCIe address map: each FPGA in the instance gets a
/// window ([`HardShell::fpga_window`]); everything else is host space.
/// Custom Logic pushes outbound requests ([`HardShell::cl_push_outbound`])
/// and the platform drains them ([`HardShell::pop_outbound`]) into PCIe
/// links; traffic arriving from links is pushed inbound and the CL drains
/// it. Response paths mirror the request paths.
///
/// # Inbound fault guard
///
/// With [`HardShell::enable_guard`] on, PCIe deliveries enter through
/// [`HardShell::push_sequenced`] instead of the raw push methods. The guard
/// restores each peer's send order from the [`crate::Flight`] sequence
/// numbers (undoing fault-injected reordering), drops duplicate copies,
/// and — where the raw path would drop an item on a full inbound FIFO —
/// holds it and retries with exponential backoff from
/// [`HardShell::pump_guard`]. Downstream of the guard, Custom Logic sees
/// exactly the clean run's traffic: timing faults never become value or
/// ordering faults.
#[derive(Debug)]
pub struct HardShell {
    fpga_index: usize,
    /// Number of FPGAs on the platform: the routable peer-window range.
    /// Configuration, not state (set at construction, never serialized).
    /// Defaults to 8 — the pre-rack hardcoded cap, kept as the default so
    /// shells built outside a `Platform` behave as before.
    fpga_count: usize,
    outbound_req: Port<AxiReq>,
    outbound_resp: Port<(usize, AxiResp)>,
    inbound_req: Port<AxiReq>,
    inbound_resp: Port<AxiResp>,
    /// Inbound-request ID remap: shell id → (source peer, original id).
    /// Two peers may use colliding IDs; the shell, like the real XDMA
    /// bridge, keeps per-source context to route completions back.
    inbound_ids: std::collections::HashMap<u16, (usize, u16)>,
    next_inbound_id: u16,
    guard: Option<Guard>,
    stats: Stats,
}

/// Size of each FPGA's PCIe window (64 GiB, matching F1's per-card DRAM).
pub const FPGA_WINDOW_SIZE: u64 = 1 << 36;

/// Base of the FPGA windows in the PCIe address map.
pub const FPGA_WINDOW_BASE: u64 = 0x8000_0000_0000;

impl HardShell {
    /// Creates the shell for global FPGA index `fpga_index`.
    pub fn new(fpga_index: usize) -> Self {
        Self {
            fpga_index,
            fpga_count: 8,
            outbound_req: Port::bounded("outbound_req", 32),
            outbound_resp: Port::bounded("outbound_resp", 32),
            inbound_req: Port::bounded("inbound_req", 32),
            inbound_resp: Port::bounded("inbound_resp", 32),
            inbound_ids: std::collections::HashMap::new(),
            next_inbound_id: 0,
            guard: None,
            stats: Stats::new(),
        }
    }

    /// Turns on the inbound fault guard (idempotent; existing streams are
    /// kept). Required before [`HardShell::push_sequenced`].
    pub fn enable_guard(&mut self) {
        if self.guard.is_none() {
            self.guard = Some(Guard::default());
        }
    }

    /// Whether the inbound fault guard is active.
    pub fn guard_enabled(&self) -> bool {
        self.guard.is_some()
    }

    /// Delivers a PCIe flight from peer `from` through the fault guard.
    /// Never rejects: duplicates are dropped (`shell.guard_dup`),
    /// out-of-order arrivals buffered (`shell.guard_ooo`), and FIFO-blocked
    /// deliveries retried from [`HardShell::pump_guard`].
    ///
    /// # Panics
    ///
    /// Panics if the guard was not enabled.
    pub fn push_sequenced(&mut self, now: Cycle, from: usize, seq: u64, item: PcieItem) {
        let mut guard = self.guard.take().expect("push_sequenced requires enable_guard");
        let stream = guard.streams.entry(from).or_default();
        if seq < stream.expected || stream.pending.contains_key(&seq) {
            self.stats.incr("shell.guard_dup");
        } else {
            if seq > stream.expected {
                self.stats.incr("shell.guard_ooo");
            }
            stream.pending.insert(seq, item);
            // Respect an in-progress backoff: pump_guard owns the retry.
            if stream.retry_at.is_none() {
                self.deliver_ready(stream, from, now);
            }
        }
        self.guard = Some(guard);
    }

    /// Retries FIFO-blocked guard deliveries whose backoff has elapsed.
    /// Call once per cycle (both steppers tick the owning FPGA every
    /// simulated cycle, so retry timing is identical under each).
    pub fn pump_guard(&mut self, now: Cycle) {
        let Some(mut guard) = self.guard.take() else { return };
        for (&from, stream) in guard.streams.iter_mut() {
            if stream.retry_at.is_some_and(|t| t <= now) {
                self.deliver_ready(stream, from, now);
            }
        }
        self.guard = Some(guard);
    }

    /// Cascades in-order deliveries for one peer stream until the next
    /// expected item is missing or the inbound FIFO refuses it.
    fn deliver_ready(&mut self, stream: &mut PeerStream, from: usize, now: Cycle) {
        loop {
            let Some(item) = stream.pending.remove(&stream.expected) else {
                stream.retry_at = None;
                break;
            };
            let rejected = match item {
                PcieItem::Req(r) => self.push_inbound(from, r).err().map(PcieItem::Req),
                PcieItem::Resp(r) => self.push_inbound_resp(r).err().map(PcieItem::Resp),
            };
            match rejected {
                None => {
                    stream.expected += 1;
                    stream.retry_at = None;
                    stream.backoff = 0;
                    stream.timed_out = false;
                }
                Some(item) => {
                    stream.pending.insert(stream.expected, item);
                    stream.backoff = if stream.backoff == 0 {
                        1
                    } else {
                        (stream.backoff * 2).min(GUARD_BACKOFF_CAP)
                    };
                    if stream.backoff == GUARD_BACKOFF_CAP && !stream.timed_out {
                        stream.timed_out = true;
                        self.stats.incr("shell.guard_timeout");
                    }
                    stream.retry_at = Some(now + stream.backoff);
                    self.stats.incr("shell.guard_retry");
                    break;
                }
            }
        }
    }

    /// The PCIe window base address of FPGA `f`.
    pub fn fpga_window(f: usize) -> u64 {
        FPGA_WINDOW_BASE + (f as u64) * FPGA_WINDOW_SIZE
    }

    /// Translates an address within FPGA `f`'s window back to a local
    /// address, if it falls in that window.
    pub fn window_offset(f: usize, addr: u64) -> Option<u64> {
        let base = Self::fpga_window(f);
        (addr >= base && addr < base + FPGA_WINDOW_SIZE).then(|| addr - base)
    }

    /// Sets the platform's FPGA count, widening (or narrowing) the range
    /// of peer windows [`HardShell::route`] resolves. The pre-rack shell
    /// hardcoded `f < 8` here, silently routing peers ≥ 8 to the host on
    /// larger platforms.
    pub fn set_fpga_count(&mut self, count: usize) {
        self.fpga_count = count;
    }

    /// Routing decision for an outbound address.
    pub fn route(&self, addr: u64) -> ShellRoute {
        if addr >= FPGA_WINDOW_BASE {
            let f = ((addr - FPGA_WINDOW_BASE) / FPGA_WINDOW_SIZE) as usize;
            if f < self.fpga_count && f != self.fpga_index {
                return ShellRoute::Fpga(f);
            }
        }
        ShellRoute::Host
    }

    /// This shell's global FPGA index.
    pub fn fpga_index(&self) -> usize {
        self.fpga_index
    }

    /// Custom Logic submits an outbound request.
    pub fn cl_push_outbound(&mut self, req: AxiReq) -> Result<(), AxiReq> {
        self.outbound_req.try_push(req)
    }

    /// True when the CL may push an outbound request.
    pub fn cl_can_push(&self) -> bool {
        !self.outbound_req.is_full()
    }

    /// True when a response can be accepted this cycle.
    pub fn cl_can_push_resp(&self) -> bool {
        !self.outbound_resp.is_full()
    }

    /// Custom Logic submits a response to an inbound request; the shell
    /// restores the peer's original ID and remembers which link to answer.
    pub fn cl_push_resp(&mut self, resp: AxiResp) -> Result<(), AxiResp> {
        let Some(&(peer, orig)) = self.inbound_ids.get(&resp.id()) else {
            return Err(resp); // response to an unknown inbound request
        };
        self.inbound_ids.remove(&resp.id());
        self.outbound_resp.try_push((peer, resp.with_id(orig))).map_err(|(_, r)| r)
    }

    /// Custom Logic collects the next inbound request.
    pub fn cl_pop_inbound(&mut self) -> Option<AxiReq> {
        self.inbound_req.pop()
    }

    /// Custom Logic collects the next response to its outbound requests.
    pub fn cl_pop_resp(&mut self) -> Option<AxiResp> {
        self.inbound_resp.pop()
    }

    /// Platform drains the next outbound request with its routing decision.
    pub fn pop_outbound(&mut self) -> Option<(ShellRoute, AxiReq)> {
        let req = self.outbound_req.pop()?;
        let route = self.route(req.addr());
        self.stats.incr("shell.out_req");
        Some((route, req))
    }

    /// Platform drains the next outbound response (answering a peer's
    /// inbound request), tagged with the peer FPGA to send it to.
    pub fn pop_outbound_resp(&mut self) -> Option<(usize, AxiResp)> {
        self.outbound_resp.pop()
    }

    /// Platform delivers a request arriving over PCIe from peer FPGA
    /// `from`. The shell remaps the transaction ID so concurrent peers
    /// cannot collide.
    pub fn push_inbound(&mut self, from: usize, req: AxiReq) -> Result<(), AxiReq> {
        if self.inbound_req.is_full() {
            return Err(req);
        }
        let orig = req.id();
        let id = loop {
            let id = self.next_inbound_id;
            self.next_inbound_id = self.next_inbound_id.wrapping_add(1);
            if !self.inbound_ids.contains_key(&id) {
                break id;
            }
        };
        self.inbound_ids.insert(id, (from, orig));
        self.stats.incr("shell.in_req");
        self.inbound_req.try_push(req.with_id(id)).map_err(|r| {
            self.inbound_ids.remove(&id);
            r.with_id(orig)
        })
    }

    /// Platform delivers a response arriving over PCIe.
    pub fn push_inbound_resp(&mut self, resp: AxiResp) -> Result<(), AxiResp> {
        self.inbound_resp.try_push(resp)
    }

    /// Counters (`shell.out_req`, `shell.in_req`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Merges every port meter into `m` under `port.<prefix>.<name>.*`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        self.outbound_req.meter().merge_into(prefix, m);
        self.outbound_resp.meter().merge_into(prefix, m);
        self.inbound_req.meter().merge_into(prefix, m);
        self.inbound_resp.meter().merge_into(prefix, m);
    }

    /// True when Custom Logic's per-cycle drain would move nothing: no
    /// inbound request or response is queued for the CL side. Outbound
    /// queues and the guard are irrelevant to the CL drain loops.
    pub fn cl_quiet(&self) -> bool {
        self.inbound_req.is_empty() && self.inbound_resp.is_empty()
    }

    /// True when neither the per-cycle CL drain, the platform's PCIe
    /// outbound pump, nor the guard's retry pump would move anything —
    /// and, since the shell holds no timed state of its own, would keep
    /// moving nothing until external traffic arrives. Outstanding inbound
    /// IDs are allowed: their responses arrive from the crossbar side.
    pub fn warp_quiet_ok(&self) -> bool {
        self.cl_quiet()
            && self.outbound_req.is_empty()
            && self.outbound_resp.is_empty()
            && self.guard.as_ref().is_none_or(|g| {
                g.streams.values().all(|s| s.pending.is_empty() && s.retry_at.is_none())
            })
    }

    /// True when all queues are empty, no inbound request awaits its
    /// response, and the fault guard holds no undelivered items.
    pub fn is_idle(&self) -> bool {
        self.outbound_req.is_empty()
            && self.outbound_resp.is_empty()
            && self.inbound_req.is_empty()
            && self.inbound_resp.is_empty()
            && self.inbound_ids.is_empty()
            && self.guard.as_ref().is_none_or(|g| g.streams.values().all(|s| s.pending.is_empty()))
    }
}

impl SaveState for HardShell {
    fn save(&self, w: &mut SnapWriter) {
        self.outbound_req.save(w);
        self.outbound_resp.save(w);
        self.inbound_req.save(w);
        self.inbound_resp.save(w);
        // HashMap state in sorted key order for deterministic bytes.
        let mut ids: Vec<u16> = self.inbound_ids.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            let (peer, orig) = self.inbound_ids[&id];
            w.u16(id);
            w.usize(peer);
            w.u16(orig);
        }
        w.u16(self.next_inbound_id);
        match &self.guard {
            None => w.bool(false),
            Some(g) => {
                w.bool(true);
                w.usize(g.streams.len());
                for (&from, s) in &g.streams {
                    w.usize(from);
                    w.u64(s.expected);
                    w.usize(s.pending.len());
                    for (&seq, item) in &s.pending {
                        w.u64(seq);
                        item.pack(w);
                    }
                    s.retry_at.pack(w);
                    w.u64(s.backoff);
                    w.bool(s.timed_out);
                }
            }
        }
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.outbound_req.restore(r);
        self.outbound_resp.restore(r);
        self.inbound_req.restore(r);
        self.inbound_resp.restore(r);
        self.inbound_ids.clear();
        let n = r.usize();
        for _ in 0..n {
            if !r.ok() {
                break;
            }
            let id = r.u16();
            let peer = r.usize();
            let orig = r.u16();
            self.inbound_ids.insert(id, (peer, orig));
        }
        self.next_inbound_id = r.u16();
        if r.bool() {
            let mut guard = Guard::default();
            let n = r.usize();
            for _ in 0..n {
                if !r.ok() {
                    break;
                }
                let from = r.usize();
                let mut s = PeerStream { expected: r.u64(), ..PeerStream::default() };
                let pending = r.usize();
                for _ in 0..pending {
                    if !r.ok() {
                        break;
                    }
                    let seq = r.u64();
                    s.pending.insert(seq, PcieItem::unpack(r));
                }
                s.retry_at = Option::<Cycle>::unpack(r);
                s.backoff = r.u64();
                s.timed_out = r.bool();
                guard.streams.insert(from, s);
            }
            self.guard = Some(guard);
        } else {
            self.guard = None;
        }
        self.stats.restore(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::AxiRead;

    #[test]
    fn windows_do_not_overlap() {
        for f in 0..8 {
            let base = HardShell::fpga_window(f);
            assert_eq!(HardShell::window_offset(f, base), Some(0));
            assert_eq!(
                HardShell::window_offset(f, base + FPGA_WINDOW_SIZE - 1),
                Some(FPGA_WINDOW_SIZE - 1)
            );
            if f > 0 {
                assert_eq!(HardShell::window_offset(f, base - 1), None);
            }
        }
    }

    #[test]
    fn routes_by_window() {
        let shell = HardShell::new(1);
        assert_eq!(shell.route(HardShell::fpga_window(0) + 0x40), ShellRoute::Fpga(0));
        assert_eq!(shell.route(HardShell::fpga_window(3)), ShellRoute::Fpga(3));
        // Addresses below the FPGA windows go to the host.
        assert_eq!(shell.route(0x1000), ShellRoute::Host);
        // The shell's own window also resolves to Host (loopback is not a
        // thing on F1; a request to yourself is a software bug surfaced to
        // the host).
        assert_eq!(shell.route(HardShell::fpga_window(1)), ShellRoute::Host);
    }

    #[test]
    fn routes_every_peer_window_at_rack_scale() {
        // Pinned regression: route() hardcoded `f < 8`, so on a 64-FPGA
        // platform every request to peers 8..63 silently went to the host.
        let mut shell = HardShell::new(1);
        assert_eq!(
            shell.route(HardShell::fpga_window(63)),
            ShellRoute::Host,
            "default shells keep the pre-rack 8-window range"
        );
        shell.set_fpga_count(64);
        assert_eq!(shell.route(HardShell::fpga_window(8)), ShellRoute::Fpga(8));
        assert_eq!(shell.route(HardShell::fpga_window(63) + 0x40), ShellRoute::Fpga(63));
        // One past the platform still resolves to the host.
        assert_eq!(shell.route(HardShell::fpga_window(64)), ShellRoute::Host);
        assert_eq!(shell.route(HardShell::fpga_window(1)), ShellRoute::Host);
    }

    #[test]
    fn outbound_flow() {
        let mut shell = HardShell::new(0);
        shell
            .cl_push_outbound(AxiReq::Read(AxiRead::new(HardShell::fpga_window(2) + 8, 8, 1)))
            .unwrap();
        let (route, req) = shell.pop_outbound().unwrap();
        assert_eq!(route, ShellRoute::Fpga(2));
        assert_eq!(req.id(), 1);
        assert!(shell.is_idle());
    }

    #[test]
    fn inbound_requests_are_remapped_and_answered_to_their_link() {
        use crate::txn::AxiReadResp;
        let mut shell = HardShell::new(0);
        // Two peers use the same transaction ID 9.
        shell.push_inbound(2, AxiReq::Read(AxiRead::new(0x40, 8, 9))).unwrap();
        shell.push_inbound(3, AxiReq::Read(AxiRead::new(0x80, 8, 9))).unwrap();
        let a = shell.cl_pop_inbound().unwrap();
        let b = shell.cl_pop_inbound().unwrap();
        assert_ne!(a.id(), b.id(), "shell must de-collide peer IDs");
        // Answer in reverse order; responses carry the right peer + ID.
        shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: b.id(), data: vec![2] })).unwrap();
        shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: a.id(), data: vec![1] })).unwrap();
        let (to_b, rb) = shell.pop_outbound_resp().unwrap();
        let (to_a, ra) = shell.pop_outbound_resp().unwrap();
        assert_eq!((to_b, rb.id()), (3, 9));
        assert_eq!((to_a, ra.id()), (2, 9));
        assert!(shell.is_idle());
    }

    fn read_item(addr: u64, id: u16) -> PcieItem {
        PcieItem::Req(AxiReq::Read(AxiRead::new(addr, 8, id)))
    }

    #[test]
    fn guard_restores_send_order_and_drops_duplicates() {
        let mut shell = HardShell::new(0);
        shell.enable_guard();
        // Scrambled arrival: 2, 0, dup 0, 1 — CL must see 0, 1, 2.
        shell.push_sequenced(10, 1, 2, read_item(0x200, 2));
        shell.push_sequenced(11, 1, 0, read_item(0x000, 0));
        shell.push_sequenced(12, 1, 0, read_item(0x000, 0));
        shell.push_sequenced(13, 1, 1, read_item(0x100, 1));
        let addrs: Vec<u64> =
            std::iter::from_fn(|| shell.cl_pop_inbound()).map(|r| r.addr()).collect();
        assert_eq!(addrs, vec![0x000, 0x100, 0x200]);
        assert_eq!(shell.stats().get("shell.guard_dup"), 1);
        assert_eq!(shell.stats().get("shell.guard_ooo"), 1);
    }

    #[test]
    fn guard_retries_when_inbound_fifo_is_full() {
        let mut shell = HardShell::new(0);
        shell.enable_guard();
        // Fill the 32-deep inbound FIFO through the guard.
        for i in 0..33u64 {
            shell.push_sequenced(0, 1, i, read_item(i * 8, i as u16));
        }
        assert!(!shell.is_idle(), "33rd item must be held, not dropped");
        assert!(shell.stats().get("shell.guard_retry") >= 1);
        // CL drains one; the held item lands on a later pump.
        assert!(shell.cl_pop_inbound().is_some());
        for now in 1..200 {
            shell.pump_guard(now);
        }
        let mut drained = 1;
        while shell.cl_pop_inbound().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 33, "every item must eventually be delivered");
    }

    #[test]
    fn snapshot_round_trip_preserves_guard_and_id_state() {
        use smappic_sim::Snapshot;

        let mut original = HardShell::new(0);
        original.enable_guard();
        // Outstanding inbound request (populates inbound_ids) plus an
        // out-of-order guard arrival (populates a pending stream).
        original.push_sequenced(0, 1, 0, read_item(0x000, 9));
        original.push_sequenced(1, 1, 2, read_item(0x200, 2));
        let mut w = SnapWriter::new();
        w.scoped("shell", |w| original.save(w));
        let snap = Snapshot::new(1, 2, w);

        let mut restored = HardShell::new(0);
        restored.enable_guard();
        let mut r = SnapReader::new(&snap);
        r.scoped("shell", |r| restored.restore(r));
        r.finish().expect("clean restore");

        // The missing seq 1 arrives at both: delivery cascades identically.
        original.push_sequenced(2, 1, 1, read_item(0x100, 1));
        restored.push_sequenced(2, 1, 1, read_item(0x100, 1));
        loop {
            let (a, b) = (original.cl_pop_inbound(), restored.cl_pop_inbound());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Answering the first request routes to the same peer with the
        // original ID restored in both.
        use crate::txn::AxiReadResp;
        let id = 0; // first remapped inbound id
        original.cl_push_resp(AxiResp::Read(AxiReadResp { id, data: vec![1] })).unwrap();
        restored.cl_push_resp(AxiResp::Read(AxiReadResp { id, data: vec![1] })).unwrap();
        assert_eq!(original.pop_outbound_resp(), restored.pop_outbound_resp());
    }

    #[test]
    fn inbound_id_remap_survives_two_u16_wraps() {
        use crate::txn::AxiReadResp;
        let mut shell = HardShell::new(0);
        // Park five requests from peer 7 for the whole run: their shell ids
        // (0..=4) stay live in the remap table, so the allocator must skip
        // them every time `next_inbound_id` wraps past zero.
        let mut parked = Vec::new();
        for i in 0..5u16 {
            shell
                .push_inbound(7, AxiReq::Read(AxiRead::new(0x7000 + u64::from(i) * 8, 8, 1000 + i)))
                .unwrap();
            parked.push(shell.cl_pop_inbound().unwrap().id());
        }
        // 140k iterations x 2 allocations: the id counter crosses the u16
        // space four times while colliding original ids are in play.
        for i in 0..140_000u64 {
            let orig = (i % 65_536) as u16;
            shell.push_inbound(2, AxiReq::Read(AxiRead::new(0x2000, 8, orig))).unwrap();
            shell.push_inbound(3, AxiReq::Read(AxiRead::new(0x3000, 8, orig))).unwrap();
            let a = shell.cl_pop_inbound().unwrap();
            let b = shell.cl_pop_inbound().unwrap();
            assert_ne!(a.id(), b.id(), "iteration {i}: remap collided");
            assert!(
                !parked.contains(&a.id()) && !parked.contains(&b.id()),
                "iteration {i}: allocator reused a live id"
            );
            // Answer in reverse order; each response must route back to its
            // own peer with the original id restored.
            shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: b.id(), data: vec![3] })).unwrap();
            shell.cl_push_resp(AxiResp::Read(AxiReadResp { id: a.id(), data: vec![2] })).unwrap();
            let (to_b, rb) = shell.pop_outbound_resp().unwrap();
            let (to_a, ra) = shell.pop_outbound_resp().unwrap();
            assert_eq!((to_b, rb.id()), (3, orig), "iteration {i}: misrouted");
            assert_eq!((to_a, ra.id()), (2, orig), "iteration {i}: misrouted");
        }
        // The parked requests still answer correctly after four full wraps.
        for (i, id) in parked.into_iter().enumerate() {
            shell.cl_push_resp(AxiResp::Read(AxiReadResp { id, data: vec![9] })).unwrap();
            let (peer, resp) = shell.pop_outbound_resp().unwrap();
            assert_eq!((peer, resp.id()), (7, 1000 + i as u16));
        }
        assert!(shell.is_idle());
    }

    #[test]
    fn guard_in_order_path_is_transparent() {
        // In-order, no-fault traffic through the guard must behave exactly
        // like the raw push path (same-cycle delivery, no counters).
        let mut guarded = HardShell::new(0);
        guarded.enable_guard();
        let mut raw = HardShell::new(0);
        for i in 0..4u64 {
            guarded.push_sequenced(i, 2, i, read_item(i * 8, i as u16));
            let PcieItem::Req(req) = read_item(i * 8, i as u16) else { unreachable!() };
            raw.push_inbound(2, req).unwrap();
        }
        loop {
            let (g, r) = (guarded.cl_pop_inbound(), raw.cl_pop_inbound());
            assert_eq!(g, r);
            if g.is_none() {
                break;
            }
        }
        assert_eq!(guarded.stats().get("shell.guard_dup"), 0);
        assert_eq!(guarded.stats().get("shell.guard_retry"), 0);
    }
}
