//! [`Pack`] impls for the AXI transaction vocabulary, so queues, shapers,
//! and links can serialize transactions in flight.
//!
//! Enum variants carry explicit stable `u8` tags in declaration order — the
//! tag is part of the snapshot format, so variants must never be renumbered,
//! only appended.

use smappic_sim::{Pack, SnapReader, SnapWriter};

use crate::pcie::PcieItem;
use crate::txn::{AxiRead, AxiReadResp, AxiReq, AxiResp, AxiWrite, AxiWriteResp};

impl Pack for AxiWrite {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.addr);
        w.bytes(&self.data);
        w.u16(self.id);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        AxiWrite { addr: r.u64(), data: r.bytes(), id: r.u16() }
    }
}

impl Pack for AxiRead {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.addr);
        w.u32(self.len);
        w.u16(self.id);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        AxiRead { addr: r.u64(), len: r.u32(), id: r.u16() }
    }
}

impl Pack for AxiWriteResp {
    fn pack(&self, w: &mut SnapWriter) {
        w.u16(self.id);
        w.bool(self.ok);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        AxiWriteResp { id: r.u16(), ok: r.bool() }
    }
}

impl Pack for AxiReadResp {
    fn pack(&self, w: &mut SnapWriter) {
        w.u16(self.id);
        w.bytes(&self.data);
    }
    fn unpack(r: &mut SnapReader) -> Self {
        AxiReadResp { id: r.u16(), data: r.bytes() }
    }
}

impl Pack for AxiReq {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            AxiReq::Write(x) => {
                w.u8(0);
                x.pack(w);
            }
            AxiReq::Read(x) => {
                w.u8(1);
                x.pack(w);
            }
        }
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => AxiReq::Write(AxiWrite::unpack(r)),
            1 => AxiReq::Read(AxiRead::unpack(r)),
            t => {
                r.corrupt(&format!("unknown AxiReq tag {t}"));
                AxiReq::Read(AxiRead::new(0, 0, 0))
            }
        }
    }
}

impl Pack for AxiResp {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            AxiResp::Write(x) => {
                w.u8(0);
                x.pack(w);
            }
            AxiResp::Read(x) => {
                w.u8(1);
                x.pack(w);
            }
        }
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => AxiResp::Write(AxiWriteResp::unpack(r)),
            1 => AxiResp::Read(AxiReadResp::unpack(r)),
            t => {
                r.corrupt(&format!("unknown AxiResp tag {t}"));
                AxiResp::Write(AxiWriteResp { id: 0, ok: false })
            }
        }
    }
}

impl Pack for PcieItem {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            PcieItem::Req(x) => {
                w.u8(0);
                x.pack(w);
            }
            PcieItem::Resp(x) => {
                w.u8(1);
                x.pack(w);
            }
        }
    }
    fn unpack(r: &mut SnapReader) -> Self {
        match r.u8() {
            0 => PcieItem::Req(AxiReq::unpack(r)),
            1 => PcieItem::Resp(AxiResp::unpack(r)),
            t => {
                r.corrupt(&format!("unknown PcieItem tag {t}"));
                PcieItem::Resp(AxiResp::Write(AxiWriteResp { id: 0, ok: false }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smappic_sim::Snapshot;

    #[test]
    fn axi_transactions_round_trip_through_pack() {
        let items = vec![
            PcieItem::Req(AxiReq::Write(AxiWrite::new(0x8000_0000_0040, vec![1, 2, 3], 9))),
            PcieItem::Req(AxiReq::Read(AxiRead::new(0x40, 64, 0xFFFF))),
            PcieItem::Resp(AxiResp::Write(AxiWriteResp { id: 3, ok: false })),
            PcieItem::Resp(AxiResp::Read(AxiReadResp { id: 4, data: vec![0xAB; 64] })),
        ];
        let mut w = SnapWriter::new();
        w.scoped("items", |w| items.pack(w));
        let snap = Snapshot::new(0, 0, w);
        let mut r = SnapReader::new(&snap);
        let mut got = Vec::new();
        r.scoped("items", |r| got = Vec::<PcieItem>::unpack(r));
        r.finish().expect("clean");
        assert_eq!(got, items);
    }
}
