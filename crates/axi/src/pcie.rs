//! The PCIe link model: latency/bandwidth-shaped AXI transport, with an
//! optional deterministic timing-fault stage.

use std::collections::BTreeMap;

use smappic_sim::{
    Cycle, FaultInjector, Histogram, Pack, Ring, SaveState, SnapReader, SnapWriter, TraceBuf,
    TraceEventKind, TrafficShaper,
};

use crate::txn::{AxiReq, AxiResp};

/// Ring-buffer capacity of the per-link trace lane.
const LINK_TRACE_CAP: usize = 8192;

/// One item crossing the link in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcieItem {
    /// A request traveling to the remote side.
    Req(AxiReq),
    /// A response traveling back.
    Resp(AxiResp),
}

impl PcieItem {
    /// Bytes this item occupies on a serialized transport (TLP-style
    /// header overhead plus payload) — the size both the PCIe shaper and
    /// the Ethernet frame builder charge for it.
    pub fn wire_bytes(&self) -> u64 {
        // TLP header overhead (~24 bytes for PCIe Gen3) plus payload.
        24 + match self {
            PcieItem::Req(r) => r.wire_bytes(),
            PcieItem::Resp(r) => r.wire_bytes(),
        }
    }
}

/// A delivered item tagged with its per-direction sequence number.
///
/// Sequence numbers count items in *send* order, so the receiving Hard
/// Shell can restore the clean delivery order (and drop duplicate copies)
/// when the fault stage has scrambled timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flight {
    /// Position of this item in the direction's send order (0-based).
    pub seq: u64,
    /// The payload, untouched by any fault.
    pub item: PcieItem,
}

/// The fault stage of one link direction: in-flight items that have left
/// the shaper but are being held by injected delays.
#[derive(Debug)]
struct DirFaults {
    inj: FaultInjector,
    /// Held items keyed by `(release cycle, seq, copy)` — the BTreeMap
    /// order is the delivery order. `copy` is 0 for the real item, 1 for
    /// an injected duplicate. The value carries the item's original send
    /// cycle so delivery latency stays measurable through the jitter.
    jitter: BTreeMap<(Cycle, u64, u8), (PcieItem, Cycle)>,
    delayed: u64,
    duplicated: u64,
}

/// One direction of the link: the traffic shaper plus the optional fault
/// stage and the sequence counter for drained items.
#[derive(Debug)]
struct Dir {
    shaper: TrafficShaper<PcieItem>,
    /// Items drained from the shaper so far == the next seq to assign.
    drained: u64,
    /// Send cycles of the items still in the shaper, in send (== drain)
    /// order, so every delivery knows its wire latency. An unmetered
    /// [`Ring`]: its occupancy trajectory depends on when epoch barriers
    /// drain the shaper, so it must not feed stepper-compared metrics.
    sent_at: Ring<Cycle>,
    faults: Option<DirFaults>,
}

impl Dir {
    fn new(bytes_per_cycle: u64, latency: Cycle) -> Self {
        Self {
            shaper: TrafficShaper::new(bytes_per_cycle, 1, latency),
            drained: 0,
            sent_at: Ring::new(),
            faults: None,
        }
    }

    fn send(&mut self, now: Cycle, item: PcieItem) {
        let bytes = item.wire_bytes();
        self.sent_at.push_back(now);
        self.shaper.push(now, bytes, item);
    }

    /// Moves every shaper item maturing strictly before `horizon` into the
    /// jitter buffer, applying its fault action. Only meaningful with
    /// faults installed.
    fn drain_into_jitter(&mut self, horizon: Cycle) {
        let f = self.faults.as_mut().expect("fault stage installed");
        while let Some((mature, item)) = self.shaper.pop_before(horizon) {
            let seq = self.drained;
            self.drained += 1;
            let sent = self.sent_at.pop_front().unwrap_or(mature);
            let action = f.inj.link_action(seq, mature);
            if action.delay > 0 {
                f.delayed += 1;
            }
            if let Some(dup_delay) = action.duplicate {
                f.duplicated += 1;
                f.jitter.insert((mature + dup_delay, seq, 1), (item.clone(), sent));
            }
            f.jitter.insert((mature + action.delay, seq, 0), (item, sent));
        }
    }

    /// Pops the next deliverable flight, reporting `(flight, arrived,
    /// latency)` where `arrived` is the exact wire-delivery cycle (≤
    /// `now` after an idle warp) and `latency = arrived − send cycle`.
    fn recv(&mut self, now: Cycle) -> Option<(Flight, Cycle, Cycle)> {
        if self.faults.is_some() {
            self.drain_into_jitter(now + 1);
            let f = self.faults.as_mut().expect("checked");
            let (&(release, _, _), _) = f.jitter.iter().next()?;
            if release > now {
                return None;
            }
            let ((_, seq, _), (item, sent)) = f.jitter.pop_first().expect("front checked");
            Some((Flight { seq, item }, release, release.saturating_sub(sent)))
        } else {
            let ready = self.shaper.front_ready_at()?;
            let item = self.shaper.pop_ready(now)?;
            let seq = self.drained;
            self.drained += 1;
            let sent = self.sent_at.pop_front().unwrap_or(ready);
            Some((Flight { seq, item }, ready, ready.saturating_sub(sent)))
        }
    }

    fn take_before(&mut self, horizon: Cycle) -> Vec<(Cycle, Flight, Cycle)> {
        let mut out = Vec::new();
        if self.faults.is_some() {
            self.drain_into_jitter(horizon);
            let f = self.faults.as_mut().expect("checked");
            while let Some((&(release, _, _), _)) = f.jitter.iter().next() {
                if release >= horizon {
                    break;
                }
                let ((_, seq, _), (item, sent)) = f.jitter.pop_first().expect("front checked");
                out.push((release, Flight { seq, item }, release.saturating_sub(sent)));
            }
        } else {
            while let Some((ready, item)) = self.shaper.pop_before(horizon) {
                let seq = self.drained;
                self.drained += 1;
                let sent = self.sent_at.pop_front().unwrap_or(ready);
                out.push((ready, Flight { seq, item }, ready.saturating_sub(sent)));
            }
        }
        out
    }

    /// A lower bound on the next delivery cycle (exact without faults).
    /// With faults installed, items still in the shaper report their
    /// *mature* cycle — their fault action can only push them later, so
    /// the idle-skip warp never jumps past a delivery; it lands on the
    /// mature cycle, drains the item into the jitter buffer, and rescans.
    fn next_delivery_at(&self) -> Option<Cycle> {
        let shaper_next = self.shaper.front_ready_at();
        let jitter_next =
            self.faults.as_ref().and_then(|f| f.jitter.keys().next().map(|&(r, _, _)| r));
        match (shaper_next, jitter_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn is_empty(&self) -> bool {
        self.shaper.is_empty() && self.faults.as_ref().is_none_or(|f| f.jitter.is_empty())
    }

    fn in_flight(&self) -> usize {
        self.shaper.len() + self.faults.as_ref().map_or(0, |f| f.jitter.len())
    }
}

/// A bidirectional PCIe connection between two endpoints "A" and "B".
///
/// The paper measures a 1250 ns round trip between FPGAs in an F1 instance;
/// at the typical 100 MHz fabric clock that is 125 cycles (Table 2), which
/// sets the floor for modeled inter-node latency (§4.8 limit 4). Both
/// directions are [`TrafficShaper`]s: configurable one-way latency plus
/// bandwidth (PCIe Gen3 x16 ≈ 16 GB/s ≈ 160 bytes per 100 MHz cycle).
///
/// Traffic goes *directly* FPGA-to-FPGA and does not involve the host CPU
/// (§3.1 stage 4-5), so one link object per FPGA pair is the whole model.
///
/// With [`PcieLink::set_faults`] installed, items leaving the shaper pass
/// through a deterministic fault stage that can delay them further or emit
/// ghost duplicates — timing faults only; payloads are never corrupted and
/// every delivery carries its send-order [`Flight::seq`] so the receiver
/// can undo the scrambling. Injected delays only ever *add* to the clean
/// delivery time, so the link's one-way latency remains a valid lookahead
/// for the epoch-parallel stepper.
#[derive(Debug)]
pub struct PcieLink {
    a_to_b: Dir,
    b_to_a: Dir,
    /// Global FPGA indices of endpoints A and B, for trace labelling.
    endpoints: (u8, u8),
    /// Round-trip latencies: one-way latency of each delivered request,
    /// matched FIFO per AXI id against the response coming back the other
    /// way. Deterministic under both steppers because each direction
    /// delivers in release-cycle order and a response is always drained
    /// at a later barrier than its request. Fault-injected duplicates can
    /// leave an unmatched entry behind (the guard drops the ghost before
    /// it is answered), skewing *which* pair a later same-id RTT reports
    /// — still deterministic, and faulted runs only ever compare against
    /// equally-faulted runs.
    rtt: Histogram,
    /// Outstanding request deliveries, oldest first: a response matches
    /// the oldest entry with its id. Scan length is bounded by the
    /// in-flight count (and [`RTT_PENDING_CAP`] under blackhole faults),
    /// not the id space — bridge ids wrap through all of `u16`. Unmetered
    /// [`Ring`]s: drain timing differs between steppers at epoch barriers.
    pending_req_ab: Ring<(u16, Cycle)>,
    pending_req_ba: Ring<(u16, Cycle)>,
    trace: TraceBuf,
}

/// Cap on unanswered RTT entries per direction: a blackholed link never
/// answers, and the tracker must not grow without bound. Dropping the
/// oldest entry forfeits (deterministically) that sample's RTT.
const RTT_PENDING_CAP: usize = 4096;

impl PcieLink {
    /// Creates a link with `one_way_latency` cycles of propagation delay and
    /// `bytes_per_cycle` of bandwidth in each direction.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(one_way_latency: Cycle, bytes_per_cycle: u64) -> Self {
        Self {
            a_to_b: Dir::new(bytes_per_cycle, one_way_latency),
            b_to_a: Dir::new(bytes_per_cycle, one_way_latency),
            endpoints: (0, 1),
            rtt: Histogram::new(),
            pending_req_ab: Ring::new(),
            pending_req_ba: Ring::new(),
            trace: TraceBuf::new(LINK_TRACE_CAP),
        }
    }

    /// Labels the two endpoints with their global FPGA indices (trace
    /// events carry these as `from`/`to`). Defaults to `(0, 1)`.
    pub fn set_endpoints(&mut self, a: u8, b: u8) {
        self.endpoints = (a, b);
    }

    /// Round-trip latency histogram: one sample per request answered over
    /// this link, in cycles of wire time (both one-way trips, including
    /// serialization; endpoint processing excluded).
    pub fn rtt(&self) -> &Histogram {
        &self.rtt
    }

    /// The link's trace lane (PCIe send/deliver events).
    pub fn trace_mut(&mut self) -> &mut TraceBuf {
        &mut self.trace
    }

    /// Matches a delivered item against the RTT tracker and records the
    /// delivery trace event. `a_to_b` names the direction of travel.
    fn note_delivery(&mut self, a_to_b: bool, item: &PcieItem, arrived: Cycle, lat: Cycle) {
        let (pending_same, pending_opposite) = if a_to_b {
            (&mut self.pending_req_ab, &mut self.pending_req_ba)
        } else {
            (&mut self.pending_req_ba, &mut self.pending_req_ab)
        };
        let is_req = match item {
            PcieItem::Req(r) => {
                if pending_same.len() == RTT_PENDING_CAP {
                    pending_same.pop_front();
                }
                pending_same.push_back((r.id(), lat));
                true
            }
            PcieItem::Resp(r) => {
                let id = r.id();
                let pos = pending_opposite.iter().position(|&(i, _)| i == id);
                if let Some(pos) = pos {
                    let (_, l_req) = pending_opposite.remove(pos).expect("position is in range");
                    self.rtt.record(l_req + lat);
                }
                false
            }
        };
        let (a, b) = self.endpoints;
        let (from, to) = if a_to_b { (a, b) } else { (b, a) };
        self.trace.record(arrived, || TraceEventKind::PcieDeliver {
            from,
            to,
            sent_at: arrived.saturating_sub(lat),
            is_req,
        });
    }

    /// The F1 defaults: 62 cycles one way (~620 ns at 100 MHz; the observed
    /// 1250 ns round trip includes endpoint processing), 160 bytes/cycle.
    pub fn f1_default() -> Self {
        Self::new(62, 160)
    }

    /// Installs the fault stage: `a_to_b` faults items A sends toward B,
    /// `b_to_a` the reverse direction.
    pub fn set_faults(&mut self, a_to_b: FaultInjector, b_to_a: FaultInjector) {
        self.a_to_b.faults =
            Some(DirFaults { inj: a_to_b, jitter: BTreeMap::new(), delayed: 0, duplicated: 0 });
        self.b_to_a.faults =
            Some(DirFaults { inj: b_to_a, jitter: BTreeMap::new(), delayed: 0, duplicated: 0 });
    }

    /// `(delayed, duplicated)` item counts across both directions since
    /// construction. Zero without an installed fault stage.
    pub fn fault_counts(&self) -> (u64, u64) {
        let fold = |d: &Dir| d.faults.as_ref().map_or((0, 0), |f| (f.delayed, f.duplicated));
        let (ad, au) = fold(&self.a_to_b);
        let (bd, bu) = fold(&self.b_to_a);
        (ad + bd, au + bu)
    }

    /// Endpoint A sends toward B.
    pub fn send_from_a(&mut self, now: Cycle, item: PcieItem) {
        if self.trace.is_enabled() {
            let (a, b) = self.endpoints;
            let (bytes, is_req) = (item.wire_bytes() as u32, matches!(item, PcieItem::Req(_)));
            self.trace.record(now, || TraceEventKind::PcieSend { from: a, to: b, bytes, is_req });
        }
        self.a_to_b.send(now, item);
    }

    /// Endpoint B sends toward A.
    pub fn send_from_b(&mut self, now: Cycle, item: PcieItem) {
        if self.trace.is_enabled() {
            let (a, b) = self.endpoints;
            let (bytes, is_req) = (item.wire_bytes() as u32, matches!(item, PcieItem::Req(_)));
            self.trace.record(now, || TraceEventKind::PcieSend { from: b, to: a, bytes, is_req });
        }
        self.b_to_a.send(now, item);
    }

    /// Endpoint B receives what A sent, in order, after the link delay.
    pub fn recv_at_b(&mut self, now: Cycle) -> Option<PcieItem> {
        self.recv_flight_at_b(now).map(|f| f.item)
    }

    /// Endpoint A receives what B sent.
    pub fn recv_at_a(&mut self, now: Cycle) -> Option<PcieItem> {
        self.recv_flight_at_a(now).map(|f| f.item)
    }

    /// Endpoint B receives the next flight (item + sequence number).
    pub fn recv_flight_at_b(&mut self, now: Cycle) -> Option<Flight> {
        let (flight, arrived, lat) = self.a_to_b.recv(now)?;
        self.note_delivery(true, &flight.item, arrived, lat);
        Some(flight)
    }

    /// Endpoint A receives the next flight.
    pub fn recv_flight_at_a(&mut self, now: Cycle) -> Option<Flight> {
        let (flight, arrived, lat) = self.b_to_a.recv(now)?;
        self.note_delivery(false, &flight.item, arrived, lat);
        Some(flight)
    }

    /// The configured one-way propagation latency in cycles.
    ///
    /// This is the link's *lookahead*: an item entering the link at cycle
    /// `t` cannot emerge before `t + one_way_latency()`, so two FPGAs joined
    /// by this link can be simulated independently for that many cycles.
    /// The fault stage only ever adds delay, so this stays valid with
    /// faults installed.
    pub fn one_way_latency(&self) -> Cycle {
        self.a_to_b.shaper.latency()
    }

    /// The earliest cycle at which either direction could deliver, or
    /// [`None`] when the link is empty. Part of the platform's idle-skip
    /// scan; see [`Dir::next_delivery_at`] for the fault-stage caveat
    /// (lower bound, never an overshoot).
    pub fn next_delivery_at(&self) -> Option<Cycle> {
        match (self.a_to_b.next_delivery_at(), self.b_to_a.next_delivery_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drains every item headed for B that matures strictly before
    /// `horizon`, with its exact delivery cycle, oldest first.
    ///
    /// Epoch extraction for the parallel stepper: at an epoch barrier the
    /// platform pulls out everything the next epoch will deliver so the
    /// receiving FPGA's worker can replay the deliveries cycle-accurately
    /// without touching the (shared) link.
    pub fn take_to_b_before(&mut self, horizon: Cycle) -> Vec<(Cycle, PcieItem)> {
        self.take_flights_to_b_before(horizon).into_iter().map(|(t, f)| (t, f.item)).collect()
    }

    /// Drains every item headed for A maturing strictly before `horizon`;
    /// see [`PcieLink::take_to_b_before`].
    pub fn take_to_a_before(&mut self, horizon: Cycle) -> Vec<(Cycle, PcieItem)> {
        self.take_flights_to_a_before(horizon).into_iter().map(|(t, f)| (t, f.item)).collect()
    }

    /// Flight-typed epoch extraction toward B (delivery cycle + seq).
    pub fn take_flights_to_b_before(&mut self, horizon: Cycle) -> Vec<(Cycle, Flight)> {
        let drained = self.a_to_b.take_before(horizon);
        let mut out = Vec::with_capacity(drained.len());
        for (at, flight, lat) in drained {
            self.note_delivery(true, &flight.item, at, lat);
            out.push((at, flight));
        }
        out
    }

    /// Flight-typed epoch extraction toward A.
    pub fn take_flights_to_a_before(&mut self, horizon: Cycle) -> Vec<(Cycle, Flight)> {
        let drained = self.b_to_a.take_before(horizon);
        let mut out = Vec::with_capacity(drained.len());
        for (at, flight, lat) in drained {
            self.note_delivery(false, &flight.item, at, lat);
            out.push((at, flight));
        }
        out
    }

    /// True when nothing is in flight in either direction (including the
    /// fault stage's held items).
    pub fn is_idle(&self) -> bool {
        self.a_to_b.is_empty() && self.b_to_a.is_empty()
    }

    /// Items currently in flight in both directions (shaper + fault stage).
    pub fn in_flight(&self) -> usize {
        self.a_to_b.in_flight() + self.b_to_a.in_flight()
    }

    /// Total bytes transferred in both directions.
    pub fn bytes_transferred(&self) -> u64 {
        self.a_to_b.shaper.bytes_sent() + self.b_to_a.shaper.bytes_sent()
    }
}

impl SaveState for Dir {
    fn save(&self, w: &mut SnapWriter) {
        self.shaper.save(w);
        w.u64(self.drained);
        self.sent_at.save(w);
        // The injector itself is a pure function of (seed, stream, seq) and
        // is reconstructed from configuration; only the held items and the
        // fault counters are mutable state.
        match &self.faults {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                w.usize(f.jitter.len());
                for (&(release, seq, copy), (item, sent)) in &f.jitter {
                    w.u64(release);
                    w.u64(seq);
                    w.u8(copy);
                    item.pack(w);
                    w.u64(*sent);
                }
                w.u64(f.delayed);
                w.u64(f.duplicated);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.shaper.restore(r);
        self.drained = r.u64();
        self.sent_at.restore(r);
        let has_faults = r.bool();
        match (&mut self.faults, has_faults) {
            (Some(f), true) => {
                f.jitter.clear();
                let n = r.usize();
                for _ in 0..n {
                    if !r.ok() {
                        break;
                    }
                    let release = r.u64();
                    let seq = r.u64();
                    let copy = r.u8();
                    let item = PcieItem::unpack(r);
                    let sent = r.u64();
                    f.jitter.insert((release, seq, copy), (item, sent));
                }
                f.delayed = r.u64();
                f.duplicated = r.u64();
            }
            (None, false) => {}
            _ => r.corrupt("fault-stage presence does not match this link's configuration"),
        }
    }
}

impl SaveState for PcieLink {
    fn save(&self, w: &mut SnapWriter) {
        w.scoped("a_to_b", |w| self.a_to_b.save(w));
        w.scoped("b_to_a", |w| self.b_to_a.save(w));
        self.rtt.save(w);
        self.pending_req_ab.save(w);
        self.pending_req_ba.save(w);
        // endpoints are config; the trace lane is host-side observability.
    }

    fn restore(&mut self, r: &mut SnapReader) {
        r.scoped("a_to_b", |r| self.a_to_b.restore(r));
        r.scoped("b_to_a", |r| self.b_to_a.restore(r));
        self.rtt.restore(r);
        self.pending_req_ab.restore(r);
        self.pending_req_ba.restore(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{AxiRead, AxiReadResp};
    use smappic_sim::{fault_streams, FaultPlan, FaultProfile};
    use std::sync::Arc;

    #[test]
    fn round_trip_latency_is_twice_one_way() {
        let mut link = PcieLink::new(62, 160);
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
        let mut t_req = None;
        for now in 0..200 {
            if let Some(PcieItem::Req(req)) = link.recv_at_b(now) {
                t_req = Some(now);
                link.send_from_b(
                    now,
                    PcieItem::Resp(AxiResp::Read(AxiReadResp { id: req.id(), data: vec![0; 8] })),
                );
                break;
            }
        }
        let t_req = t_req.expect("request must arrive");
        let mut t_resp = None;
        for now in t_req..400 {
            if link.recv_at_a(now).is_some() {
                t_resp = Some(now);
                break;
            }
        }
        let rt = t_resp.expect("response must arrive");
        // ~125-cycle round trip, matching the paper's measured PCIe latency.
        assert!((120..=135).contains(&rt), "round trip was {rt} cycles");
        // The link's RTT histogram observed the same trip from wire time
        // alone (send→deliver both ways, endpoint processing excluded).
        assert_eq!(link.rtt().count(), 1);
        let wire = link.rtt().max();
        assert!((120..=135).contains(&wire), "histogram RTT was {wire} cycles");
        assert!(wire <= rt, "wire time cannot exceed the end-to-end trip");
    }

    #[test]
    fn rtt_histogram_is_identical_under_epoch_extraction() {
        // The same traffic drained per-cycle and drained at epoch barriers
        // must produce bit-identical RTT histograms.
        let run = |batched: bool| {
            let mut link = PcieLink::new(62, 160);
            for i in 0..6u64 {
                link.send_from_a(i * 7, PcieItem::Req(AxiReq::Read(AxiRead::new(i * 64, 8, 2))));
            }
            let mut resp_due: Vec<(Cycle, u16)> = Vec::new();
            for now in 0..600 {
                if batched && now % 50 == 0 {
                    for (at, f) in link.take_flights_to_b_before(now + 50) {
                        if let PcieItem::Req(r) = f.item {
                            resp_due.push((at, r.id()));
                        }
                    }
                } else if !batched {
                    while let Some(PcieItem::Req(r)) = link.recv_at_b(now) {
                        resp_due.push((now, r.id()));
                    }
                }
                resp_due.retain(|&(at, id)| {
                    if at == now {
                        link.send_from_b(
                            now,
                            PcieItem::Resp(AxiResp::Read(AxiReadResp { id, data: vec![0; 8] })),
                        );
                        false
                    } else {
                        true
                    }
                });
                if batched && now % 50 == 0 {
                    link.take_flights_to_a_before(now + 50);
                } else if !batched {
                    while link.recv_at_a(now).is_some() {}
                }
            }
            assert!(link.is_idle());
            link.rtt().clone()
        };
        let (serial, epoch) = (run(false), run(true));
        assert_eq!(serial.count(), 6);
        assert_eq!(serial, epoch, "RTT histogram diverged across drain styles");
    }

    #[test]
    fn rtt_tracker_matches_pairs_across_two_id_wraps() {
        // Bridge ids wrap through all of u16; the RTT FIFO must keep
        // matching each response to the oldest same-id request while the id
        // counter crosses the wrap at least twice. An 8-deep in-flight
        // window keeps concurrently-outstanding ids distinct, exactly as
        // the bridge's skip-occupied allocator guarantees.
        let mut link = PcieLink::new(0, 1_000_000);
        let mut now: Cycle = 0;
        let total: u64 = 140_000;
        const WINDOW: usize = 8;
        let mut inflight: Ring<u16> = Ring::new();
        let (mut sent, mut answered) = (0u64, 0u64);
        while answered < total {
            while sent < total && inflight.len() < WINDOW {
                let id = (sent % 65_536) as u16;
                link.send_from_a(now, PcieItem::Req(AxiReq::Read(AxiRead::new(sent * 64, 8, id))));
                inflight.push_back(id);
                sent += 1;
            }
            now += 1;
            while let Some(PcieItem::Req(r)) = link.recv_at_b(now) {
                link.send_from_b(
                    now,
                    PcieItem::Resp(AxiResp::Read(AxiReadResp { id: r.id(), data: vec![0; 8] })),
                );
            }
            while let Some(PcieItem::Resp(r)) = link.recv_at_a(now) {
                assert_eq!(inflight.pop_front(), Some(r.id()), "response out of send order");
                answered += 1;
            }
        }
        assert!(link.is_idle());
        assert_eq!(link.rtt().count(), total, "every pair must record exactly one RTT sample");
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::new(10, 160);
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
        link.send_from_b(0, PcieItem::Req(AxiReq::Read(AxiRead::new(8, 8, 2))));
        assert!(link.recv_at_b(10).is_some());
        assert!(link.recv_at_a(10).is_some());
        assert!(link.is_idle());
    }

    #[test]
    fn bandwidth_limits_throughput() {
        // 8 bytes/cycle; a 64-byte payload (+24B TLP) takes 11 cycles on
        // the wire, so 10 packets need >= 110 cycles to drain.
        let mut link = PcieLink::new(0, 8);
        for i in 0..10 {
            link.send_from_a(
                0,
                PcieItem::Resp(AxiResp::Read(AxiReadResp { id: i, data: vec![0; 64] })),
            );
        }
        let mut last = 0;
        let mut got = 0;
        for now in 0..2_000 {
            while link.recv_at_b(now).is_some() {
                got += 1;
                last = now;
            }
            if got == 10 {
                break;
            }
        }
        assert_eq!(got, 10);
        assert!(last >= 110, "drained too fast: {last}");
    }

    #[test]
    fn flights_number_items_in_send_order() {
        let mut link = PcieLink::new(5, 160);
        for i in 0..4 {
            link.send_from_a(i, PcieItem::Req(AxiReq::Read(AxiRead::new(i * 8, 8, i as u16))));
        }
        let mut seqs = Vec::new();
        for now in 0..100 {
            while let Some(f) = link.recv_flight_at_b(now) {
                seqs.push(f.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn quiet_fault_stage_preserves_exact_timing() {
        // Twin links, one with a quiet (no-op) fault stage: every delivery
        // must happen at the same cycle with the same payload.
        let mut clean = PcieLink::new(12, 32);
        let mut faulted = PcieLink::new(12, 32);
        let plan = Arc::new(FaultPlan::seeded(5, FaultProfile::quiet()));
        faulted.set_faults(
            FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
            FaultInjector::new(plan, fault_streams::link(1, 0)),
        );
        for i in 0..8u64 {
            let item = PcieItem::Req(AxiReq::Read(AxiRead::new(i * 64, 32, i as u16)));
            clean.send_from_a(i * 3, item.clone());
            faulted.send_from_a(i * 3, item);
        }
        for now in 0..300 {
            loop {
                let (c, f) = (clean.recv_at_b(now), faulted.recv_at_b(now));
                assert_eq!(c, f, "divergence at cycle {now}");
                if c.is_none() {
                    break;
                }
            }
        }
        assert!(clean.is_idle() && faulted.is_idle());
    }

    #[test]
    fn delayed_items_arrive_late_but_intact() {
        let profile = FaultProfile { delay_prob: 1.0, delay_max: 50, ..FaultProfile::quiet() };
        let plan = Arc::new(FaultPlan::seeded(77, profile));
        let mut link = PcieLink::new(10, 160);
        link.set_faults(
            FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
            FaultInjector::new(plan, fault_streams::link(1, 0)),
        );
        let item = PcieItem::Req(AxiReq::Read(AxiRead::new(0x40, 8, 3)));
        link.send_from_a(0, item.clone());
        let mut arrived = None;
        for now in 0..200 {
            if let Some(f) = link.recv_flight_at_b(now) {
                assert_eq!(f.item, item, "payload must never be corrupted");
                arrived = Some(now);
                break;
            }
        }
        let t = arrived.expect("delayed, not dropped");
        assert!(t > 10, "delay_prob 1.0 must add at least one cycle, arrived at {t}");
        assert_eq!(link.fault_counts().0, 1);
    }

    #[test]
    fn duplicates_share_a_sequence_number() {
        let profile = FaultProfile { dup_prob: 1.0, dup_delay_max: 30, ..FaultProfile::quiet() };
        let plan = Arc::new(FaultPlan::seeded(13, profile));
        let mut link = PcieLink::new(4, 160);
        link.set_faults(
            FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
            FaultInjector::new(plan, fault_streams::link(1, 0)),
        );
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 9))));
        let mut flights = Vec::new();
        for now in 0..200 {
            while let Some(f) = link.recv_flight_at_b(now) {
                flights.push(f);
            }
        }
        assert_eq!(flights.len(), 2, "original + ghost copy");
        assert_eq!(flights[0].seq, flights[1].seq);
        assert_eq!(flights[0].item, flights[1].item);
        assert!(link.is_idle());
    }

    #[test]
    fn epoch_extraction_matches_cycle_stepping_under_faults() {
        // The faulted take_before path must report the same (cycle, seq,
        // item) schedule the cycle-stepped recv path observes.
        let profile = FaultProfile {
            delay_prob: 0.5,
            delay_max: 20,
            dup_prob: 0.3,
            dup_delay_max: 25,
            ..FaultProfile::quiet()
        };
        let plan = Arc::new(FaultPlan::seeded(99, profile));
        let mk = |plan: &Arc<FaultPlan>| {
            let mut l = PcieLink::new(8, 16);
            l.set_faults(
                FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
                FaultInjector::new(plan.clone(), fault_streams::link(1, 0)),
            );
            l
        };
        let (mut stepped, mut batched) = (mk(&plan), mk(&plan));
        for i in 0..12u64 {
            let item = PcieItem::Req(AxiReq::Read(AxiRead::new(i * 8, 8, i as u16)));
            stepped.send_from_a(i, item.clone());
            batched.send_from_a(i, item);
        }
        let mut by_step = Vec::new();
        for now in 0..400 {
            while let Some(f) = stepped.recv_flight_at_b(now) {
                by_step.push((now, f));
            }
        }
        let mut by_batch = Vec::new();
        for epoch in 0..(400 / 40) {
            by_batch.extend(batched.take_flights_to_b_before((epoch + 1) * 40));
        }
        assert_eq!(by_step.len(), by_batch.len());
        for (s, b) in by_step.iter().zip(by_batch.iter()) {
            assert_eq!(s.0, b.0, "delivery cycles diverged");
            assert_eq!(s.1, b.1, "flights diverged");
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_in_flight_traffic() {
        use smappic_sim::Snapshot;

        // Take a snapshot with items mid-flight (some still in the shaper,
        // some held in the jitter buffer) and restore into a fresh link:
        // every later delivery must be identical to the uninterrupted run.
        let profile = FaultProfile {
            delay_prob: 0.5,
            delay_max: 20,
            dup_prob: 0.3,
            dup_delay_max: 25,
            ..FaultProfile::quiet()
        };
        let plan = Arc::new(FaultPlan::seeded(42, profile));
        let mk = |plan: &Arc<FaultPlan>| {
            let mut l = PcieLink::new(8, 16);
            l.set_faults(
                FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
                FaultInjector::new(plan.clone(), fault_streams::link(1, 0)),
            );
            l
        };
        let mut original = mk(&plan);
        for i in 0..10u64 {
            original
                .send_from_a(i * 2, PcieItem::Req(AxiReq::Read(AxiRead::new(i * 8, 8, i as u16))));
        }
        // Step partway so some items have drained into the jitter buffer.
        let mut early = Vec::new();
        for now in 0..30 {
            while let Some(f) = original.recv_flight_at_b(now) {
                early.push((now, f));
            }
        }
        let mut w = SnapWriter::new();
        w.scoped("link", |w| original.save(w));
        let snap = Snapshot::new(1, 30, w);

        let mut restored = mk(&plan);
        let mut r = SnapReader::new(&snap);
        r.scoped("link", |r| restored.restore(r));
        r.finish().expect("clean restore");

        for now in 30..400 {
            loop {
                let (a, b) = (original.recv_flight_at_b(now), restored.recv_flight_at_b(now));
                assert_eq!(a, b, "restored link diverged at cycle {now}");
                if a.is_none() {
                    break;
                }
            }
        }
        assert!(original.is_idle() && restored.is_idle());
        assert_eq!(original.rtt(), restored.rtt());
        assert_eq!(original.fault_counts(), restored.fault_counts());
    }

    #[test]
    fn next_delivery_never_overshoots_with_faults() {
        let profile = FaultProfile { delay_prob: 1.0, delay_max: 100, ..FaultProfile::quiet() };
        let plan = Arc::new(FaultPlan::seeded(3, profile));
        let mut link = PcieLink::new(10, 160);
        link.set_faults(
            FaultInjector::new(plan.clone(), fault_streams::link(0, 1)),
            FaultInjector::new(plan, fault_streams::link(1, 0)),
        );
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
        let mut now = 0;
        let mut hops = 0;
        loop {
            let next = link.next_delivery_at().expect("item in flight");
            assert!(next >= now, "next_delivery_at went backwards");
            now = next;
            if link.recv_at_b(now).is_some() {
                break;
            }
            // No delivery: the scan must make progress (the item moved
            // from the shaper into the jitter buffer, whose bound is exact).
            hops += 1;
            assert!(hops <= 2, "idle-skip scan failed to converge");
            now += 1;
        }
        assert!(link.is_idle());
    }
}
