//! The PCIe link model: latency/bandwidth-shaped AXI transport.

use smappic_sim::{Cycle, TrafficShaper};

use crate::txn::{AxiReq, AxiResp};

/// One item crossing the link in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcieItem {
    /// A request traveling to the remote side.
    Req(AxiReq),
    /// A response traveling back.
    Resp(AxiResp),
}

impl PcieItem {
    fn wire_bytes(&self) -> u64 {
        // TLP header overhead (~24 bytes for PCIe Gen3) plus payload.
        24 + match self {
            PcieItem::Req(r) => r.wire_bytes(),
            PcieItem::Resp(r) => r.wire_bytes(),
        }
    }
}

/// A bidirectional PCIe connection between two endpoints "A" and "B".
///
/// The paper measures a 1250 ns round trip between FPGAs in an F1 instance;
/// at the typical 100 MHz fabric clock that is 125 cycles (Table 2), which
/// sets the floor for modeled inter-node latency (§4.8 limit 4). Both
/// directions are [`TrafficShaper`]s: configurable one-way latency plus
/// bandwidth (PCIe Gen3 x16 ≈ 16 GB/s ≈ 160 bytes per 100 MHz cycle).
///
/// Traffic goes *directly* FPGA-to-FPGA and does not involve the host CPU
/// (§3.1 stage 4-5), so one link object per FPGA pair is the whole model.
#[derive(Debug)]
pub struct PcieLink {
    a_to_b: TrafficShaper<PcieItem>,
    b_to_a: TrafficShaper<PcieItem>,
}

impl PcieLink {
    /// Creates a link with `one_way_latency` cycles of propagation delay and
    /// `bytes_per_cycle` of bandwidth in each direction.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(one_way_latency: Cycle, bytes_per_cycle: u64) -> Self {
        Self {
            a_to_b: TrafficShaper::new(bytes_per_cycle, 1, one_way_latency),
            b_to_a: TrafficShaper::new(bytes_per_cycle, 1, one_way_latency),
        }
    }

    /// The F1 defaults: 62 cycles one way (~620 ns at 100 MHz; the observed
    /// 1250 ns round trip includes endpoint processing), 160 bytes/cycle.
    pub fn f1_default() -> Self {
        Self::new(62, 160)
    }

    /// Endpoint A sends toward B.
    pub fn send_from_a(&mut self, now: Cycle, item: PcieItem) {
        let bytes = item.wire_bytes();
        self.a_to_b.push(now, bytes, item);
    }

    /// Endpoint B sends toward A.
    pub fn send_from_b(&mut self, now: Cycle, item: PcieItem) {
        let bytes = item.wire_bytes();
        self.b_to_a.push(now, bytes, item);
    }

    /// Endpoint B receives what A sent, in order, after the link delay.
    pub fn recv_at_b(&mut self, now: Cycle) -> Option<PcieItem> {
        self.a_to_b.pop_ready(now)
    }

    /// Endpoint A receives what B sent.
    pub fn recv_at_a(&mut self, now: Cycle) -> Option<PcieItem> {
        self.b_to_a.pop_ready(now)
    }

    /// The configured one-way propagation latency in cycles.
    ///
    /// This is the link's *lookahead*: an item entering the link at cycle
    /// `t` cannot emerge before `t + one_way_latency()`, so two FPGAs joined
    /// by this link can be simulated independently for that many cycles.
    pub fn one_way_latency(&self) -> Cycle {
        self.a_to_b.latency()
    }

    /// The earliest cycle at which either direction delivers its oldest
    /// in-flight item, or [`None`] when the link is empty. Part of the
    /// platform's idle-skip scan.
    pub fn next_delivery_at(&self) -> Option<Cycle> {
        match (self.a_to_b.front_ready_at(), self.b_to_a.front_ready_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drains every item headed for B that matures strictly before
    /// `horizon`, with its exact delivery cycle, oldest first.
    ///
    /// Epoch extraction for the parallel stepper: at an epoch barrier the
    /// platform pulls out everything the next epoch will deliver so the
    /// receiving FPGA's worker can replay the deliveries cycle-accurately
    /// without touching the (shared) link.
    pub fn take_to_b_before(&mut self, horizon: Cycle) -> Vec<(Cycle, PcieItem)> {
        let mut out = Vec::new();
        while let Some(entry) = self.a_to_b.pop_before(horizon) {
            out.push(entry);
        }
        out
    }

    /// Drains every item headed for A maturing strictly before `horizon`;
    /// see [`PcieLink::take_to_b_before`].
    pub fn take_to_a_before(&mut self, horizon: Cycle) -> Vec<(Cycle, PcieItem)> {
        let mut out = Vec::new();
        while let Some(entry) = self.b_to_a.pop_before(horizon) {
            out.push(entry);
        }
        out
    }

    /// True when nothing is in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.a_to_b.is_empty() && self.b_to_a.is_empty()
    }

    /// Total bytes transferred in both directions.
    pub fn bytes_transferred(&self) -> u64 {
        self.a_to_b.bytes_sent() + self.b_to_a.bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{AxiRead, AxiReadResp};

    #[test]
    fn round_trip_latency_is_twice_one_way() {
        let mut link = PcieLink::new(62, 160);
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
        let mut t_req = None;
        for now in 0..200 {
            if let Some(PcieItem::Req(req)) = link.recv_at_b(now) {
                t_req = Some(now);
                link.send_from_b(
                    now,
                    PcieItem::Resp(AxiResp::Read(AxiReadResp { id: req.id(), data: vec![0; 8] })),
                );
                break;
            }
        }
        let t_req = t_req.expect("request must arrive");
        let mut t_resp = None;
        for now in t_req..400 {
            if link.recv_at_a(now).is_some() {
                t_resp = Some(now);
                break;
            }
        }
        let rt = t_resp.expect("response must arrive");
        // ~125-cycle round trip, matching the paper's measured PCIe latency.
        assert!((120..=135).contains(&rt), "round trip was {rt} cycles");
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::new(10, 160);
        link.send_from_a(0, PcieItem::Req(AxiReq::Read(AxiRead::new(0, 8, 1))));
        link.send_from_b(0, PcieItem::Req(AxiReq::Read(AxiRead::new(8, 8, 2))));
        assert!(link.recv_at_b(10).is_some());
        assert!(link.recv_at_a(10).is_some());
        assert!(link.is_idle());
    }

    #[test]
    fn bandwidth_limits_throughput() {
        // 8 bytes/cycle; a 64-byte payload (+24B TLP) takes 11 cycles on
        // the wire, so 10 packets need >= 110 cycles to drain.
        let mut link = PcieLink::new(0, 8);
        for i in 0..10 {
            link.send_from_a(
                0,
                PcieItem::Resp(AxiResp::Read(AxiReadResp { id: i, data: vec![0; 64] })),
            );
        }
        let mut last = 0;
        let mut got = 0;
        for now in 0..2_000 {
            while link.recv_at_b(now).is_some() {
                got += 1;
                last = now;
            }
            if got == 10 {
                break;
            }
        }
        assert_eq!(got, 10);
        assert!(last >= 110, "drained too fast: {last}");
    }
}
