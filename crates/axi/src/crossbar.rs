//! Address-decoded AXI4 crossbar with ID remapping.

use std::collections::HashMap;

use smappic_sim::{
    Cycle, FaultInjector, MetricsRegistry, Port, SaveState, SnapReader, SnapWriter, Stats,
    TraceBuf, TraceEventKind,
};

use crate::txn::{AxiReq, AxiResp};

/// An N-master × M-slave AXI4 crossbar.
///
/// The paper uses the Xilinx AXI crossbar to bind nodes located on the same
/// FPGA (§3.1: *"connecting nodes on the same FPGA using the AXI4
/// crossbar"*). This model:
///
/// - decodes the request address against a range map to select the slave,
/// - remaps transaction IDs so concurrent masters cannot collide, and
///   restores the original ID on the response path,
/// - arbitrates round-robin, forwarding at most one request per slave and
///   one response per master per cycle.
///
/// Unmapped addresses complete with a DECERR-style error response instead
/// of vanishing, matching AXI semantics.
#[derive(Debug)]
pub struct Crossbar {
    masters: usize,
    ranges: Vec<(u64, u64, usize)>, // base, size, slave
    m_req_in: Vec<Port<AxiReq>>,
    m_resp_out: Vec<Port<AxiResp>>,
    s_req_out: Vec<Port<AxiReq>>,
    s_resp_in: Vec<Port<AxiResp>>,
    // remapped id -> (master index, original id)
    inflight: HashMap<u16, (usize, u16)>,
    next_tag: u16,
    rr_master: usize,
    stats: Stats,
    trace: TraceBuf,
}

impl Crossbar {
    /// Creates a crossbar with `masters` master ports and `slaves` slave
    /// ports, all with 16-entry queues.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(masters: usize, slaves: usize) -> Self {
        assert!(masters > 0 && slaves > 0, "crossbar needs at least one master and one slave");
        Self {
            masters,
            ranges: Vec::new(),
            m_req_in: (0..masters).map(|m| Port::bounded(format!("m{m}.req_in"), 16)).collect(),
            m_resp_out: (0..masters).map(|m| Port::bounded(format!("m{m}.resp_out"), 16)).collect(),
            s_req_out: (0..slaves).map(|s| Port::bounded(format!("s{s}.req_out"), 16)).collect(),
            s_resp_in: (0..slaves).map(|s| Port::bounded(format!("s{s}.resp_in"), 16)).collect(),
            inflight: HashMap::new(),
            next_tag: 0,
            rr_master: 0,
            stats: Stats::new(),
            trace: TraceBuf::new(4096),
        }
    }

    /// The crossbar's trace lane (grant events).
    pub fn trace_mut(&mut self) -> &mut TraceBuf {
        &mut self.trace
    }

    /// Installs a fault injector that transiently stalls master ports:
    /// while a port's stall window hits, its queued requests wait (pure
    /// back-pressure — nothing is dropped or reordered per-master, so the
    /// stall is a timing fault only). Stalled-with-traffic cycles count as
    /// `xbar.fault_stall`.
    ///
    /// Interposition lives on the ports: each master request port carries a
    /// clone of the injector keyed by its master index, so the arbiter asks
    /// the port ([`Port::fault_stalled`]) instead of carrying per-site
    /// injector plumbing. Decisions stay pure functions of
    /// `(seed, stream, lane, cycle)` — bit-identical across steppers.
    pub fn set_faults(&mut self, inj: FaultInjector) {
        for (m, port) in self.m_req_in.iter_mut().enumerate() {
            port.set_faults(inj.clone(), m as u64);
        }
    }

    /// Maps `[base, base + size)` to slave `slave`. Ranges must not overlap.
    ///
    /// # Panics
    ///
    /// Panics on a zero-size range, an out-of-range slave index, or an
    /// overlap with an existing range.
    pub fn map_range(&mut self, base: u64, size: u64, slave: usize) {
        assert!(size > 0, "empty address range");
        assert!(slave < self.s_req_out.len(), "slave index out of range");
        for &(b, s, _) in &self.ranges {
            let overlap = base < b + s && b < base + size;
            assert!(!overlap, "address range overlaps an existing mapping");
        }
        self.ranges.push((base, size, slave));
    }

    /// Decodes `addr` to a slave index.
    pub fn decode(&self, addr: u64) -> Option<usize> {
        self.ranges.iter().find(|(b, s, _)| addr >= *b && addr < b + s).map(|&(_, _, slave)| slave)
    }

    /// Master `m` submits a request. Errors with the request when the input
    /// queue is full.
    pub fn master_push(&mut self, m: usize, req: AxiReq) -> Result<(), AxiReq> {
        self.m_req_in[m].try_push(req)
    }

    /// True when master `m` may push a request this cycle.
    pub fn master_can_push(&self, m: usize) -> bool {
        !self.m_req_in[m].is_full()
    }

    /// Master `m` collects its next response.
    pub fn master_pop(&mut self, m: usize) -> Option<AxiResp> {
        self.m_resp_out[m].pop()
    }

    /// Slave `s` takes its next routed request.
    pub fn slave_pop(&mut self, s: usize) -> Option<AxiReq> {
        self.s_req_out[s].pop()
    }

    /// Slave `s` returns a response. Errors with the response when full.
    pub fn slave_push(&mut self, s: usize, resp: AxiResp) -> Result<(), AxiResp> {
        self.s_resp_in[s].try_push(resp)
    }

    /// True when slave `s` may push a response this cycle.
    pub fn slave_can_push(&self, s: usize) -> bool {
        !self.s_resp_in[s].is_full()
    }

    /// Counters (`xbar.req`, `xbar.resp`, `xbar.decerr`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// True when a [`Crossbar::tick`] would move nothing: every request
    /// and response port is empty. Transactions may still be outstanding
    /// at slaves (`inflight` non-empty) — the tick touches those only via
    /// the ports. The round-robin pointer still advances every cycle; use
    /// [`Crossbar::tick_quiet`] when eliding a tick under this predicate.
    pub fn pump_is_noop(&self) -> bool {
        self.m_req_in.iter().all(Port::is_empty)
            && self.m_resp_out.iter().all(Port::is_empty)
            && self.s_req_out.iter().all(Port::is_empty)
            && self.s_resp_in.iter().all(Port::is_empty)
    }

    /// A [`Crossbar::tick`] reduced to its only state change when
    /// [`Crossbar::pump_is_noop`] holds: the round-robin pointer advance
    /// (kept so snapshot bytes match a reference run that ticks fully).
    pub fn tick_quiet(&mut self) {
        debug_assert!(self.pump_is_noop(), "tick_quiet requires empty ports");
        self.rr_master = (self.rr_master + 1) % self.masters;
    }

    /// `delta` consecutive [`Crossbar::tick_quiet`]s in one step, keeping
    /// the round-robin pointer bit-identical to a run that ticked through
    /// the same window cycle by cycle.
    pub fn advance_quiet(&mut self, delta: u64) {
        debug_assert!(self.pump_is_noop(), "advance_quiet requires empty ports");
        self.rr_master = (self.rr_master + (delta % self.masters as u64) as usize) % self.masters;
    }

    /// True when no transaction is queued or outstanding.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
            && self.m_req_in.iter().all(Port::is_empty)
            && self.m_resp_out.iter().all(Port::is_empty)
            && self.s_req_out.iter().all(Port::is_empty)
            && self.s_resp_in.iter().all(Port::is_empty)
    }

    /// Merges every port meter into `m` under `port.<prefix>.<name>.*`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        for p in &self.m_req_in {
            p.meter().merge_into(prefix, m);
        }
        for p in &self.m_resp_out {
            p.meter().merge_into(prefix, m);
        }
        for p in &self.s_req_out {
            p.meter().merge_into(prefix, m);
        }
        for p in &self.s_resp_in {
            p.meter().merge_into(prefix, m);
        }
    }

    fn alloc_tag(&mut self) -> u16 {
        // Linear probe for a free tag; 64K in-flight transactions would be
        // a bug elsewhere, so this terminates in practice immediately.
        loop {
            let t = self.next_tag;
            self.next_tag = self.next_tag.wrapping_add(1);
            if !self.inflight.contains_key(&t) {
                return t;
            }
        }
    }

    /// Advances the crossbar one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Request path: round-robin over masters; forward when the decoded
        // slave queue has space.
        for i in 0..self.masters {
            let m = (self.rr_master + i) % self.masters;
            let Some(req) = self.m_req_in[m].peek() else { continue };
            if self.m_req_in[m].fault_stalled(now) {
                self.stats.incr("xbar.fault_stall");
                continue;
            }
            match self.decode(req.addr()) {
                Some(s) if !self.s_req_out[s].is_full() => {
                    let req = self.m_req_in[m].pop().expect("peeked");
                    let orig = req.id();
                    let tag = self.alloc_tag();
                    self.inflight.insert(tag, (m, orig));
                    self.s_req_out[s].push(req.with_id(tag)); // space checked above
                    self.stats.incr("xbar.req");
                    self.trace.record(now, || TraceEventKind::XbarGrant {
                        master: m as u8,
                        slave: s as u8,
                    });
                }
                Some(_) => {} // blocked, retry next cycle
                None => {
                    // Decode error: complete immediately with an error. A
                    // full response port drops the error reply (as before);
                    // the rejection shows up as a port stall.
                    let req = self.m_req_in[m].pop().expect("peeked");
                    let resp = match req {
                        AxiReq::Write(w) => {
                            AxiResp::Write(crate::txn::AxiWriteResp { id: w.id, ok: false })
                        }
                        AxiReq::Read(r) => {
                            AxiResp::Read(crate::txn::AxiReadResp { id: r.id, data: vec![] })
                        }
                    };
                    let _ = self.m_resp_out[m].try_push_traced(resp, now, &mut self.trace);
                    self.stats.incr("xbar.decerr");
                }
            }
        }
        self.rr_master = (self.rr_master + 1) % self.masters;

        // Response path: restore original IDs and deliver to owners.
        for s in 0..self.s_resp_in.len() {
            let Some(resp) = self.s_resp_in[s].peek() else { continue };
            let Some(&(m, orig)) = self.inflight.get(&resp.id()) else {
                // Response to an unknown tag: drop defensively.
                self.s_resp_in[s].pop();
                self.stats.incr("xbar.orphan_resp");
                continue;
            };
            if self.m_resp_out[m].is_full() {
                continue;
            }
            let resp = self.s_resp_in[s].pop().expect("peeked");
            self.inflight.remove(&resp.id());
            self.m_resp_out[m].push(resp.with_id(orig)); // space checked above
            self.stats.incr("xbar.resp");
        }
    }
}

impl SaveState for Crossbar {
    fn save(&self, w: &mut SnapWriter) {
        // Ports in merge_port_metrics order; masters/ranges are config.
        for p in &self.m_req_in {
            p.save(w);
        }
        for p in &self.m_resp_out {
            p.save(w);
        }
        for p in &self.s_req_out {
            p.save(w);
        }
        for p in &self.s_resp_in {
            p.save(w);
        }
        // HashMap state in sorted key order for deterministic bytes.
        let mut tags: Vec<u16> = self.inflight.keys().copied().collect();
        tags.sort_unstable();
        w.usize(tags.len());
        for t in tags {
            let (m, orig) = self.inflight[&t];
            w.u16(t);
            w.usize(m);
            w.u16(orig);
        }
        w.u16(self.next_tag);
        w.usize(self.rr_master);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        for p in &mut self.m_req_in {
            p.restore(r);
        }
        for p in &mut self.m_resp_out {
            p.restore(r);
        }
        for p in &mut self.s_req_out {
            p.restore(r);
        }
        for p in &mut self.s_resp_in {
            p.restore(r);
        }
        self.inflight.clear();
        let n = r.usize();
        for _ in 0..n {
            if !r.ok() {
                break;
            }
            let t = r.u16();
            let m = r.usize();
            let orig = r.u16();
            if m >= self.masters {
                r.corrupt("inflight entry names a master this crossbar does not have");
                break;
            }
            self.inflight.insert(t, (m, orig));
        }
        self.next_tag = r.u16();
        self.rr_master = r.usize() % self.masters.max(1);
        self.stats.restore(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{AxiRead, AxiReadResp, AxiWrite, AxiWriteResp};

    fn xbar2x2() -> Crossbar {
        let mut x = Crossbar::new(2, 2);
        x.map_range(0x0000, 0x1000, 0);
        x.map_range(0x1000, 0x1000, 1);
        x
    }

    #[test]
    fn decodes_by_address() {
        let x = xbar2x2();
        assert_eq!(x.decode(0x0800), Some(0));
        assert_eq!(x.decode(0x1800), Some(1));
        assert_eq!(x.decode(0x2000), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_ranges_panic() {
        let mut x = Crossbar::new(1, 2);
        x.map_range(0, 0x100, 0);
        x.map_range(0x80, 0x100, 1);
    }

    #[test]
    fn routes_and_restores_ids() {
        let mut x = xbar2x2();
        x.master_push(0, AxiReq::Read(AxiRead::new(0x1000, 8, 42))).unwrap();
        x.master_push(1, AxiReq::Read(AxiRead::new(0x1008, 8, 42))).unwrap();
        x.tick(0);
        // Both requests target slave 1; IDs must be distinct there.
        let a = x.slave_pop(1).unwrap();
        let b = x.slave_pop(1).unwrap();
        assert_ne!(a.id(), b.id());
        // Answer in reverse order; responses route back to the right masters
        // with the original ID restored.
        x.slave_push(1, AxiResp::Read(AxiReadResp { id: b.id(), data: vec![2; 8] })).unwrap();
        x.slave_push(1, AxiResp::Read(AxiReadResp { id: a.id(), data: vec![1; 8] })).unwrap();
        x.tick(1);
        x.tick(2);
        let r0 = x.master_pop(0).unwrap();
        let r1 = x.master_pop(1).unwrap();
        assert_eq!(r0.id(), 42);
        assert_eq!(r1.id(), 42);
        match (r0, r1) {
            (AxiResp::Read(a), AxiResp::Read(b)) => {
                assert_eq!(a.data, vec![1; 8]);
                assert_eq!(b.data, vec![2; 8]);
            }
            other => panic!("unexpected responses {other:?}"),
        }
        assert!(x.is_idle());
    }

    #[test]
    fn unmapped_address_gets_error_response() {
        let mut x = xbar2x2();
        x.master_push(0, AxiReq::Write(AxiWrite::new(0xFFFF_0000, vec![1], 7))).unwrap();
        x.tick(0);
        match x.master_pop(0) {
            Some(AxiResp::Write(AxiWriteResp { id: 7, ok: false })) => {}
            other => panic!("expected decerr, got {other:?}"),
        }
        assert_eq!(x.stats().get("xbar.decerr"), 1);
    }

    #[test]
    fn writes_complete_with_acks() {
        let mut x = xbar2x2();
        x.master_push(0, AxiReq::Write(AxiWrite::new(0x10, vec![9; 24], 5))).unwrap();
        x.tick(0);
        let req = x.slave_pop(0).unwrap();
        x.slave_push(0, AxiResp::Write(AxiWriteResp { id: req.id(), ok: true })).unwrap();
        x.tick(1);
        assert_eq!(x.master_pop(0), Some(AxiResp::Write(AxiWriteResp { id: 5, ok: true })));
    }

    #[test]
    fn many_outstanding_transactions() {
        let mut x = Crossbar::new(1, 1);
        x.map_range(0, 0x10000, 0);
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut now = 0;
        while done < 100 {
            if sent < 100 && x.master_can_push(0) {
                x.master_push(0, AxiReq::Read(AxiRead::new(sent * 8, 8, (sent % 4) as u16)))
                    .unwrap();
                sent += 1;
            }
            x.tick(now);
            if let Some(req) = x.slave_pop(0) {
                x.slave_push(0, AxiResp::Read(AxiReadResp { id: req.id(), data: vec![0; 8] }))
                    .unwrap();
            }
            while x.master_pop(0).is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 5_000, "crossbar stuck at sent={sent} done={done}");
        }
        assert!(x.is_idle());
    }

    #[test]
    fn snapshot_round_trip_preserves_outstanding_transactions() {
        use smappic_sim::Snapshot;

        let mut original = xbar2x2();
        original.master_push(0, AxiReq::Read(AxiRead::new(0x0040, 8, 7))).unwrap();
        original.master_push(1, AxiReq::Write(AxiWrite::new(0x1040, vec![5; 16], 7))).unwrap();
        original.tick(0);
        // Both requests are now outstanding at the slaves (inflight map
        // populated, queues non-empty).
        let mut w = SnapWriter::new();
        w.scoped("xbar", |w| original.save(w));
        let snap = Snapshot::new(1, 1, w);

        let mut restored = xbar2x2();
        let mut r = SnapReader::new(&snap);
        r.scoped("xbar", |r| restored.restore(r));
        r.finish().expect("clean restore");

        // Drive both to completion identically.
        for x in [&mut original, &mut restored] {
            while let Some(req) = x.slave_pop(0) {
                x.slave_push(0, AxiResp::Read(AxiReadResp { id: req.id(), data: vec![1; 8] }))
                    .unwrap();
            }
            while let Some(req) = x.slave_pop(1) {
                x.slave_push(1, AxiResp::Write(AxiWriteResp { id: req.id(), ok: true })).unwrap();
            }
            x.tick(1);
        }
        assert_eq!(original.master_pop(0), restored.master_pop(0));
        assert_eq!(original.master_pop(1), restored.master_pop(1));
        assert!(original.is_idle() && restored.is_idle());
        assert_eq!(original.stats().get("xbar.req"), restored.stats().get("xbar.req"));
    }

    #[test]
    fn fault_stalls_delay_but_never_drop() {
        use smappic_sim::{FaultPlan, FaultProfile};
        use std::sync::Arc;

        let profile = FaultProfile { stall_prob: 0.5, stall_window: 8, ..FaultProfile::quiet() };
        let plan = Arc::new(FaultPlan::seeded(21, profile));
        let mut x = Crossbar::new(1, 1);
        x.map_range(0, 0x10000, 0);
        x.set_faults(FaultInjector::new(plan, 0x300));
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut now = 0;
        while done < 100 {
            if sent < 100 && x.master_can_push(0) {
                x.master_push(0, AxiReq::Read(AxiRead::new(sent * 8, 8, (sent % 4) as u16)))
                    .unwrap();
                sent += 1;
            }
            x.tick(now);
            if let Some(req) = x.slave_pop(0) {
                x.slave_push(0, AxiResp::Read(AxiReadResp { id: req.id(), data: vec![0; 8] }))
                    .unwrap();
            }
            while x.master_pop(0).is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 20_000, "crossbar livelocked at sent={sent} done={done}");
        }
        assert!(x.is_idle());
        assert!(x.stats().get("xbar.fault_stall") > 0, "stalls must have fired");
    }
}
