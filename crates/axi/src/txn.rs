//! AXI4 and AXI-Lite transaction types.

/// An AXI4 write burst (aw + w channels collapsed into one transaction).
///
/// The inter-node bridge encodes NoC traffic into these: the address carries
/// destination/source node IDs and flit-valid bits, the data carries NoC
/// flits (§3.1, Fig 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxiWrite {
    /// Target address (aw channel).
    pub addr: u64,
    /// Write payload (w channel beats).
    pub data: Vec<u8>,
    /// Transaction ID for response matching.
    pub id: u16,
}

impl AxiWrite {
    /// Creates a write burst.
    pub fn new(addr: u64, data: Vec<u8>, id: u16) -> Self {
        Self { addr, data, id }
    }
}

/// An AXI4 read burst request (ar channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiRead {
    /// Target address.
    pub addr: u64,
    /// Number of bytes to read.
    pub len: u32,
    /// Transaction ID for response matching.
    pub id: u16,
}

impl AxiRead {
    /// Creates a read request.
    pub fn new(addr: u64, len: u32, id: u16) -> Self {
        Self { addr, len, id }
    }
}

/// Write acknowledgement (b channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiWriteResp {
    /// ID of the acknowledged write.
    pub id: u16,
    /// SLVERR/DECERR collapse into `false`.
    pub ok: bool,
}

/// Read data return (r channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxiReadResp {
    /// ID of the originating read.
    pub id: u16,
    /// The data beats.
    pub data: Vec<u8>,
}

/// Any AXI4 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiReq {
    /// A write burst.
    Write(AxiWrite),
    /// A read burst.
    Read(AxiRead),
}

impl AxiReq {
    /// The target address of the request.
    pub fn addr(&self) -> u64 {
        match self {
            AxiReq::Write(w) => w.addr,
            AxiReq::Read(r) => r.addr,
        }
    }

    /// The transaction ID.
    pub fn id(&self) -> u16 {
        match self {
            AxiReq::Write(w) => w.id,
            AxiReq::Read(r) => r.id,
        }
    }

    /// Replaces the transaction ID (used by ID-remapping interconnect).
    pub fn with_id(mut self, id: u16) -> Self {
        match &mut self {
            AxiReq::Write(w) => w.id = id,
            AxiReq::Read(r) => r.id = id,
        }
        self
    }

    /// Bytes this request occupies on a link (address beat + data).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            AxiReq::Write(w) => 8 + w.data.len() as u64,
            AxiReq::Read(_) => 8,
        }
    }
}

/// Any AXI4 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiResp {
    /// A write acknowledgement.
    Write(AxiWriteResp),
    /// A read data return.
    Read(AxiReadResp),
}

impl AxiResp {
    /// The transaction ID the response answers.
    pub fn id(&self) -> u16 {
        match self {
            AxiResp::Write(w) => w.id,
            AxiResp::Read(r) => r.id,
        }
    }

    /// Replaces the transaction ID.
    pub fn with_id(mut self, id: u16) -> Self {
        match &mut self {
            AxiResp::Write(w) => w.id = id,
            AxiResp::Read(r) => r.id = id,
        }
        self
    }

    /// Bytes this response occupies on a link.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            AxiResp::Write(_) => 8,
            AxiResp::Read(r) => 8 + r.data.len() as u64,
        }
    }
}

/// A single-beat AXI-Lite request (32-bit data).
///
/// F1 provides three AXI-Lite interfaces for management; SMAPPIC tunnels
/// UART register accesses through one of them (§3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteReq {
    /// 32-bit register read.
    Read {
        /// Register address.
        addr: u64,
    },
    /// 32-bit register write.
    Write {
        /// Register address.
        addr: u64,
        /// Data to write.
        data: u32,
    },
}

impl LiteReq {
    /// The register address targeted.
    pub fn addr(&self) -> u64 {
        match self {
            LiteReq::Read { addr } | LiteReq::Write { addr, .. } => *addr,
        }
    }
}

/// A single-beat AXI-Lite response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteResp {
    /// Data for a read.
    Read {
        /// Register contents.
        data: u32,
    },
    /// Ack for a write.
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_id_remap() {
        let r = AxiReq::Read(AxiRead::new(0x100, 64, 3)).with_id(9);
        assert_eq!(r.id(), 9);
        assert_eq!(r.addr(), 0x100);
        let w = AxiReq::Write(AxiWrite::new(0x200, vec![0; 24], 1)).with_id(4);
        assert_eq!(w.id(), 4);
    }

    #[test]
    fn wire_bytes_account_for_payload() {
        assert_eq!(AxiReq::Read(AxiRead::new(0, 64, 0)).wire_bytes(), 8);
        assert_eq!(AxiReq::Write(AxiWrite::new(0, vec![0; 24], 0)).wire_bytes(), 32);
        assert_eq!(AxiResp::Write(AxiWriteResp { id: 0, ok: true }).wire_bytes(), 8);
        assert_eq!(AxiResp::Read(AxiReadResp { id: 0, data: vec![0; 64] }).wire_bytes(), 72);
    }

    #[test]
    fn lite_req_addr() {
        assert_eq!(LiteReq::Read { addr: 0x10 }.addr(), 0x10);
        assert_eq!(LiteReq::Write { addr: 0x20, data: 5 }.addr(), 0x20);
    }
}
