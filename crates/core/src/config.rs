//! Platform configuration: AxBxC shape, Table 2 parameters, address map.

use std::sync::Arc;

use smappic_coherence::HomingMode;
use smappic_sim::{Cycle, EthParams, FaultPlan};

/// Base of cacheable DRAM in the guest physical address space.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Console UART (16550, 115200 baud) MMIO base, per node.
pub const UART0_BASE: u64 = 0x6000_0000;

/// Data UART ("overclocked" ~1 Mbit/s, §3.4.1) MMIO base, per node.
pub const UART1_BASE: u64 = 0x6001_0000;

/// CLINT (timer + software interrupts) MMIO base, per node.
pub const CLINT_BASE: u64 = 0x6100_0000;

/// Virtual SD controller MMIO base, per node (§3.4.2).
pub const SD_CTL_BASE: u64 = 0x6200_0000;

/// Platform-level interrupt controller MMIO base, per node.
pub const PLIC_BASE: u64 = 0x6400_0000;

/// Start of the SD-card data region: the "top half" of the node's DRAM
/// where the host's SD driver injects the disk image.
pub const SD_DATA_BASE: u64 = 0x2_0000_0000;

/// MMIO window of a GNG accelerator occupying a tile (per-tile windows of
/// 4 KiB starting here, indexed by tile).
pub const GNG_MMIO_BASE: u64 = 0x7000_0000;

/// MMIO window base for MAPLE engines (per-tile 4 KiB windows).
pub const MAPLE_MMIO_BASE: u64 = 0x7100_0000;

/// Table 2: the prototyped system parameters.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Fabric frequency in MHz (Table 2: 100 MHz).
    pub frequency_mhz: u32,
    /// L1I capacity in bytes (16 KB).
    pub l1i_bytes: usize,
    /// BPC capacity in bytes (8 KB, 4 ways).
    pub bpc_bytes: usize,
    /// BPC associativity.
    pub bpc_ways: usize,
    /// LLC slice capacity in bytes (64 KB, 4 ways).
    pub llc_slice_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// DRAM latency in cycles (80).
    pub dram_latency: Cycle,
    /// One-way PCIe latency in cycles (62 ⇒ ~125-cycle round trip).
    pub pcie_one_way_latency: Cycle,
    /// PCIe bandwidth in bytes per cycle.
    pub pcie_bytes_per_cycle: u64,
    /// Extra traffic-shaper latency in the inter-node bridge (models
    /// slower interconnects like Ampere Altra, §4.1).
    pub bridge_extra_latency: Cycle,
    /// Bridge bandwidth in bytes per cycle.
    pub bridge_bytes_per_cycle: u64,
    /// Per-node DRAM bytes (defines the NUMA regions of partitioned
    /// homing; 256 MiB keeps the simulation light).
    pub bytes_per_node: u64,
    /// BPC miss-status-holding registers.
    pub bpc_mshrs: usize,
    /// BPC hit latency (cycles).
    pub bpc_hit_latency: Cycle,
    /// LLC pipeline latency (cycles).
    pub llc_latency: Cycle,
    /// Mesh hop latency (cycles).
    pub hop_latency: Cycle,
    /// When true, every node's DRAM eagerly allocates a dense byte buffer
    /// for its homed window instead of the default sparse copy-on-write
    /// pages — the memory-hungry baseline the scale benchmark compares
    /// peak RSS against. Guest-visible behaviour is identical.
    pub dram_dense: bool,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            frequency_mhz: 100,
            l1i_bytes: 16 * 1024,
            bpc_bytes: 8 * 1024,
            bpc_ways: 4,
            llc_slice_bytes: 64 * 1024,
            llc_ways: 4,
            dram_latency: 80,
            pcie_one_way_latency: 62,
            pcie_bytes_per_cycle: 160,
            bridge_extra_latency: 0,
            // The traffic shaper models the *target* inter-socket link
            // (§3.5), not raw PCIe: 8 B/cycle ≈ 6.4 GB/s per direction at
            // 100 MHz, an inter-socket-class per-link bandwidth. This is
            // what makes inter-node congestion visible at high thread
            // counts (Fig 8).
            bridge_bytes_per_cycle: 8,
            bytes_per_node: 256 << 20,
            bpc_mshrs: 4,
            bpc_hit_latency: 2,
            llc_latency: 4,
            hop_latency: 1,
            dram_dense: false,
        }
    }
}

/// How the prototype's FPGAs are interconnected.
///
/// An F1 instance gives at most four FPGAs low-latency PCIe peer links
/// (§4.8); past that, SMAPPIC scales out over the datacenter network. The
/// switched-Ethernet fabric models that path: higher latency, serialized
/// frames, store-and-forward switches — but the same deterministic,
/// snapshottable, fault-injectable contract as the PCIe links, so every
/// differential suite runs unchanged at rack scale.
#[derive(Debug, Clone)]
pub enum Topology {
    /// Full-mesh PCIe peer links between all FPGAs (the classic ≤4-FPGA
    /// F1 instance).
    PcieStar,
    /// Every FPGA attaches to a switched-Ethernet fabric: one switch per
    /// group of [`EthParams::group_size`] FPGAs, switches joined by a
    /// spine. No PCIe links exist.
    Ethernet(EthParams),
    /// F1 instances joined by Ethernet: FPGAs within one instance (one
    /// group) keep their PCIe full mesh; cross-group traffic rides the
    /// Ethernet fabric. `group_size` must be ≤ 4 (an instance's PCIe
    /// reach).
    Hybrid(EthParams),
}

impl Topology {
    /// The Ethernet fabric parameters, when the topology has a fabric.
    pub fn eth_params(&self) -> Option<&EthParams> {
        match self {
            Topology::PcieStar => None,
            Topology::Ethernet(p) | Topology::Hybrid(p) => Some(p),
        }
    }

    /// True when a pair of distinct FPGAs is joined by a direct PCIe link
    /// under this topology.
    pub fn pcie_linked(&self, a: usize, b: usize) -> bool {
        match self {
            Topology::PcieStar => true,
            Topology::Ethernet(_) => false,
            Topology::Hybrid(p) => a / p.group_size == b / p.group_size,
        }
    }
}

/// Which transports a [`FaultPlan`] is threaded through.
///
/// All injected faults are *timing* faults: they delay, duplicate, or
/// back-pressure traffic but never corrupt committed values, so a faulted
/// run terminates with the same architectural state as the clean run (the
/// invariant the chaos suite in `tests/fault_equivalence.rs` enforces).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The deterministic plan every injector draws from.
    pub plan: Arc<FaultPlan>,
    /// Delay/duplicate/blackhole items on the PCIe links, with the Hard
    /// Shell inbound guard (reorder + dedup + retry) enabled to recover.
    pub links: bool,
    /// Transient stalls on NoC mesh router output ports.
    pub noc: bool,
    /// Transient stalls on AXI crossbar master ports.
    pub xbar: bool,
    /// Latency spikes on DRAM channel requests.
    pub dram: bool,
}

impl FaultSpec {
    /// Faults on every transport.
    pub fn all(plan: Arc<FaultPlan>) -> Self {
        Self { plan, links: true, noc: true, xbar: true, dram: true }
    }

    /// Faults on the PCIe links only (plus the shell guard).
    pub fn links_only(plan: Arc<FaultPlan>) -> Self {
        Self { plan, links: true, noc: false, xbar: false, dram: false }
    }
}

/// An AxBxC prototype configuration.
///
/// ```
/// use smappic_core::Config;
/// let c = Config::new(4, 1, 12); // the 48-core flagship (Fig 1c)
/// assert_eq!(c.total_nodes(), 4);
/// assert_eq!(c.total_tiles(), 48);
/// assert_eq!(c.notation(), "4x1x12");
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of FPGAs (A). At most 4 — only four FPGAs in an F1 instance
    /// are connected with low-latency PCIe links (§4.8).
    pub fpgas: usize,
    /// Nodes per FPGA (B). At most 4 — one DDR4 controller per node.
    pub nodes_per_fpga: usize,
    /// Tiles per node (C).
    pub tiles_per_node: usize,
    /// Table 2 parameters.
    pub params: SystemParams,
    /// Homing policy; `None` selects partitioned homing over
    /// `params.bytes_per_node` (the multi-node default).
    pub homing: Option<HomingMode>,
    /// When false, nodes are independent prototypes with no inter-node
    /// interconnect (the cost-efficient 1x4x2 of §4.5).
    pub unified_memory: bool,
    /// Deterministic timing-fault injection; `None` (the default) builds a
    /// clean platform with zero fault machinery on any hot path.
    pub fault: Option<FaultSpec>,
    /// How the FPGAs are interconnected. [`Config::new`] always selects
    /// [`Topology::PcieStar`]; rack-scale shapes come from
    /// [`Config::rack`].
    pub topology: Topology,
}

impl Config {
    /// Creates an AxBxC configuration with default parameters.
    ///
    /// # Panics
    ///
    /// Panics when the shape violates the F1 limits of §4.8 (A ≤ 4,
    /// B ≤ 4, C ≥ 1).
    pub fn new(fpgas: usize, nodes_per_fpga: usize, tiles_per_node: usize) -> Self {
        assert!((1..=4).contains(&fpgas), "one SMAPPIC prototype spans at most 4 FPGAs");
        assert!(
            (1..=4).contains(&nodes_per_fpga),
            "at most four nodes per FPGA (four DDR4 controllers)"
        );
        assert!(tiles_per_node >= 1, "a node needs at least one tile");
        Self {
            fpgas,
            nodes_per_fpga,
            tiles_per_node,
            params: SystemParams::default(),
            homing: None,
            unified_memory: true,
            fault: None,
            topology: Topology::PcieStar,
        }
    }

    /// Creates a rack-scale configuration: `fpgas` FPGAs joined by the
    /// given network topology instead of (or in addition to) PCIe. This is
    /// the only constructor that lifts the 4-FPGA F1 ceiling — the
    /// network, not PCIe peer windows, is what carries cross-instance
    /// traffic, exactly as §4.8 sketches scaling beyond one instance.
    ///
    /// # Panics
    ///
    /// Panics when `fpgas` exceeds 256 (PCIe link endpoints are `u8`),
    /// when total nodes exceed `u16` node-id space, when the topology is
    /// [`Topology::PcieStar`] (use [`Config::new`]), or — for
    /// [`Topology::Hybrid`] — when the Ethernet group size exceeds the
    /// 4-FPGA PCIe reach of one instance.
    pub fn rack(
        fpgas: usize,
        nodes_per_fpga: usize,
        tiles_per_node: usize,
        topology: Topology,
    ) -> Self {
        assert!((1..=256).contains(&fpgas), "rack configurations span 1..=256 FPGAs");
        assert!(
            (1..=4).contains(&nodes_per_fpga),
            "at most four nodes per FPGA (four DDR4 controllers)"
        );
        assert!(tiles_per_node >= 1, "a node needs at least one tile");
        assert!(fpgas * nodes_per_fpga <= usize::from(u16::MAX), "node ids are u16");
        match &topology {
            Topology::PcieStar => panic!("PCIe-star racks are plain Config::new platforms"),
            Topology::Ethernet(p) => p.validate(),
            Topology::Hybrid(p) => {
                p.validate();
                assert!(
                    p.group_size <= 4,
                    "hybrid groups are F1 instances: at most 4 PCIe-linked FPGAs"
                );
            }
        }
        Self {
            fpgas,
            nodes_per_fpga,
            tiles_per_node,
            params: SystemParams::default(),
            homing: None,
            unified_memory: true,
            fault: None,
            topology,
        }
    }

    /// Threads a fault plan through the selected transports.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(spec);
        self
    }

    /// Total nodes in the prototype.
    pub fn total_nodes(&self) -> usize {
        self.fpgas * self.nodes_per_fpga
    }

    /// Total tiles.
    pub fn total_tiles(&self) -> usize {
        self.total_nodes() * self.tiles_per_node
    }

    /// The paper's AxBxC notation string.
    pub fn notation(&self) -> String {
        format!("{}x{}x{}", self.fpgas, self.nodes_per_fpga, self.tiles_per_node)
    }

    /// The effective homing mode. Without unified memory (§4.5's
    /// cost-efficient multi-prototype packing) every node homes its own
    /// lines — the nodes are fully independent systems.
    pub fn homing_mode(&self) -> HomingMode {
        if !self.unified_memory {
            return HomingMode::NodeLocal;
        }
        self.homing.unwrap_or(HomingMode::Partitioned {
            dram_base: DRAM_BASE,
            bytes_per_node: self.params.bytes_per_node,
        })
    }

    /// Marks the prototype as independent nodes (no inter-node
    /// interconnect): the 1x4x2 configuration of §4.5 that packs four
    /// prototypes into one FPGA for cost efficiency.
    pub fn independent_nodes(mut self) -> Self {
        self.unified_memory = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_matches_paper() {
        assert_eq!(Config::new(1, 4, 2).notation(), "1x4x2");
        assert_eq!(Config::new(4, 4, 2).total_tiles(), 32);
    }

    #[test]
    #[should_panic(expected = "4 FPGAs")]
    fn more_than_four_fpgas_rejected() {
        Config::new(5, 1, 1);
    }

    #[test]
    #[should_panic(expected = "DDR4")]
    fn more_than_four_nodes_per_fpga_rejected() {
        Config::new(1, 5, 1);
    }

    #[test]
    fn rack_configs_span_beyond_one_instance() {
        let eth = Config::rack(64, 1, 1, Topology::Ethernet(EthParams::default()));
        assert_eq!(eth.total_nodes(), 64);
        assert!(!eth.topology.pcie_linked(0, 1), "pure Ethernet has no PCIe links");
        let hy = Config::rack(
            16,
            1,
            1,
            Topology::Hybrid(EthParams { group_size: 4, ..Default::default() }),
        );
        assert!(hy.topology.pcie_linked(0, 3), "same instance keeps PCIe");
        assert!(!hy.topology.pcie_linked(3, 4), "cross-instance rides Ethernet");
    }

    #[test]
    #[should_panic(expected = "PCIe-linked")]
    fn hybrid_groups_cannot_exceed_pcie_reach() {
        Config::rack(16, 1, 1, Topology::Hybrid(EthParams { group_size: 8, ..Default::default() }));
    }

    #[test]
    #[should_panic(expected = "256 FPGAs")]
    fn racks_cap_at_pcie_endpoint_width() {
        Config::rack(257, 1, 1, Topology::Ethernet(EthParams::default()));
    }

    #[test]
    fn default_homing_is_partitioned() {
        let c = Config::new(2, 1, 2);
        match c.homing_mode() {
            HomingMode::Partitioned { dram_base, bytes_per_node } => {
                assert_eq!(dram_base, DRAM_BASE);
                assert_eq!(bytes_per_node, c.params.bytes_per_node);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
