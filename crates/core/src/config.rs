//! Platform configuration: AxBxC shape, Table 2 parameters, address map.

use std::sync::Arc;

use smappic_coherence::HomingMode;
use smappic_sim::{Cycle, FaultPlan};

/// Base of cacheable DRAM in the guest physical address space.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Console UART (16550, 115200 baud) MMIO base, per node.
pub const UART0_BASE: u64 = 0x6000_0000;

/// Data UART ("overclocked" ~1 Mbit/s, §3.4.1) MMIO base, per node.
pub const UART1_BASE: u64 = 0x6001_0000;

/// CLINT (timer + software interrupts) MMIO base, per node.
pub const CLINT_BASE: u64 = 0x6100_0000;

/// Virtual SD controller MMIO base, per node (§3.4.2).
pub const SD_CTL_BASE: u64 = 0x6200_0000;

/// Platform-level interrupt controller MMIO base, per node.
pub const PLIC_BASE: u64 = 0x6400_0000;

/// Start of the SD-card data region: the "top half" of the node's DRAM
/// where the host's SD driver injects the disk image.
pub const SD_DATA_BASE: u64 = 0x2_0000_0000;

/// MMIO window of a GNG accelerator occupying a tile (per-tile windows of
/// 4 KiB starting here, indexed by tile).
pub const GNG_MMIO_BASE: u64 = 0x7000_0000;

/// MMIO window base for MAPLE engines (per-tile 4 KiB windows).
pub const MAPLE_MMIO_BASE: u64 = 0x7100_0000;

/// Table 2: the prototyped system parameters.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Fabric frequency in MHz (Table 2: 100 MHz).
    pub frequency_mhz: u32,
    /// L1I capacity in bytes (16 KB).
    pub l1i_bytes: usize,
    /// BPC capacity in bytes (8 KB, 4 ways).
    pub bpc_bytes: usize,
    /// BPC associativity.
    pub bpc_ways: usize,
    /// LLC slice capacity in bytes (64 KB, 4 ways).
    pub llc_slice_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// DRAM latency in cycles (80).
    pub dram_latency: Cycle,
    /// One-way PCIe latency in cycles (62 ⇒ ~125-cycle round trip).
    pub pcie_one_way_latency: Cycle,
    /// PCIe bandwidth in bytes per cycle.
    pub pcie_bytes_per_cycle: u64,
    /// Extra traffic-shaper latency in the inter-node bridge (models
    /// slower interconnects like Ampere Altra, §4.1).
    pub bridge_extra_latency: Cycle,
    /// Bridge bandwidth in bytes per cycle.
    pub bridge_bytes_per_cycle: u64,
    /// Per-node DRAM bytes (defines the NUMA regions of partitioned
    /// homing; 256 MiB keeps the simulation light).
    pub bytes_per_node: u64,
    /// BPC miss-status-holding registers.
    pub bpc_mshrs: usize,
    /// BPC hit latency (cycles).
    pub bpc_hit_latency: Cycle,
    /// LLC pipeline latency (cycles).
    pub llc_latency: Cycle,
    /// Mesh hop latency (cycles).
    pub hop_latency: Cycle,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            frequency_mhz: 100,
            l1i_bytes: 16 * 1024,
            bpc_bytes: 8 * 1024,
            bpc_ways: 4,
            llc_slice_bytes: 64 * 1024,
            llc_ways: 4,
            dram_latency: 80,
            pcie_one_way_latency: 62,
            pcie_bytes_per_cycle: 160,
            bridge_extra_latency: 0,
            // The traffic shaper models the *target* inter-socket link
            // (§3.5), not raw PCIe: 8 B/cycle ≈ 6.4 GB/s per direction at
            // 100 MHz, an inter-socket-class per-link bandwidth. This is
            // what makes inter-node congestion visible at high thread
            // counts (Fig 8).
            bridge_bytes_per_cycle: 8,
            bytes_per_node: 256 << 20,
            bpc_mshrs: 4,
            bpc_hit_latency: 2,
            llc_latency: 4,
            hop_latency: 1,
        }
    }
}

/// Which transports a [`FaultPlan`] is threaded through.
///
/// All injected faults are *timing* faults: they delay, duplicate, or
/// back-pressure traffic but never corrupt committed values, so a faulted
/// run terminates with the same architectural state as the clean run (the
/// invariant the chaos suite in `tests/fault_equivalence.rs` enforces).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The deterministic plan every injector draws from.
    pub plan: Arc<FaultPlan>,
    /// Delay/duplicate/blackhole items on the PCIe links, with the Hard
    /// Shell inbound guard (reorder + dedup + retry) enabled to recover.
    pub links: bool,
    /// Transient stalls on NoC mesh router output ports.
    pub noc: bool,
    /// Transient stalls on AXI crossbar master ports.
    pub xbar: bool,
    /// Latency spikes on DRAM channel requests.
    pub dram: bool,
}

impl FaultSpec {
    /// Faults on every transport.
    pub fn all(plan: Arc<FaultPlan>) -> Self {
        Self { plan, links: true, noc: true, xbar: true, dram: true }
    }

    /// Faults on the PCIe links only (plus the shell guard).
    pub fn links_only(plan: Arc<FaultPlan>) -> Self {
        Self { plan, links: true, noc: false, xbar: false, dram: false }
    }
}

/// An AxBxC prototype configuration.
///
/// ```
/// use smappic_core::Config;
/// let c = Config::new(4, 1, 12); // the 48-core flagship (Fig 1c)
/// assert_eq!(c.total_nodes(), 4);
/// assert_eq!(c.total_tiles(), 48);
/// assert_eq!(c.notation(), "4x1x12");
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of FPGAs (A). At most 4 — only four FPGAs in an F1 instance
    /// are connected with low-latency PCIe links (§4.8).
    pub fpgas: usize,
    /// Nodes per FPGA (B). At most 4 — one DDR4 controller per node.
    pub nodes_per_fpga: usize,
    /// Tiles per node (C).
    pub tiles_per_node: usize,
    /// Table 2 parameters.
    pub params: SystemParams,
    /// Homing policy; `None` selects partitioned homing over
    /// `params.bytes_per_node` (the multi-node default).
    pub homing: Option<HomingMode>,
    /// When false, nodes are independent prototypes with no inter-node
    /// interconnect (the cost-efficient 1x4x2 of §4.5).
    pub unified_memory: bool,
    /// Deterministic timing-fault injection; `None` (the default) builds a
    /// clean platform with zero fault machinery on any hot path.
    pub fault: Option<FaultSpec>,
}

impl Config {
    /// Creates an AxBxC configuration with default parameters.
    ///
    /// # Panics
    ///
    /// Panics when the shape violates the F1 limits of §4.8 (A ≤ 4,
    /// B ≤ 4, C ≥ 1).
    pub fn new(fpgas: usize, nodes_per_fpga: usize, tiles_per_node: usize) -> Self {
        assert!((1..=4).contains(&fpgas), "one SMAPPIC prototype spans at most 4 FPGAs");
        assert!(
            (1..=4).contains(&nodes_per_fpga),
            "at most four nodes per FPGA (four DDR4 controllers)"
        );
        assert!(tiles_per_node >= 1, "a node needs at least one tile");
        Self {
            fpgas,
            nodes_per_fpga,
            tiles_per_node,
            params: SystemParams::default(),
            homing: None,
            unified_memory: true,
            fault: None,
        }
    }

    /// Threads a fault plan through the selected transports.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(spec);
        self
    }

    /// Total nodes in the prototype.
    pub fn total_nodes(&self) -> usize {
        self.fpgas * self.nodes_per_fpga
    }

    /// Total tiles.
    pub fn total_tiles(&self) -> usize {
        self.total_nodes() * self.tiles_per_node
    }

    /// The paper's AxBxC notation string.
    pub fn notation(&self) -> String {
        format!("{}x{}x{}", self.fpgas, self.nodes_per_fpga, self.tiles_per_node)
    }

    /// The effective homing mode. Without unified memory (§4.5's
    /// cost-efficient multi-prototype packing) every node homes its own
    /// lines — the nodes are fully independent systems.
    pub fn homing_mode(&self) -> HomingMode {
        if !self.unified_memory {
            return HomingMode::NodeLocal;
        }
        self.homing.unwrap_or(HomingMode::Partitioned {
            dram_base: DRAM_BASE,
            bytes_per_node: self.params.bytes_per_node,
        })
    }

    /// Marks the prototype as independent nodes (no inter-node
    /// interconnect): the 1x4x2 configuration of §4.5 that packs four
    /// prototypes into one FPGA for cost efficiency.
    pub fn independent_nodes(mut self) -> Self {
        self.unified_memory = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_matches_paper() {
        assert_eq!(Config::new(1, 4, 2).notation(), "1x4x2");
        assert_eq!(Config::new(4, 4, 2).total_tiles(), 32);
    }

    #[test]
    #[should_panic(expected = "4 FPGAs")]
    fn more_than_four_fpgas_rejected() {
        Config::new(5, 1, 1);
    }

    #[test]
    #[should_panic(expected = "DDR4")]
    fn more_than_four_nodes_per_fpga_rejected() {
        Config::new(1, 5, 1);
    }

    #[test]
    fn default_homing_is_partitioned() {
        let c = Config::new(2, 1, 2);
        match c.homing_mode() {
            HomingMode::Partitioned { dram_base, bytes_per_node } => {
                assert_eq!(dram_base, DRAM_BASE);
                assert_eq!(bytes_per_node, c.params.bytes_per_node);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
