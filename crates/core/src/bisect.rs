//! First-divergence bisector: pinpoint where two supposedly-equivalent
//! runs first disagree, by epoch, cycle, and component.
//!
//! Two platform builds that *should* behave identically — serial vs
//! epoch-parallel stepper, a refactored component vs its reference, twin
//! configs that differ in something believed non-architectural — can
//! silently diverge millions of cycles into a run. Diffing final state
//! says *that* they diverged; this module says *where*:
//!
//! 1. **Checkpoint pass.** Both platforms advance in `interval`-cycle
//!    strides, checkpointing every boundary as a base snapshot plus a
//!    [`SnapDelta`] chain ([`Platform::snapshot_delta`]) — only dirty
//!    sections are retained per boundary, so long forward passes no
//!    longer hold one full platform image per stride.
//! 2. **Binary search.** Simulation is deterministic, so bit-equal states
//!    have bit-equal futures: "boundary `i` diverged" is monotone in `i`,
//!    and the first divergent boundary is found in `O(log n)` snapshot
//!    comparisons instead of `n`.
//! 3. **Lockstep refinement.** Both platforms restore to the last equal
//!    boundary and re-execute the divergent stride one cycle at a time,
//!    snapshotting each cycle. The first differing cycle and the first
//!    differing *component section* (named by the same topology-rooted
//!    dotted path the metrics layer uses) are reported.
//!
//! Host-side stepper diagnostics (`host.*` sections) are excluded from
//! every comparison — the two steppers legitimately disagree there.

use smappic_sim::{Cycle, SnapDelta, SnapError, Snapshot};

use crate::platform::Platform;

/// Interval checkpoints as a base snapshot plus a delta chain: boundary
/// `i` is `base + deltas[..i]`. Only dirty sections are retained per
/// boundary; the running tip is kept so appending stays `O(sections)`.
struct Chain {
    base: Snapshot,
    deltas: Vec<SnapDelta>,
    tip: Snapshot,
}

impl Chain {
    fn new(base: Snapshot) -> Self {
        Self { tip: base.clone(), base, deltas: Vec::new() }
    }

    /// Appends the next boundary state as a delta against the tip.
    fn push(&mut self, snap: Snapshot) -> Result<(), SnapError> {
        self.deltas.push(SnapDelta::between(&self.tip, &snap)?);
        self.tip = snap;
        Ok(())
    }

    /// Number of boundaries (the base counts as boundary 0).
    fn len(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Materializes boundary `i` by replaying the chain prefix.
    fn materialize(&self, i: usize) -> Result<Snapshot, SnapError> {
        let mut s = self.base.clone();
        for d in &self.deltas[..i] {
            s = s.apply_delta(d)?;
        }
        Ok(s)
    }
}

/// Which stepper drives a platform through the bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stepper {
    /// [`Platform::run`]: one cycle at a time, all FPGAs in index order.
    Serial,
    /// [`Platform::run_parallel`]: conservative epoch-parallel execution
    /// (bit-identical to serial by contract — which this bisector is
    /// built to check).
    EpochParallel,
}

impl Stepper {
    fn advance(self, p: &mut Platform, cycles: u64) {
        match self {
            Stepper::Serial => p.run(cycles),
            Stepper::EpochParallel => p.run_parallel(cycles),
        }
    }
}

/// Where two runs first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// Index of the first checkpoint interval whose end-of-stride states
    /// differ (interval `e` spans cycles `[e*interval, (e+1)*interval)`).
    pub epoch: u64,
    /// The first cycle whose *post-tick* state differs: after both
    /// platforms executed this cycle, their snapshots disagree.
    pub cycle: Cycle,
    /// Topology-rooted section name of the first differing component
    /// (e.g. `fpga0.node1.tile0.bpc`), in snapshot walk order.
    pub component: String,
    /// Snapshot comparisons spent by the binary search (diagnostic).
    pub probes: u64,
}

impl std::fmt::Display for BisectReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence in epoch {} at cycle {}: component '{}' ({} probes)",
            self.epoch, self.cycle, self.component, self.probes
        )
    }
}

/// True when the two snapshots disagree on any architectural section.
fn differs(a: &Snapshot, b: &Snapshot) -> bool {
    a.first_divergence(b).is_some()
}

/// Runs `a` and `b` forward `max_cycles` cycles and reports where their
/// architectural state first diverges, or [`Ok`]`(None)` when they agree
/// at every checkpoint boundary.
///
/// `interval` is the checkpoint stride: smaller strides cost more
/// snapshot memory in the forward pass but bound the lockstep
/// re-execution; `interval = 0` is clamped to 1. Both platforms are left
/// at the divergent cycle (on divergence) or at `max_cycles` (on
/// agreement), so the caller can immediately inspect the disagreeing
/// state.
///
/// The monotonicity the binary search relies on — once bit-equal, always
/// bit-equal forward — holds because both steppers are deterministic
/// functions of architectural state. A transiently-divergent-then-
/// reconverged pair (possible only if the divergent state is unobservable
/// forward) is reported as equal, which is the right answer for "do these
/// runs behave identically?".
///
/// # Errors
///
/// Propagates any [`SnapError`] from restoring a checkpoint into its own
/// platform — impossible unless a component's `save`/`restore` pair is
/// asymmetric, which is exactly worth surfacing loudly.
pub fn bisect_first_divergence(
    a: &mut Platform,
    sa: Stepper,
    b: &mut Platform,
    sb: Stepper,
    max_cycles: u64,
    interval: u64,
) -> Result<Option<BisectReport>, SnapError> {
    let interval = interval.max(1);
    let mut probes: u64 = 0;

    // Checkpoint pass: boundary 0 is the starting state; every further
    // boundary is a delta against its predecessor.
    let mut chain_a = Chain::new(a.snapshot());
    let mut chain_b = Chain::new(b.snapshot());
    let mut remaining = max_cycles;
    while remaining > 0 {
        let len = interval.min(remaining);
        sa.advance(a, len);
        sb.advance(b, len);
        chain_a.push(a.snapshot())?;
        chain_b.push(b.snapshot())?;
        remaining -= len;
    }
    let last = chain_a.len() - 1;

    probes += 1;
    if !differs(&chain_a.tip, &chain_b.tip) {
        return Ok(None);
    }
    probes += 1;
    if differs(&chain_a.base, &chain_b.base) {
        // The starting states already disagree; no stride to refine.
        let component = chain_a.base.first_divergence(&chain_b.base).expect("probed divergent");
        a.restore(&chain_a.base)?;
        b.restore(&chain_b.base)?;
        return Ok(Some(BisectReport { epoch: 0, cycle: chain_a.base.cycle, component, probes }));
    }

    // Invariant: boundary `lo` equal, boundary `hi` divergent.
    let (mut lo, mut hi) = (0usize, last);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if differs(&chain_a.materialize(mid)?, &chain_b.materialize(mid)?) {
            hi = mid;
        } else {
            lo = mid;
        }
    }

    // Lockstep refinement inside the divergent stride, restoring each
    // platform through its delta chain (the incremental-restore path).
    a.restore_chain(&chain_a.base, &chain_a.deltas[..lo])?;
    b.restore_chain(&chain_b.base, &chain_b.deltas[..lo])?;
    let (snap_a_hi, snap_b_hi) = (chain_a.materialize(hi)?, chain_b.materialize(hi)?);
    let lo_cycle = if lo == 0 { chain_a.base.cycle } else { chain_a.deltas[lo - 1].cycle };
    let stride = snap_a_hi.cycle - lo_cycle;
    for _ in 0..stride {
        sa.advance(a, 1);
        sb.advance(b, 1);
        let (x, y) = (a.snapshot(), b.snapshot());
        if let Some(component) = x.first_divergence(&y) {
            return Ok(Some(BisectReport { epoch: lo as u64, cycle: x.cycle, component, probes }));
        }
    }
    // The boundary disagreed but no cycle inside the stride did — only
    // reachable if save/restore is not a fixed point. Fall back to the
    // boundary-level report rather than papering over it.
    let component = snap_a_hi.first_divergence(&snap_b_hi).expect("boundary probed divergent");
    Ok(Some(BisectReport { epoch: lo as u64, cycle: snap_a_hi.cycle, component, probes }))
}
