//! The node chipset: memory controller, UARTs, CLINT, virtual SD card,
//! interrupt packetizer, and the inter-node bridge attachment.

use std::collections::HashMap;

use smappic_mem::MemController;
use smappic_noc::{Gid, Msg, NodeId, Packet, TileId};
use smappic_sim::{Cycle, MetricsRegistry, Port, SaveState, SnapReader, SnapWriter, Stats};

use crate::bridge::InterNodeBridge;
use crate::config::{CLINT_BASE, PLIC_BASE, SD_CTL_BASE, SD_DATA_BASE, UART0_BASE, UART1_BASE};
use crate::plic::{Plic, PLIC_SRC_UART0, PLIC_SRC_UART1};
use crate::uart::Uart16550;

/// The RISC-V core-local interruptor: software (IPI) and timer interrupts
/// for every hart in the node. Its output wires feed the interrupt
/// packetizer (§3.3) instead of running across the die.
#[derive(Debug)]
pub struct Clint {
    msip: Vec<bool>,
    mtimecmp: Vec<u64>,
    mtime: u64,
}

/// MTIMECMP registers: 8 bytes per hart at offset 0x4000 (MSIP registers
/// occupy 4 bytes per hart from offset 0).
const CLINT_MTIMECMP: u64 = 0x4000;
/// MTIME register at offset 0xBFF8.
const CLINT_MTIME: u64 = 0xBFF8;

impl Clint {
    /// Creates a CLINT for `harts` harts. `mtimecmp` resets to the maximum
    /// value so no timer fires before software programs it.
    pub fn new(harts: usize) -> Self {
        Self { msip: vec![false; harts], mtimecmp: vec![u64::MAX; harts], mtime: 0 }
    }

    /// Advances mtime (we tick it every cycle; the divider is the
    /// platform's choice and the guest reads the same clock).
    pub fn tick(&mut self) {
        self.mtime += 1;
    }

    /// Advances mtime by `delta` cycles in one go, as if [`Clint::tick`]
    /// had run that many times. Used by the idle-skip path: a warped-over
    /// cycle must still age the guest clock.
    pub fn advance(&mut self, delta: u64) {
        self.mtime += delta;
    }

    /// Rewinds mtime by `delta` cycles, undoing ticks that the parallel
    /// stepper executed past the platform's true quiescence point.
    pub fn rewind(&mut self, delta: u64) {
        self.mtime -= delta;
    }

    /// Guest MMIO read.
    pub fn read(&self, offset: u64) -> u64 {
        if offset >= CLINT_MTIME {
            return self.mtime;
        }
        if offset >= CLINT_MTIMECMP {
            let hart = ((offset - CLINT_MTIMECMP) / 8) as usize;
            return self.mtimecmp.get(hart).copied().unwrap_or(u64::MAX);
        }
        let hart = (offset / 4) as usize;
        u64::from(self.msip.get(hart).copied().unwrap_or(false))
    }

    /// Guest MMIO write.
    pub fn write(&mut self, offset: u64, data: u64) {
        if offset >= CLINT_MTIME {
            self.mtime = data;
        } else if offset >= CLINT_MTIMECMP {
            let hart = ((offset - CLINT_MTIMECMP) / 8) as usize;
            if let Some(c) = self.mtimecmp.get_mut(hart) {
                *c = data;
            }
        } else {
            let hart = (offset / 4) as usize;
            if let Some(m) = self.msip.get_mut(hart) {
                *m = data & 1 != 0;
            }
        }
    }

    /// Timer-interrupt wire level for `hart` (mip.MTIP, bit 7).
    pub fn timer_level(&self, hart: usize) -> bool {
        self.mtime >= self.mtimecmp[hart]
    }

    /// Software-interrupt wire level for `hart` (mip.MSIP, bit 3).
    pub fn soft_level(&self, hart: usize) -> bool {
        self.msip[hart]
    }

    /// Number of harts served.
    pub fn harts(&self) -> usize {
        self.msip.len()
    }

    /// The first cycle at or after `next` whose tick makes some hart's
    /// timer wire rise, assuming mtime keeps counting one per cycle (and
    /// has already counted the tick before `next`). Harts whose wire is
    /// already high are excluded: a high level is stable until software
    /// reprograms mtimecmp, and that write arrives as an MMIO packet which
    /// wakes the chipset anyway.
    pub fn next_timer_crossing(&self, next: Cycle) -> Option<Cycle> {
        // The tick at cycle t reads mtime = M + (t - (next - 1)), so hart
        // h first sees mtime >= cmp at t = (next - 1) + (cmp - M).
        self.mtimecmp
            .iter()
            .filter(|&&cmp| cmp > self.mtime)
            .map(|&cmp| (next - 1).saturating_add(cmp - self.mtime))
            .min()
    }
}

impl SaveState for Clint {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.msip.len());
        for m in &self.msip {
            w.bool(*m);
        }
        for c in &self.mtimecmp {
            w.u64(*c);
        }
        w.u64(self.mtime);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        if r.usize() != self.msip.len() {
            r.corrupt("CLINT hart count does not match this node's configuration");
            return;
        }
        for m in &mut self.msip {
            *m = r.bool();
        }
        for c in &mut self.mtimecmp {
            *c = r.u64();
        }
        self.mtime = r.u64();
    }
}

/// SD controller register offsets.
const SD_REG_LBA: u64 = 0x0;
const SD_REG_BUF: u64 = 0x8;
const SD_REG_START: u64 = 0x10;
const SD_REG_STATUS: u64 = 0x18;
/// Bytes per SD block.
const SD_BLOCK: u64 = 512;

/// The virtual SD controller (§3.4.2).
///
/// F1 has no SD slot, so the card is *virtual*: its contents live in the
/// top half of the node's DRAM ([`SD_DATA_BASE`]) where the host's driver
/// injects the disk image. A block read shuttles 512 bytes from the SD
/// region into the guest's buffer through the memory controller — only
/// functionality, not device timing, exactly as the paper scopes virtual
/// devices.
#[derive(Debug, Default)]
struct SdController {
    lba: u64,
    buf: u64,
    /// Bytes copied so far in the active transfer; None when idle.
    progress: Option<u64>,
    /// Value loaded from the SD region awaiting the store leg.
    loaded: Option<u64>,
    waiting: bool,
}

impl SdController {
    fn read(&self, offset: u64) -> u64 {
        match offset & 0x18 {
            SD_REG_LBA => self.lba,
            SD_REG_BUF => self.buf,
            SD_REG_STATUS => u64::from(self.progress.is_some()),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, data: u64) {
        match offset & 0x18 {
            SD_REG_LBA => self.lba = data,
            SD_REG_BUF => self.buf = data,
            SD_REG_START if data != 0 && self.progress.is_none() => {
                self.progress = Some(0);
                self.loaded = None;
                self.waiting = false;
            }
            _ => {}
        }
    }
}

impl SaveState for SdController {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.lba);
        w.u64(self.buf);
        smappic_sim::Pack::pack(&self.progress, w);
        smappic_sim::Pack::pack(&self.loaded, w);
        w.bool(self.waiting);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.lba = r.u64();
        self.buf = r.u64();
        self.progress = <Option<u64> as smappic_sim::Pack>::unpack(r);
        self.loaded = <Option<u64> as smappic_sim::Pack>::unpack(r);
        self.waiting = r.bool();
    }
}

/// The chipset of one node.
///
/// Packets leaving the mesh through tile 0's north edge land here and are
/// routed by destination and address: remote-node traffic into the
/// [`InterNodeBridge`], device accesses into the UARTs/CLINT/SD, and
/// everything else into the NoC-AXI4 memory controller. The interrupt
/// packetizer watches the CLINT and UART wires and converts level changes
/// into [`Msg::Irq`] packets (§3.3, Fig 6).
#[derive(Debug)]
pub struct Chipset {
    node: NodeId,
    tiles: usize,
    memctl: MemController,
    /// Console UART (115200 baud).
    pub uart0: Uart16550,
    /// Data UART (~1 Mbit/s, the prototype's network link).
    pub uart1: Uart16550,
    clint: Clint,
    sd: SdController,
    plic: Plic,
    bridge: InterNodeBridge,
    irq_prev: HashMap<(TileId, u16), bool>,
    /// Per-virtual-network egress toward the mesh (deadlock freedom).
    to_mesh: [Port<Packet>; 3],
    memctl_retry: Port<Packet>,
    stats: Stats,
    /// Component sleep (host-side, derived — never serialized): when
    /// `Some(w)`, ticks before cycle `w` reduce to the CLINT's mtime
    /// increment plus cheap wake probes, provided the bridge and UARTs
    /// stay quiet. Set by `sleep_check` at the end of a full tick, cleared
    /// by any external input or mutable access.
    sleep_until: Option<Cycle>,
    /// Host-side diagnostic: full ticks elided by the component sleep.
    /// Never part of architectural stats or snapshots.
    skipped_cycles: u64,
    /// Host fast-path switch: when false the chipset never arms the
    /// component sleep, reproducing the plain reference simulator's
    /// tick-everything behaviour (bit-identical results either way).
    fast_path: bool,
}

impl Chipset {
    /// Assembles a chipset.
    pub fn new(node: NodeId, tiles: usize, memctl: MemController, bridge: InterNodeBridge) -> Self {
        Self {
            node,
            tiles,
            memctl,
            uart0: Uart16550::console(),
            uart1: Uart16550::data(),
            clint: Clint::new(tiles),
            sd: SdController::default(),
            plic: Plic::new(tiles),
            bridge,
            irq_prev: HashMap::new(),
            to_mesh: std::array::from_fn(|vn| Port::elastic_with(format!("to_mesh.vn{vn}"), 8)),
            memctl_retry: Port::elastic_with("memctl_retry", 8),
            stats: Stats::new(),
            sleep_until: None,
            skipped_cycles: 0,
            fast_path: true,
        }
    }

    /// Toggles the host-side fast path (component sleep). Off = plain
    /// reference ticking. Cancels any armed sleep immediately.
    pub fn set_fast_path(&mut self, on: bool) {
        self.sleep_until = None;
        self.fast_path = on;
    }

    /// The memory controller (host backdoor goes through here).
    pub fn memctl_mut(&mut self) -> &mut MemController {
        self.sleep_until = None; // external mutation may create work
        &mut self.memctl
    }

    /// Read-only memory controller access.
    pub fn memctl(&self) -> &MemController {
        &self.memctl
    }

    /// The inter-node bridge (the FPGA pumps its AXI side). Deliberately
    /// does NOT clear the component sleep — the FPGA calls this every
    /// cycle; deliveries the sleep must notice are caught by the per-cycle
    /// [`InterNodeBridge::has_incoming`] probe instead.
    pub fn bridge_mut(&mut self) -> &mut InterNodeBridge {
        &mut self.bridge
    }

    /// The CLINT (tests drive timers directly).
    pub fn clint_mut(&mut self) -> &mut Clint {
        self.sleep_until = None; // timer reprogramming moves the wake
        &mut self.clint
    }

    /// The PLIC (tests drive sources directly).
    pub fn plic_mut(&mut self) -> &mut Plic {
        self.sleep_until = None; // source levels may change the wires
        &mut self.plic
    }

    /// The inter-node bridge's counters.
    pub fn bridge_stats(&self) -> &Stats {
        self.bridge.stats()
    }

    /// Read-only probe of the bridge's AXI side for the FPGA's quiet
    /// path; see [`InterNodeBridge::axi_quiet`].
    pub fn bridge_axi_quiet(&self, now: Cycle) -> bool {
        self.bridge.axi_quiet(now)
    }

    /// When the bridge's next shaped AXI request matures, if any; see
    /// [`InterNodeBridge::next_axi_ready`].
    pub fn bridge_next_axi_ready(&self) -> Option<Cycle> {
        self.bridge.next_axi_ready()
    }

    /// Counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Merges every port meter in the chipset (mesh egress VN queues, the
    /// memory-controller staging queue, then the controller's and bridge's
    /// own ports under `.memctl` / `.bridge`) into `m`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        for q in &self.to_mesh {
            q.meter().merge_into(prefix, m);
        }
        self.memctl_retry.meter().merge_into(prefix, m);
        self.memctl.merge_port_metrics(&format!("{prefix}.memctl"), m);
        self.bridge.merge_port_metrics(&format!("{prefix}.bridge"), m);
        self.uart0.merge_port_metrics(&format!("{prefix}.uart0"), m);
        self.uart1.merge_port_metrics(&format!("{prefix}.uart1"), m);
    }

    fn me(&self) -> Gid {
        Gid::chipset(self.node)
    }

    /// A packet arriving from the mesh edge.
    pub fn push_from_mesh(&mut self, now: Cycle, pkt: Packet) {
        self.sleep_until = None; // external input: exactly what sleep waits for
        if pkt.dst.node != self.node {
            self.bridge.send(now, pkt);
            return;
        }
        self.handle_local(now, pkt);
    }

    fn handle_local(&mut self, now: Cycle, pkt: Packet) {
        debug_assert_eq!(pkt.dst, self.me(), "chipset handles only its own Gid");
        match &pkt.msg {
            Msg::NcLoad { addr, size } => {
                let (addr, size, src) = (*addr, *size, pkt.src);
                match self.device_read(now, addr) {
                    Some(data) => {
                        let msg = Msg::NcData { addr, data };
                        self.push_to_mesh(Packet::on_canonical_vn(src, self.me(), msg));
                    }
                    None => {
                        // DRAM (incl. the SD data region): memory controller.
                        let fwd =
                            Packet::on_canonical_vn(self.me(), src, Msg::NcLoad { addr, size });
                        self.push_memctl(fwd);
                    }
                }
            }
            Msg::NcStore { addr, size, data } => {
                let (addr, size, data, src) = (*addr, *size, *data, pkt.src);
                if self.device_write(now, addr, data) {
                    let msg = Msg::NcAck { addr };
                    self.push_to_mesh(Packet::on_canonical_vn(src, self.me(), msg));
                } else {
                    let fwd =
                        Packet::on_canonical_vn(self.me(), src, Msg::NcStore { addr, size, data });
                    self.push_memctl(fwd);
                }
            }
            Msg::MemRd { .. } | Msg::MemWr { .. } => {
                self.push_memctl(pkt);
            }
            other => panic!("chipset received unexpected message {other:?}"),
        }
    }

    fn push_memctl(&mut self, pkt: Packet) {
        // Staged through an elastic queue so controller back-pressure never
        // forces the chipset to drop or reorder traffic; `tick` drains it
        // as buffer slots free up.
        self.memctl_retry.push(pkt);
    }

    /// Reads a device register; `None` when the address is DRAM.
    fn device_read(&mut self, _now: Cycle, addr: u64) -> Option<u64> {
        match addr {
            a if (UART0_BASE..UART0_BASE + 0x1000).contains(&a) => {
                Some(self.uart0.read(a - UART0_BASE))
            }
            a if (UART1_BASE..UART1_BASE + 0x1000).contains(&a) => {
                Some(self.uart1.read(a - UART1_BASE))
            }
            a if (CLINT_BASE..CLINT_BASE + 0x10000).contains(&a) => {
                Some(self.clint.read(a - CLINT_BASE))
            }
            a if (SD_CTL_BASE..SD_CTL_BASE + 0x1000).contains(&a) => {
                Some(self.sd.read(a - SD_CTL_BASE))
            }
            a if (PLIC_BASE..PLIC_BASE + 0x40_0000).contains(&a) => {
                Some(self.plic.read(a - PLIC_BASE))
            }
            _ => None,
        }
    }

    /// Writes a device register; false when the address is DRAM.
    fn device_write(&mut self, now: Cycle, addr: u64, data: u64) -> bool {
        match addr {
            a if (UART0_BASE..UART0_BASE + 0x1000).contains(&a) => {
                self.uart0.write(now, a - UART0_BASE, data);
                true
            }
            a if (UART1_BASE..UART1_BASE + 0x1000).contains(&a) => {
                self.uart1.write(now, a - UART1_BASE, data);
                true
            }
            a if (CLINT_BASE..CLINT_BASE + 0x10000).contains(&a) => {
                self.clint.write(a - CLINT_BASE, data);
                true
            }
            a if (SD_CTL_BASE..SD_CTL_BASE + 0x1000).contains(&a) => {
                self.sd.write(a - SD_CTL_BASE, data);
                true
            }
            a if (PLIC_BASE..PLIC_BASE + 0x40_0000).contains(&a) => {
                self.plic.write(a - PLIC_BASE, data);
                true
            }
            _ => false,
        }
    }

    fn push_to_mesh(&mut self, pkt: Packet) {
        self.to_mesh[pkt.vn.index()].push(pkt);
    }

    /// Debug: depths of the per-VN mesh egress queues and the memory
    /// controller staging queue.
    pub fn queue_depths(&self) -> ([usize; 3], usize) {
        (
            [self.to_mesh[0].len(), self.to_mesh[1].len(), self.to_mesh[2].len()],
            self.memctl_retry.len(),
        )
    }

    /// Next packet to inject into the mesh edge (any virtual network).
    pub fn pop_to_mesh(&mut self) -> Option<Packet> {
        self.to_mesh.iter_mut().find_map(Port::pop)
    }

    /// Next packet to inject on one virtual network.
    pub fn pop_to_mesh_vn(&mut self, vn: usize) -> Option<Packet> {
        self.to_mesh[vn].pop()
    }

    /// Returns a packet the mesh refused this cycle.
    pub fn unpop_to_mesh(&mut self, pkt: Packet) {
        self.to_mesh[pkt.vn.index()].push_front(pkt);
    }

    /// Advances the chipset one cycle.
    ///
    /// When the component sleep is armed (`sleep_until`), a tick before
    /// the wake cycle reduces to the CLINT's mtime increment — the only
    /// architectural effect a quiescent chipset tick has — guarded by
    /// exact per-cycle probes of the two channels that can receive work
    /// without going through [`Chipset::push_from_mesh`]: bridge
    /// deliveries (the FPGA pumps the AXI side independently) and UART
    /// wire/host-input events. Everything else the full tick does is a
    /// provable no-op while the sleep predicate holds, and the interrupt
    /// wires are stable by construction (timer crossings are folded into
    /// the wake cycle; MSIP/PLIC/mtimecmp changes arrive as MMIO packets
    /// which clear the sleep).
    pub fn tick(&mut self, now: Cycle) {
        if let Some(wake) = self.sleep_until {
            if now < wake
                && !self.bridge.has_incoming()
                && self.uart0.tick_is_noop(now)
                && self.uart1.tick_is_noop(now)
            {
                self.clint.advance(1);
                self.skipped_cycles += 1;
                return;
            }
            self.sleep_until = None;
        }
        self.uart0.tick(now);
        self.uart1.tick(now);
        self.clint.tick();
        // Drain staged memory traffic into the controller as space frees.
        while self.memctl.can_push() {
            let Some(pkt) = self.memctl_retry.pop() else { break };
            self.memctl.push_noc(pkt).expect("can_push checked");
        }
        self.memctl.tick(now);
        self.sd_tick(now);

        // Memory controller responses: back into the mesh, except the SD
        // controller's own transfers (addressed to the chipset).
        while let Some(pkt) = self.memctl.pop_noc() {
            if pkt.dst == self.me() {
                self.sd_complete(pkt);
            } else {
                self.push_to_mesh(pkt);
            }
        }

        // Bridge deliveries from remote nodes.
        while let Some(pkt) = self.bridge.recv() {
            if pkt.dst.node == self.node && pkt.dst.elem == smappic_noc::Elem::Chipset {
                self.handle_local(now, pkt);
            } else {
                self.push_to_mesh(pkt);
            }
        }

        // Interrupt packetizer: diff wire levels, emit packets on change.
        self.packetize_irqs();

        self.sleep_until = if self.fast_path { self.sleep_check(now + 1) } else { None };
    }

    /// Decides whether the next ticks can be elided, and until when.
    ///
    /// Sleep requires every queue the tick drains to be empty and every
    /// state machine it advances to be at rest; the wake cycle is the
    /// earliest scheduled event — a UART wire byte maturing or a CLINT
    /// timer wire rising. `None` means the chipset is busy and must tick.
    fn sleep_check(&self, next: Cycle) -> Option<Cycle> {
        if !self.to_mesh.iter().all(Port::is_empty)
            || !self.memctl_retry.is_empty()
            || !self.memctl.is_idle()
            || self.sd.progress.is_some()
            || self.bridge.has_incoming()
        {
            return None;
        }
        let mut wake = Cycle::MAX;
        if let Some(t) = self.uart0.next_event_after(next) {
            wake = wake.min(t);
        }
        if let Some(t) = self.uart1.next_event_after(next) {
            wake = wake.min(t);
        }
        if let Some(t) = self.clint.next_timer_crossing(next) {
            wake = wake.min(t);
        }
        (wake > next).then_some(wake)
    }

    /// Host-side diagnostic: how many full ticks the component sleep has
    /// elided so far. Not architectural — excluded from stats, metrics,
    /// and snapshots.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// True when the tick at `now` is guaranteed to take the skip path:
    /// sleep armed, not yet due, and the per-cycle wake probes (bridge
    /// deliveries, UART wire/host events) all quiet. While this holds the
    /// chipset's mesh-egress queues are empty by the sleep predicate, so
    /// the node may also skip the pumping around the tick.
    pub fn tick_is_noop(&self, now: Cycle) -> bool {
        self.sleep_until.is_some_and(|w| now < w)
            && !self.bridge.has_incoming()
            && self.uart0.tick_is_noop(now)
            && self.uart1.tick_is_noop(now)
    }

    /// The first cycle after `now` at which a tick may do real work, when
    /// every tick until then is provably a skip; `None` when the chipset
    /// must tick at `now`. Unlike `sleep_until` alone, the UART event
    /// horizon is re-derived here: host console input pushed after the
    /// sleep was armed does not clear it (the per-cycle probes catch
    /// that), so a multi-cycle warp must re-ask the UARTs directly.
    pub fn quiet_bound(&self, now: Cycle) -> Option<Cycle> {
        if !self.tick_is_noop(now) {
            return None;
        }
        let mut bound = self.sleep_until.expect("tick_is_noop checked");
        if let Some(t) = self.uart0.next_event_after(now) {
            bound = bound.min(t);
        }
        if let Some(t) = self.uart1.next_event_after(now) {
            bound = bound.min(t);
        }
        (bound > now).then_some(bound)
    }

    /// Applies `delta` skipped ticks in one step: exactly what `delta`
    /// per-cycle skip paths would have done (the mtime increments plus the
    /// host skip counter). Caller guarantees [`Chipset::quiet_bound`]
    /// covers the whole window.
    pub fn warp_quiet(&mut self, delta: u64) {
        debug_assert!(self.sleep_until.is_some(), "warp_quiet requires an armed sleep");
        self.clint.advance(delta);
        self.skipped_cycles += delta;
    }

    /// The SD state machine: alternating 8-byte load (SD region) and store
    /// (guest buffer) legs through the memory controller.
    fn sd_tick(&mut self, _now: Cycle) {
        let Some(done) = self.sd.progress else { return };
        if self.sd.waiting {
            return; // a leg is in flight
        }
        if done >= SD_BLOCK {
            self.sd.progress = None;
            self.stats.incr("sd.blocks_read");
            return;
        }
        let me = self.me();
        match self.sd.loaded.take() {
            None => {
                let addr = SD_DATA_BASE + self.sd.lba * SD_BLOCK + done;
                let req = Packet::on_canonical_vn(me, me, Msg::NcLoad { addr, size: 8 });
                self.sd.waiting = true;
                self.push_memctl(req);
            }
            Some(v) => {
                let addr = self.sd.buf + done;
                let req = Packet::on_canonical_vn(me, me, Msg::NcStore { addr, size: 8, data: v });
                self.sd.waiting = true;
                self.push_memctl(req);
            }
        }
    }

    fn sd_complete(&mut self, pkt: Packet) {
        match pkt.msg {
            Msg::NcData { data, .. } => {
                self.sd.loaded = Some(data);
                self.sd.waiting = false;
            }
            Msg::NcAck { .. } => {
                self.sd.waiting = false;
                if let Some(p) = self.sd.progress.as_mut() {
                    *p += 8;
                }
            }
            other => panic!("SD controller got unexpected completion {other:?}"),
        }
    }

    fn packetize_irqs(&mut self) {
        // Device wires feed the PLIC; the PLIC's per-hart outputs and the
        // CLINT's wires are what the packetizer watches.
        self.plic.set_source_level(PLIC_SRC_UART0, self.uart0.rx_irq_level());
        self.plic.set_source_level(PLIC_SRC_UART1, self.uart1.rx_irq_level());
        let me = self.me();
        for hart in 0..self.tiles {
            let tile = hart as TileId;
            let wires = [
                (7u16, self.clint.timer_level(hart)),
                (3u16, self.clint.soft_level(hart)),
                (11u16, self.plic.ext_level(hart)),
            ];
            for (line_no, level) in wires {
                let prev = self.irq_prev.get(&(tile, line_no)).copied().unwrap_or(false);
                if prev != level {
                    self.irq_prev.insert((tile, line_no), level);
                    let msg = Msg::Irq { line_no, level };
                    self.push_to_mesh(Packet::on_canonical_vn(Gid::tile(self.node, tile), me, msg));
                    self.stats.incr("irq.packets");
                }
            }
        }
    }

    /// Applies `delta` cycles' worth of pure-clock aging without ticking:
    /// the idle-skip path calls this for every warped-over cycle so the
    /// guest-visible mtime still advances one-per-cycle.
    pub fn advance_idle(&mut self, delta: u64) {
        self.clint.advance(delta);
    }

    /// Undoes `delta` ticks' worth of clock aging; the parallel stepper
    /// uses it to roll the guest clock back to the true quiescence cycle
    /// after a worker over-ran it inside an epoch.
    pub fn rewind_idle(&mut self, delta: u64) {
        self.clint.rewind(delta);
    }

    /// The next cycle after `now` at which ticking an otherwise-idle
    /// chipset would do observable work (a UART wire event). The CLINT is
    /// excluded: its per-cycle mtime increment is reproduced by
    /// [`Chipset::advance_idle`], and a timer interrupt can only matter to
    /// an engine that is not done — in which case the node is not idle and
    /// no warp happens.
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        match (self.uart0.next_event_after(now), self.uart1.next_event_after(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when the chipset has no work in flight (SD idle, queues empty,
    /// memory controller drained).
    pub fn is_idle(&self) -> bool {
        self.to_mesh.iter().all(Port::is_empty)
            && self.memctl_retry.is_empty()
            && self.memctl.is_idle()
            && self.sd.progress.is_none()
            && self.bridge.is_idle()
    }
}

impl SaveState for Chipset {
    fn save(&self, w: &mut SnapWriter) {
        w.scoped("memctl", |w| self.memctl.save(w));
        w.scoped("uart0", |w| self.uart0.save(w));
        w.scoped("uart1", |w| self.uart1.save(w));
        w.scoped("clint", |w| self.clint.save(w));
        w.scoped("sd", |w| self.sd.save(w));
        w.scoped("plic", |w| self.plic.save(w));
        w.scoped("bridge", |w| self.bridge.save(w));
        // Packetizer edge-detector state, in sorted key order.
        let mut keys: Vec<(TileId, u16)> = self.irq_prev.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u16(k.0);
            w.u16(k.1);
            w.bool(self.irq_prev[&k]);
        }
        for q in &self.to_mesh {
            q.save(w);
        }
        self.memctl_retry.save(w);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.sleep_until = None; // derived: rebuilt by the next full tick
        r.scoped("memctl", |r| self.memctl.restore(r));
        r.scoped("uart0", |r| self.uart0.restore(r));
        r.scoped("uart1", |r| self.uart1.restore(r));
        r.scoped("clint", |r| self.clint.restore(r));
        r.scoped("sd", |r| self.sd.restore(r));
        r.scoped("plic", |r| self.plic.restore(r));
        r.scoped("bridge", |r| self.bridge.restore(r));
        self.irq_prev.clear();
        for _ in 0..r.usize() {
            if !r.ok() {
                break;
            }
            let tile = r.u16();
            let line = r.u16();
            let level = r.bool();
            self.irq_prev.insert((tile, line), level);
        }
        for q in &mut self.to_mesh {
            q.restore(r);
        }
        self.memctl_retry.restore(r);
        self.stats.restore(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smappic_mem::{Dram, MemControllerConfig};

    fn chipset(tiles: usize) -> Chipset {
        let node = NodeId(0);
        let memctl =
            MemController::new(MemControllerConfig::new(Gid::chipset(node)), Dram::default());
        let bridge = InterNodeBridge::new(node, 0, 64);
        Chipset::new(node, tiles, memctl, bridge)
    }

    fn nc_store(addr: u64, data: u64) -> Packet {
        Packet::on_canonical_vn(
            Gid::chipset(NodeId(0)),
            Gid::tile(NodeId(0), 0),
            Msg::NcStore { addr, size: 4, data },
        )
    }

    fn nc_load(addr: u64) -> Packet {
        Packet::on_canonical_vn(
            Gid::chipset(NodeId(0)),
            Gid::tile(NodeId(0), 0),
            Msg::NcLoad { addr, size: 4 },
        )
    }

    #[test]
    fn uart_write_reaches_host_console() {
        let mut c = chipset(2);
        c.push_from_mesh(0, nc_store(UART0_BASE, u64::from(b'A')));
        let mut out = Vec::new();
        for now in 0..20_000 {
            c.tick(now);
            out.extend(c.uart0.host_mut().take_output());
        }
        assert_eq!(out, b"A");
        // The guest got its ack.
        let acked =
            std::iter::from_fn(|| c.pop_to_mesh()).any(|p| matches!(p.msg, Msg::NcAck { .. }));
        assert!(acked);
    }

    #[test]
    fn clint_timer_interrupt_is_packetized() {
        let mut c = chipset(2);
        // Program hart 1's mtimecmp to fire almost immediately.
        c.push_from_mesh(0, nc_store(CLINT_BASE + CLINT_MTIMECMP + 8, 5));
        let mut irqs = Vec::new();
        for now in 0..100 {
            c.tick(now);
            while let Some(p) = c.pop_to_mesh() {
                if let Msg::Irq { line_no, level } = p.msg {
                    irqs.push((p.dst, line_no, level));
                }
            }
        }
        assert!(
            irqs.contains(&(Gid::tile(NodeId(0), 1), 7, true)),
            "timer irq packet for tile 1 missing: {irqs:?}"
        );
    }

    #[test]
    fn msip_write_sends_ipi_packet() {
        let mut c = chipset(4);
        c.push_from_mesh(0, nc_store(CLINT_BASE + 4 * 3, 1));
        let mut got = false;
        for now in 0..100 {
            c.tick(now);
            while let Some(p) = c.pop_to_mesh() {
                if matches!(p.msg, Msg::Irq { line_no: 3, level: true }) {
                    assert_eq!(p.dst, Gid::tile(NodeId(0), 3));
                    got = true;
                }
            }
        }
        assert!(got, "IPI packet must be sent");
    }

    #[test]
    fn sd_block_read_copies_from_image_to_buffer() {
        let mut c = chipset(1);
        // Host injects a disk image: block 3 holds a pattern.
        let img: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        c.memctl_mut().dram_mut().write_bytes(SD_DATA_BASE + 3 * SD_BLOCK, &img);
        // Guest programs a read of LBA 3 into buffer 0x9000_0000.
        c.push_from_mesh(0, nc_store(SD_CTL_BASE + SD_REG_LBA, 3));
        c.push_from_mesh(0, nc_store(SD_CTL_BASE + SD_REG_BUF, 0x9000_0000));
        c.push_from_mesh(0, nc_store(SD_CTL_BASE + SD_REG_START, 1));
        for now in 0..200_000 {
            c.tick(now);
            while c.pop_to_mesh().is_some() {}
            if c.stats().get("sd.blocks_read") == 1 {
                break;
            }
        }
        assert_eq!(c.stats().get("sd.blocks_read"), 1, "transfer must finish");
        assert_eq!(c.memctl().dram().read_bytes(0x9000_0000, 512), img);
        // Status reads back idle.
        c.push_from_mesh(0, nc_load(SD_CTL_BASE + SD_REG_STATUS));
        c.tick(999_999);
        let status = std::iter::from_fn(|| c.pop_to_mesh()).find_map(|p| match p.msg {
            Msg::NcData { data, .. } => Some(data),
            _ => None,
        });
        assert_eq!(status, Some(0));
    }

    #[test]
    fn remote_traffic_goes_to_the_bridge() {
        let mut c = chipset(1);
        let remote = Packet::on_canonical_vn(
            Gid::tile(NodeId(2), 0),
            Gid::tile(NodeId(0), 0),
            Msg::ReqS { line: 0x40 },
        );
        c.push_from_mesh(0, remote);
        let mut found = false;
        for now in 0..50 {
            c.tick(now);
            if let Some(req) = c.bridge_mut().axi_pop_req(now) {
                assert_eq!(crate::bridge::addr_dst(req.addr()), NodeId(2));
                found = true;
                break;
            }
        }
        assert!(found, "bridge must emit the encapsulated AXI write");
    }
}
