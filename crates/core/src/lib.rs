//! # smappic-core — the SMAPPIC platform
//!
//! The paper's primary contribution: a scalable multi-FPGA prototype
//! platform. A prototype is described in **AxBxC** notation — A FPGAs,
//! B nodes per FPGA, C tiles per node (Fig 1) — and assembled from the
//! substrate crates:
//!
//! - each [`Node`] is a BYOC instance: a tile mesh (`smappic-noc`,
//!   `smappic-tile`, `smappic-coherence`) plus a chipset with the NoC-AXI4
//!   memory controller (`smappic-mem`), two UART16550s tunneled over
//!   AXI-Lite (§3.4.1), a virtual SD controller (§3.4.2), a CLINT with the
//!   interrupt packetizer (§3.3), and the inter-node bridge (§3.1, Fig 4),
//! - each [`Fpga`] hosts up to four nodes (one DDR4 controller each — the
//!   F1 limit), an AXI crossbar binding co-located nodes, and the AWS Hard
//!   Shell,
//! - the [`Platform`] connects up to four FPGAs with PCIe links (1250 ns
//!   round trip) and models the host: console access, program loading,
//!   disk-image injection, and run control,
//! - [`resources`] is the Table 4 synthesis model (LUT utilization and
//!   achievable frequency per configuration).
//!
//! ```no_run
//! use smappic_core::{Config, Platform};
//!
//! // A 1x1x2 prototype (the paper's GNG case-study shape).
//! let mut platform = Platform::new(Config::new(1, 1, 2));
//! platform.run(1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod bridge;
mod chipset;
mod codec;
mod config;
mod fpga;
mod node;
mod platform;
mod plic;
pub mod resources;
mod uart;
mod watchdog;

pub use bisect::{bisect_first_divergence, BisectReport, Stepper};
pub use bridge::{addr_dst, addr_src, bridge_addr, InterNodeBridge, NODE_WINDOW};
pub use chipset::{Chipset, Clint};
pub use codec::{decode_packet, encode_packet};
pub use config::{
    Config, FaultSpec, SystemParams, Topology, CLINT_BASE, DRAM_BASE, GNG_MMIO_BASE,
    MAPLE_MMIO_BASE, PLIC_BASE, SD_CTL_BASE, SD_DATA_BASE, UART0_BASE, UART1_BASE,
};
pub use fpga::Fpga;
pub use node::Node;
pub use platform::{HostPerf, Platform};
pub use plic::{Plic, PLIC_SRC_UART0, PLIC_SRC_UART1};
pub use uart::{HostSerial, Uart16550};
pub use watchdog::{FaultReport, Watchdog, WatchdogConfig};
