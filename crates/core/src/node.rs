//! One node: a BYOC instance — tiles, mesh, and chipset.

use smappic_coherence::{Bpc, BpcConfig, Geometry, Homing, LlcConfig, LlcSlice};
use smappic_mem::{Dram, DramBacking, DramConfig, MemController, MemControllerConfig};
use smappic_noc::{Gid, Mesh, MeshConfig, NodeId, TileId};
use smappic_sim::{Cycle, MetricsRegistry, SaveState, SnapReader, SnapWriter};
use smappic_tile::{Engine, IdleEngine, Tile};

use crate::bridge::InterNodeBridge;
use crate::chipset::Chipset;
use crate::config::Config;

/// One node of the prototype (one chip/die of the target system).
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    mesh: Mesh,
    tiles: Vec<Tile>,
    chipset: Chipset,
}

impl Node {
    /// Builds a node for `cfg` with idle engines in every tile; the
    /// platform installs cores/accelerators afterwards.
    pub fn new(cfg: &Config, id: NodeId, homing: Homing) -> Self {
        let tiles_n = cfg.tiles_per_node;
        let p = &cfg.params;
        let mesh = Mesh::new(MeshConfig::new(id, tiles_n).with_hop_latency(p.hop_latency));
        let tiles = (0..tiles_n as TileId)
            .map(|t| {
                let gid = Gid::tile(id, t);
                let mut bpc_cfg = BpcConfig::new(gid, homing);
                bpc_cfg.geometry = Geometry::new(p.bpc_bytes, p.bpc_ways);
                bpc_cfg.mshrs = p.bpc_mshrs;
                bpc_cfg.hit_latency = p.bpc_hit_latency;
                let mut llc_cfg = LlcConfig::new(gid);
                llc_cfg.geometry = Geometry::new(p.llc_slice_bytes, p.llc_ways);
                llc_cfg.latency = p.llc_latency;
                Tile::new(gid, Bpc::new(bpc_cfg), LlcSlice::new(llc_cfg), Box::new(IdleEngine))
            })
            .collect();
        // Partitioned homing places node g's window at
        // DRAM_BASE + g * bytes_per_node, so rack-scale node counts push
        // the top of guest DRAM past the classic 16 GiB — size the
        // capacity to cover every homed window or far accesses would trip
        // the out-of-bounds fault counter.
        let homed_top = crate::config::DRAM_BASE + cfg.total_nodes() as u64 * p.bytes_per_node;
        let backing = if p.dram_dense {
            DramBacking::Dense {
                base: crate::config::DRAM_BASE + u64::from(id.0) * p.bytes_per_node,
                bytes: p.bytes_per_node,
            }
        } else {
            DramBacking::Sparse
        };
        let dram = Dram::new(DramConfig {
            latency: p.dram_latency,
            // DDR4-2133 behind a 100 MHz fabric: ~17 GB/s ≈ 170 B/cycle;
            // 128 keeps the channel from becoming a false bottleneck when
            // many threads share one node (Fig 9's single-node case).
            bytes_per_cycle: 128,
            capacity: (16u64 << 30).max(homed_top),
            backing,
        });
        let memctl = MemController::new(MemControllerConfig::new(Gid::chipset(id)), dram);
        let bridge = InterNodeBridge::new(id, p.bridge_extra_latency, p.bridge_bytes_per_cycle);
        let chipset = Chipset::new(id, tiles_n, memctl, bridge);
        Self { id, mesh, tiles, chipset }
    }

    /// The node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Installs a compute engine into tile `t`.
    pub fn set_engine(&mut self, t: TileId, engine: Box<dyn Engine>) {
        self.tiles[t as usize].set_engine(engine);
    }

    /// Direct tile access.
    pub fn tile(&self, t: TileId) -> &Tile {
        &self.tiles[t as usize]
    }

    /// Mutable tile access (engine installation, result inspection).
    pub fn tile_mut(&mut self, t: TileId) -> &mut Tile {
        &mut self.tiles[t as usize]
    }

    /// The chipset.
    pub fn chipset(&self) -> &Chipset {
        &self.chipset
    }

    /// One mesh counter (diagnostics).
    pub fn mesh_stats(&self, key: &str) -> u64 {
        self.mesh.stats().get(key)
    }

    /// Merges all mesh counters into platform-wide stats.
    pub fn merge_mesh_stats_into(&self, out: &mut smappic_sim::Stats) {
        self.mesh.merge_stats_into(out);
    }

    /// The mesh's hop-count histogram (one sample per delivered packet).
    pub fn mesh_hops(&self) -> &smappic_sim::Histogram {
        self.mesh.hops()
    }

    /// Mutable mesh access (fault-injection wiring).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// Merges every port meter in the node — mesh routers, chipset
    /// devices, and each tile's caches — into `m` under
    /// `{prefix}.noc`, `{prefix}.chipset`, and `{prefix}.tile{t}`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        self.mesh.merge_port_metrics(&format!("{prefix}.noc"), m);
        self.chipset.merge_port_metrics(&format!("{prefix}.chipset"), m);
        for (t, tile) in self.tiles.iter().enumerate() {
            tile.merge_port_metrics(&format!("{prefix}.tile{t}"), m);
        }
    }

    /// Mutable chipset access (UART consoles, memory backdoor, bridge).
    pub fn chipset_mut(&mut self) -> &mut Chipset {
        &mut self.chipset
    }

    /// Toggles the node's entire host-side fast path: decoded-block
    /// dispatch in every engine, per-component sleep in tiles and the
    /// chipset, and the mesh's empty-tick elision. Off reproduces the
    /// plain reference simulator, bit-identically.
    pub fn set_fast_path(&mut self, on: bool) {
        for t in &mut self.tiles {
            t.set_fast_path(on);
        }
        self.chipset.set_fast_path(on);
        self.mesh.set_fast_path(on);
    }

    /// Host-side scheduler diagnostics: component ticks elided across the
    /// node's tiles and chipset, and decoded-block cache totals.
    pub fn host_perf(&self) -> (u64, u64, u64, u64) {
        let mut skipped = 0;
        let mut hits = 0;
        let mut misses = 0;
        for t in &self.tiles {
            skipped += t.skipped_cycles();
            if let Some((h, m)) = t.engine().block_cache_stats() {
                hits += h;
                misses += m;
            }
        }
        (skipped, self.chipset.skipped_cycles(), hits, misses)
    }

    /// The first cycle after `now` at which ticking this node may do real
    /// work, when every tick until then is provably the quiet path (all
    /// tiles sleeping, chipset skip guaranteed, mesh drained); `None` when
    /// the node must tick at `now`. `Cycle::MAX` means only external input
    /// (bridge AXI traffic) can create work.
    pub fn quiet_bound(&self, now: Cycle) -> Option<Cycle> {
        if !self.mesh.is_drained() {
            return None;
        }
        let mut bound = self.chipset.quiet_bound(now)?;
        for t in &self.tiles {
            let wake = t.wake_at()?;
            if wake <= now {
                return None;
            }
            bound = bound.min(wake);
        }
        Some(bound)
    }

    /// Applies the `delta` quiet-path ticks of `[now, now + delta)` in one
    /// step: exactly what that many per-cycle quiet paths would have done.
    /// Caller guarantees [`Node::quiet_bound`] covers the whole window.
    pub fn warp_quiet(&mut self, now: Cycle, delta: u64) {
        for t in &mut self.tiles {
            t.warp_quiet(now, delta);
        }
        self.chipset.warp_quiet(delta);
    }

    /// All tiles' engines finished and every queue in the node drained.
    pub fn is_idle(&self) -> bool {
        self.tiles.iter().all(Tile::is_idle) && self.mesh.is_idle() && self.chipset.is_idle()
    }

    /// Ages the guest clock across `delta` warped-over idle cycles.
    pub fn advance_idle(&mut self, delta: u64) {
        self.chipset.advance_idle(delta);
    }

    /// Rolls the guest clock back over `delta` over-run idle cycles.
    pub fn rewind_idle(&mut self, delta: u64) {
        self.chipset.rewind_idle(delta);
    }

    /// The next cycle after `now` at which ticking this (idle) node would
    /// do observable work; see [`Chipset::next_event_after`].
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        self.chipset.next_event_after(now)
    }

    /// Advances the node one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Quiet path: when every tile and the chipset are provably taking
        // their skip paths and the mesh holds no packet, all the pumping
        // below moves nothing — the sleep predicates guarantee every queue
        // it drains is empty. Reduce the cycle to the skip ticks themselves
        // (engine aging, mtime increment). Any wake condition — external
        // push, probe firing, sleep expiry — falls through to the full
        // path, so behaviour is bit-identical.
        if self.mesh.is_drained()
            && self.chipset.tick_is_noop(now)
            && self.tiles.iter().all(|t| t.is_sleeping(now))
        {
            for t in &mut self.tiles {
                t.tick(now);
            }
            self.chipset.tick(now);
            return;
        }

        for t in &mut self.tiles {
            t.tick(now);
        }
        self.mesh.tick(now);

        // Tiles ↔ mesh. Injection is pumped per virtual network so a
        // congested request network never blocks response traffic
        // (deadlock freedom).
        for (i, tile) in self.tiles.iter_mut().enumerate() {
            let ti = i as TileId;
            while let Some(p) = self.mesh.eject(ti) {
                tile.push_noc(now, p);
            }
            for vn in 0..3 {
                while let Some(p) = tile.pop_noc_vn(vn) {
                    match self.mesh.inject(ti, p) {
                        Ok(()) => {}
                        Err(p) => {
                            tile.unpop_noc(p);
                            break;
                        }
                    }
                }
            }
        }

        // Edge ↔ chipset, also per virtual network.
        while let Some(p) = self.mesh.eject_edge() {
            self.chipset.push_from_mesh(now, p);
        }
        self.chipset.tick(now);
        for vn in 0..3 {
            while let Some(p) = self.chipset.pop_to_mesh_vn(vn) {
                match self.mesh.inject_edge(p) {
                    Ok(()) => {}
                    Err(p) => {
                        self.chipset.unpop_to_mesh(p);
                        break;
                    }
                }
            }
        }
    }
}

impl SaveState for Node {
    fn save(&self, w: &mut SnapWriter) {
        w.scoped("mesh", |w| self.mesh.save(w));
        for (t, tile) in self.tiles.iter().enumerate() {
            w.scoped(&format!("tile{t}"), |w| tile.save(w));
        }
        w.scoped("chipset", |w| self.chipset.save(w));
    }

    fn restore(&mut self, r: &mut SnapReader) {
        r.scoped("mesh", |r| self.mesh.restore(r));
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            r.scoped(&format!("tile{t}"), |r| tile.restore(r));
        }
        r.scoped("chipset", |r| self.chipset.restore(r));
    }
}
