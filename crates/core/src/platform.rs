//! The full prototype: FPGAs, PCIe fabric, and the host machine.
//!
//! # Execution model
//!
//! The platform offers two equivalent steppers:
//!
//! - **Serial** ([`Platform::step`]/[`Platform::run`]): every cycle ticks
//!   all FPGAs in index order, then pumps the PCIe fabric. With the host
//!   fast path on (the default), [`Platform::run`] dispatches multi-FPGA
//!   prototypes to a *serial epoch driver* that follows the exact epoch
//!   schedule of the parallel stepper but advances the FPGAs one after
//!   another on the calling thread — within an epoch no FPGA can observe
//!   a peer, so each may warp its own quiet stretches independently
//!   instead of being pinned by the busiest FPGA in a cycle-interleaved
//!   loop. [`Platform::set_fast_path`]`(false)` restores the plain
//!   cycle-by-cycle reference loop, bit-identically.
//! - **Epoch-parallel** ([`Platform::run_parallel`]/[`Platform::step_epoch`]):
//!   a conservative parallel-discrete-event scheme that exploits the PCIe
//!   one-way latency `L` as *lookahead*. Anything an FPGA sends at cycle
//!   `t` cannot reach a peer before `t + L`, so all FPGAs can be advanced
//!   `L` cycles completely independently on worker threads; cross-FPGA
//!   items are buffered with their send timestamps and exchanged at the
//!   epoch barrier in a fixed `(from, to)` order. The result is
//!   bit-identical to the serial stepper — same cycle count, same stats,
//!   same console output.
//!
//! # Topologies and grouped barriers
//!
//! [`Topology::PcieStar`] joins every FPGA pair with a PCIe link — the
//! paper's single-instance shape, capped by how many endpoints one host
//! bridge fans out to. [`Topology::Ethernet`] attaches every FPGA to a
//! switched-Ethernet fabric instead, and [`Topology::Hybrid`] mixes the
//! two: PCIe inside each instance-sized group, Ethernet across groups.
//! Network-attached platforms replace the flat epoch barrier with a
//! *grouped* one ([`Platform::grouped_lookaheads`]): members of a switch
//! group rendezvous every NIC-link latency, while groups synchronize with
//! each other only at spine-latency boundaries — global coordination cost
//! scales with the number of groups, not the number of FPGAs. Both the
//! serial and the parallel grouped drivers are bit-identical to the
//! per-cycle reference, exactly as for the PCIe-star steppers.
//!
//! Idle stretches are warped over: when every FPGA is quiescent, the
//! platform jumps straight to the next scheduled event (PCIe delivery,
//! Ethernet fabric event, or UART wire edge), aging the guest-visible
//! CLINT clock by the skipped cycle count so software still observes one
//! mtime tick per cycle.

use std::sync::mpsc;

use smappic_axi::{AxiReq, Flight, HardShell, PcieItem, PcieLink, ShellRoute};
use smappic_coherence::Homing;
use smappic_isa::Image;
use smappic_noc::{line_of, Gid, NodeId, TileId};
use smappic_sim::{
    fault_streams, fnv1a, Cycle, EthFabric, EthSwitch, FaultInjector, Histogram, MetricsRegistry,
    SaveState, SnapDelta, SnapError, SnapReader, SnapSink, SnapWriter, Snapshot, Stats,
    StreamSource, TraceBuf, TraceEventKind, TraceSink,
};
use smappic_tile::{AddrMap, Engine};

use crate::config::{Config, Topology, CLINT_BASE, PLIC_BASE, SD_CTL_BASE, UART0_BASE, UART1_BASE};
use crate::fpga::Fpga;
use crate::node::Node;
use crate::uart::HostSerial;
use crate::watchdog::{FaultReport, Watchdog, WatchdogConfig};

/// Host-side fast-path diagnostics aggregated by [`Platform::host_perf`]:
/// how much work the decoded-block ISS and the per-component scheduler
/// elided. Purely observational — never architectural state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HostPerf {
    /// Tile ticks elided by the per-component scheduler.
    pub skipped_tile_cycles: u64,
    /// Chipset ticks elided by the per-component scheduler.
    pub skipped_chipset_cycles: u64,
    /// Decoded basic-block cache hits across all cores.
    pub block_cache_hits: u64,
    /// Decoded basic-block cache misses (fresh decodes) across all cores.
    pub block_cache_misses: u64,
}

impl HostPerf {
    /// Block-cache hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn block_cache_hit_rate(&self) -> f64 {
        let total = self.block_cache_hits + self.block_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.block_cache_hits as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for HostPerf {
    /// Accumulates counters across platform incarnations. The service
    /// layer rebuilds a `Platform` on every resume (host state is derived,
    /// never serialized), so a migrated job sums the per-segment
    /// diagnostics instead of losing them at each preemption.
    fn add_assign(&mut self, rhs: Self) {
        self.skipped_tile_cycles += rhs.skipped_tile_cycles;
        self.skipped_chipset_cycles += rhs.skipped_chipset_cycles;
        self.block_cache_hits += rhs.block_cache_hits;
        self.block_cache_misses += rhs.block_cache_misses;
    }
}

/// The assembled SMAPPIC prototype plus its host machine.
///
/// The host side models what the paper's host programs do: create virtual
/// serial devices for the UART tunnels, load programs and disk images into
/// FPGA DRAM over PCIe, and start/stop runs. The loader uses a functional
/// backdoor (it does not consume simulated cycles), mirroring how the real
/// flow loads memory before releasing reset.
#[derive(Debug)]
pub struct Platform {
    cfg: Config,
    homing: Homing,
    fpgas: Vec<Fpga>,
    /// links[i][j] for i < j — the pairs [`Topology::pcie_linked`] joins
    /// (every pair under [`Topology::PcieStar`], intra-group pairs under
    /// [`Topology::Hybrid`], none under [`Topology::Ethernet`]).
    links: Vec<((usize, usize), PcieLink)>,
    /// `(from, to) → index into links`, row-major over `fpgas × fpgas`,
    /// `usize::MAX` on the diagonal and on unlinked pairs. Keeps the
    /// per-item send path O(1) instead of scanning the link list.
    link_idx: Vec<usize>,
    /// The switched-Ethernet fabric, for network-attached topologies. Every
    /// FPGA not reachable over a PCIe link exchanges traffic through it.
    eth: Option<EthFabric<PcieItem>>,
    now: Cycle,
    /// Epoch widths chosen by the parallel stepper (host-side metric; not
    /// part of the architectural state — see [`MetricsRegistry::architectural`]).
    host_epochs: Histogram,
    /// Host-side trace lane: epoch boundaries.
    host_trace: TraceBuf,
    /// Epochs executed so far (trace-event index).
    epoch_count: u64,
    /// Host-side switch mirroring [`Platform::set_fast_path`]: the serial
    /// [`Platform::run`] epoch-steps multi-FPGA prototypes only while the
    /// fast path is on, so reference mode stays strictly per-cycle.
    fast_path: bool,
}

/// One epoch's worth of work handed to an FPGA worker thread.
struct EpochJob {
    /// First cycle of the epoch.
    start: Cycle,
    /// Epoch length in cycles (at most the PCIe lookahead).
    len: u64,
    /// Pre-extracted PCIe deliveries as `(arrival, sending fpga, flight)`,
    /// sorted by `(arrival, from)` — the per-receiver order the serial
    /// pump produces. One flat list instead of a `Vec` per peer: at rack
    /// scale a per-peer layout cost `nf` allocations per job and an
    /// `O(nf)` scan per quiet-warp probe.
    inbound: Vec<(Cycle, usize, Flight)>,
    /// Pre-extracted Ethernet deliveries as `(release, src, seq, item)`,
    /// oldest first (the fabric's `(release, src, seq, copy)` order).
    /// Delivered after any same-cycle PCIe flights, matching the serial
    /// pump.
    eth_inbound: Vec<(Cycle, u32, u64, PcieItem)>,
    /// Record idle/activity bookkeeping (for `run_until_idle_parallel`).
    track: bool,
}

/// What an FPGA worker hands back at the epoch barrier.
struct EpochOut {
    worker: usize,
    /// Cross-FPGA sends buffered during the epoch: `(cycle, to, item)` in
    /// send order. Replayed into the links at the barrier.
    sends: Vec<(Cycle, usize, PcieItem)>,
    /// Last cycle at which this FPGA did observable work (tracked jobs).
    last_active: Option<Cycle>,
    /// FPGA was idle after the epoch's final cycle (tracked jobs).
    idle_at_end: bool,
}

/// Drains the shell's outbound side exactly like the serial pump: all
/// requests (with the PCIe window stripped back to bridge offsets), then
/// all responses. `sink` receives `(destination fpga, item)`.
fn drain_shell_outbound(fpga: &mut Fpga, mut sink: impl FnMut(usize, PcieItem)) {
    while let Some((route, req)) = fpga.shell_mut().pop_outbound() {
        match route {
            ShellRoute::Fpga(peer) => {
                let stripped = match req {
                    AxiReq::Write(mut w) => {
                        w.addr =
                            HardShell::window_offset(peer, w.addr).expect("shell routed by window");
                        AxiReq::Write(w)
                    }
                    AxiReq::Read(mut r) => {
                        r.addr =
                            HardShell::window_offset(peer, r.addr).expect("shell routed by window");
                        AxiReq::Read(r)
                    }
                };
                sink(peer, PcieItem::Req(stripped));
            }
            ShellRoute::Host => {
                // Host-directed writes (management) are absorbed.
            }
        }
    }
    while let Some((peer, resp)) = fpga.shell_mut().pop_outbound_resp() {
        sink(peer, PcieItem::Resp(resp));
    }
}

/// Hands one link delivery to the receiving shell.
///
/// Clean path (no guard): direct FIFO pushes; a full inbound FIFO drops
/// the item (PCIe back-pressure is modeled at the shell boundary, not the
/// link). Fault path (guard enabled): the shell's sequenced entry point
/// restores send order, drops duplicate copies, and retries instead of
/// dropping. Both steppers route every delivery through this one function,
/// so the choice is identical under each.
fn deliver_flight(fpga: &mut Fpga, now: Cycle, from: usize, flight: Flight) {
    let shell = fpga.shell_mut();
    if shell.guard_enabled() {
        shell.push_sequenced(now, from, flight.seq, flight.item);
        return;
    }
    match flight.item {
        PcieItem::Req(req) => {
            let _ = shell.push_inbound(from, req);
        }
        PcieItem::Resp(resp) => {
            let _ = shell.push_inbound_resp(resp);
        }
    }
}

/// O(1) link send using the precomputed `(from, to) → link` table.
fn link_send_indexed(
    links: &mut [((usize, usize), PcieLink)],
    link_idx: &[usize],
    nf: usize,
    now: Cycle,
    from: usize,
    to: usize,
    item: PcieItem,
) {
    let li = link_idx[from * nf + to];
    debug_assert!(li != usize::MAX, "links form a full mesh over the FPGAs");
    let ((a, _), link) = &mut links[li];
    if from == *a {
        link.send_from_a(now, item);
    } else {
        link.send_from_b(now, item);
    }
}

/// The body an FPGA worker thread runs for the lifetime of one parallel
/// region: pull an epoch job, advance the FPGA through it cycle by cycle
/// (tick, drain outbound into the send buffer, replay scheduled inbound
/// deliveries at their exact cycles), report at the barrier, repeat until
/// the job channel closes.
fn epoch_worker(
    w: usize,
    fpga: &mut Fpga,
    jobs: mpsc::Receiver<EpochJob>,
    out: mpsc::Sender<EpochOut>,
) {
    let mut idle_now = fpga.is_idle();
    while let Ok(job) = jobs.recv() {
        let o = fpga_epoch(w, fpga, job, &mut idle_now);
        if out.send(o).is_err() {
            break;
        }
    }
}

/// One FPGA's epoch: advance through `job` cycle by cycle (or in quiet
/// warps), delivering the pre-extracted inbound flights at their exact
/// cycles and buffering outbound sends for the barrier to replay. Shared
/// by the parallel workers and the serial epoch driver — same code, same
/// results.
fn fpga_epoch(w: usize, fpga: &mut Fpga, job: EpochJob, idle_now: &mut bool) -> EpochOut {
    // Oldest-first lists, consumed from the front: flip them once so
    // each delivery is an O(1) pop from the back.
    let mut inbound = job.inbound;
    inbound.reverse();
    let mut eth_inbound = job.eth_inbound;
    eth_inbound.reverse();
    let mut sends: Vec<(Cycle, usize, PcieItem)> = Vec::new();
    let mut last_active = None;
    let end = job.start + job.len;
    let mut t = job.start;
    while t < end {
        // Quiet warp, per FPGA: within an epoch no external input can
        // arrive except the pre-extracted deliveries below, so when
        // the FPGA is provably quiet the skip ticks up to the earliest
        // of (component wake, next delivery, epoch end) batch into one
        // warp — bit-identical to ticking through them.
        if let Some(bound) = fpga.quiet_bound(t) {
            let mut stop = bound.min(end);
            if let Some(&(ready, _, _)) = inbound.last() {
                stop = stop.min(ready);
            }
            if let Some(&(ready, _, _, _)) = eth_inbound.last() {
                stop = stop.min(ready);
            }
            if stop > t {
                fpga.warp_quiet(t, stop - t);
                if job.track && !*idle_now {
                    // A quiet-but-not-idle FPGA counts every cycle as
                    // active, exactly as the per-cycle loop would.
                    last_active = Some(stop - 1);
                }
                t = stop;
                continue;
            }
        }
        fpga.tick(t);
        let sent_before = sends.len();
        drain_shell_outbound(fpga, |to, item| sends.push((t, to, item)));
        let mut delivered = false;
        // `(arrival, from)` sort order reproduces the serial pump's
        // ascending-peer order at each cycle; Ethernet releases follow
        // same-cycle PCIe flights, as in the serial fabric pump.
        while inbound.last().is_some_and(|&(ready, _, _)| ready <= t) {
            let (_, from, flight) = inbound.pop().expect("last checked");
            deliver_flight(fpga, t, from, flight);
            delivered = true;
        }
        while eth_inbound.last().is_some_and(|&(ready, _, _, _)| ready <= t) {
            let (_, src, seq, item) = eth_inbound.pop().expect("last checked");
            deliver_flight(fpga, t, src as usize, Flight { seq, item });
            delivered = true;
        }
        if job.track {
            // A cycle is active if the FPGA had work before or after
            // the tick, or traffic moved. Quiescence is the cycle
            // after the last active one.
            let idle_after = fpga.is_idle();
            if !*idle_now || !idle_after || delivered || sends.len() > sent_before {
                last_active = Some(t);
            }
            *idle_now = idle_after;
        }
        t += 1;
    }
    EpochOut { worker: w, sends, last_active, idle_at_end: *idle_now }
}

/// Sends `item` over the intra-group link joining `from` and `to`, found by
/// scanning `links` (a group's links number at most `C(4,2) = 6`, so a
/// linear scan beats carrying the global index table onto worker threads).
fn link_send_local(
    links: &mut [((usize, usize), PcieLink)],
    now: Cycle,
    from: usize,
    to: usize,
    item: PcieItem,
) {
    let key = (from.min(to), from.max(to));
    for ((a, b), link) in links.iter_mut() {
        if (*a, *b) == key {
            if from == *a {
                link.send_from_a(now, item);
            } else {
                link.send_from_b(now, item);
            }
            return;
        }
    }
    panic!("no intra-group PCIe link for {from} -> {to}");
}

/// Advances one switch group over the global epoch `[tg, tg + glen)`: local
/// windows of at most `local` cycles, each pre-extracting per-member PCIe
/// and Ethernet deliveries, advancing every member via [`fpga_epoch`],
/// replaying its sends (intra-group pairs onto their PCIe link, everything
/// else into the switch), and forwarding the switch at the window boundary.
///
/// `fpgas[i]` is global member `first + i`; `links` holds (at least) the
/// group's internal PCIe links — members of other groups never match the
/// scan, so the serial driver passes the full platform list while the
/// parallel driver passes a per-group partition. Shared by both drivers:
/// same code, same results. Within a local window no member can observe a
/// peer (the PCIe and NIC-link latencies both bound it), and groups only
/// interact through the spine, whose latency bounds the global epoch — so
/// this schedule is bit-identical to the per-cycle reference.
#[allow(clippy::too_many_arguments)]
fn group_epoch(
    first: usize,
    fpgas: &mut [Fpga],
    links: &mut [((usize, usize), PcieLink)],
    sw: &mut EthSwitch<PcieItem>,
    topology: &Topology,
    idle_flags: &mut [bool],
    tg: Cycle,
    glen: u64,
    local: u64,
) {
    let mut t = tg;
    while t < tg + glen {
        let step = local.min(tg + glen - t);
        let horizon = t + step;
        for lm in 0..fpgas.len() {
            let m = first + lm;
            // Pre-extract this member's PCIe flights from its group links.
            // A send replayed below matures at or after `horizon` (link
            // latency >= step), so interleaving extraction with member
            // advancement changes nothing.
            let mut inbound: Vec<(Cycle, usize, Flight)> = Vec::new();
            for ((a, b), link) in links.iter_mut() {
                if *a == m {
                    for (c, fl) in link.take_flights_to_a_before(horizon) {
                        inbound.push((c, *b, fl));
                    }
                } else if *b == m {
                    for (c, fl) in link.take_flights_to_b_before(horizon) {
                        inbound.push((c, *a, fl));
                    }
                }
            }
            inbound.sort_by_key(|&(c, f, _)| (c, f));
            let job = EpochJob {
                start: t,
                len: step,
                inbound,
                eth_inbound: sw.take_delivered(m, horizon),
                track: false,
            };
            let out = fpga_epoch(m, &mut fpgas[lm], job, &mut idle_flags[lm]);
            for (u, to, item) in out.sends {
                if topology.pcie_linked(m, to) {
                    link_send_local(links, u, m, to, item);
                } else {
                    sw.send(u, m, to, item.wire_bytes(), item);
                }
            }
        }
        sw.process(horizon);
        t += step;
    }
}

impl Platform {
    /// Builds the prototype described by `cfg`, with idle engines in every
    /// tile; install cores with [`Platform::set_engine`] (the workload
    /// layer provides builders that do this for whole experiments).
    pub fn new(cfg: Config) -> Self {
        let homing =
            Homing::new(cfg.homing_mode(), cfg.total_nodes() as u16, cfg.tiles_per_node as u16);
        let mut fpgas: Vec<Fpga> = (0..cfg.fpgas).map(|i| Fpga::new(&cfg, i, homing)).collect();
        let p = &cfg.params;
        let mut links = Vec::new();
        for i in 0..cfg.fpgas {
            for j in (i + 1)..cfg.fpgas {
                if !cfg.topology.pcie_linked(i, j) {
                    continue;
                }
                let mut link = PcieLink::new(p.pcie_one_way_latency, p.pcie_bytes_per_cycle);
                link.set_endpoints(i as u8, j as u8);
                links.push(((i, j), link));
            }
        }
        let eth_plan = cfg.fault.as_ref().filter(|s| s.links).map(|s| s.plan.clone());
        let eth = cfg.topology.eth_params().map(|p| EthFabric::new(cfg.fpgas, p.clone(), eth_plan));
        let mut link_idx = vec![usize::MAX; cfg.fpgas * cfg.fpgas];
        for (li, ((i, j), _)) in links.iter().enumerate() {
            link_idx[i * cfg.fpgas + j] = li;
            link_idx[j * cfg.fpgas + i] = li;
        }
        if let Some(spec) = &cfg.fault {
            // Every injector draws from the shared plan on its own stream,
            // so each fault decision is a pure function of (seed, stream,
            // seq) — identical under the serial and epoch-parallel
            // steppers regardless of evaluation order.
            let plan = &spec.plan;
            if spec.links {
                for ((i, j), link) in &mut links {
                    link.set_faults(
                        FaultInjector::new(plan.clone(), fault_streams::link(*i, *j)),
                        FaultInjector::new(plan.clone(), fault_streams::link(*j, *i)),
                    );
                }
                // The recovery side: scrambled/duplicated deliveries are
                // straightened back out at the receiving shell.
                for f in &mut fpgas {
                    f.shell_mut().enable_guard();
                }
            }
            for (fi, f) in fpgas.iter_mut().enumerate() {
                if spec.xbar {
                    f.xbar_mut()
                        .set_faults(FaultInjector::new(plan.clone(), fault_streams::xbar(fi)));
                }
                for li in 0..f.nodes().len() {
                    let g = fi * cfg.nodes_per_fpga + li;
                    let node = f.node_mut(li);
                    if spec.noc {
                        node.mesh_mut()
                            .set_faults(FaultInjector::new(plan.clone(), fault_streams::noc(g)));
                    }
                    if spec.dram {
                        node.chipset_mut()
                            .memctl_mut()
                            .dram_mut()
                            .set_faults(FaultInjector::new(plan.clone(), fault_streams::dram(g)));
                    }
                }
            }
        }
        Self {
            cfg,
            homing,
            fpgas,
            links,
            link_idx,
            eth,
            now: 0,
            host_epochs: Histogram::new(),
            host_trace: TraceBuf::new(4096),
            epoch_count: 0,
            fast_path: true,
        }
    }

    /// Index into the platform's link list for the pair `(a, b)`, or
    /// [`None`] when the pair shares no link (`a == b` or out of range).
    /// The table is symmetric: both orderings return the same link.
    pub fn link_index(&self, a: usize, b: usize) -> Option<usize> {
        let nf = self.fpgas.len();
        if a >= nf || b >= nf || a == b {
            return None;
        }
        let li = self.link_idx[a * nf + b];
        (li != usize::MAX).then_some(li)
    }

    /// The configuration this platform was built from.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The homing function (workload builders use it for placement).
    pub fn homing(&self) -> Homing {
        self.homing
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Wall-clock seconds the modeled prototype would have taken.
    pub fn modeled_seconds(&self) -> f64 {
        self.now as f64 / (f64::from(self.cfg.params.frequency_mhz) * 1e6)
    }

    fn locate(&self, node: usize) -> (usize, usize) {
        (node / self.cfg.nodes_per_fpga, node % self.cfg.nodes_per_fpga)
    }

    /// Access node `g` (global index).
    pub fn node(&self, g: usize) -> &Node {
        let (f, l) = self.locate(g);
        &self.fpgas[f].nodes()[l]
    }

    /// Mutable access to node `g`.
    pub fn node_mut(&mut self, g: usize) -> &mut Node {
        let (f, l) = self.locate(g);
        self.fpgas[f].node_mut(l)
    }

    /// Installs an engine into tile `t` of node `g`.
    pub fn set_engine(&mut self, g: usize, t: TileId, engine: Box<dyn Engine>) {
        self.node_mut(g).set_engine(t, engine);
    }

    /// Toggles every engine's host-side fast path (decoded basic-block
    /// dispatch). On by default; turning it off yields the plain
    /// decode-every-instruction reference interpreter. Purely a host
    /// switch — runs must be bit-identical either way (the differential
    /// suites assert exactly that), so this is NOT part of [`Config`] and
    /// does not enter the config digest.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        for f in &mut self.fpgas {
            f.set_fast_path(on);
        }
    }

    /// Host-side performance diagnostics of the fast path: ticks elided by
    /// the per-component scheduler and decoded-block cache totals. Never
    /// part of architectural stats, metrics, or snapshots — serial and
    /// parallel steppers may legitimately differ here.
    pub fn host_perf(&self) -> HostPerf {
        let mut p = HostPerf::default();
        for f in &self.fpgas {
            for n in f.nodes() {
                let (tiles, chipset, hits, misses) = n.host_perf();
                p.skipped_tile_cycles += tiles;
                p.skipped_chipset_cycles += chipset;
                p.block_cache_hits += hits;
                p.block_cache_misses += misses;
            }
        }
        p
    }

    /// The standard address map for a core on node `g`: UARTs, CLINT, and
    /// the SD controller of its own chipset. Accelerator windows are added
    /// by the caller with [`AddrMap::add_device`].
    pub fn addr_map(&self, g: usize) -> AddrMap {
        let chipset = Gid::chipset(NodeId(g as u16));
        let mut m = AddrMap::new();
        m.add_device(UART0_BASE, 0x1000, chipset);
        m.add_device(UART1_BASE, 0x1000, chipset);
        m.add_device(CLINT_BASE, 0x10000, chipset);
        m.add_device(SD_CTL_BASE, 0x1000, chipset);
        m.add_device(PLIC_BASE, 0x40_0000, chipset);
        m
    }

    /// Host backdoor: writes bytes into the prototype's unified memory,
    /// scattering each cache line into its home node's DRAM.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) {
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr + off as u64;
            let line_end = line_of(a) + 64;
            let chunk = ((line_end - a) as usize).min(bytes.len() - off);
            let home = self.homing.home_node(line_of(a), NodeId(0));
            self.node_mut(home.0 as usize)
                .chipset_mut()
                .memctl_mut()
                .dram_mut()
                .write_bytes(a, &bytes[off..off + chunk]);
            off += chunk;
        }
    }

    /// Host backdoor: reads bytes from unified memory (gathering across
    /// home nodes). Only meaningful when caches are clean/quiescent.
    pub fn read_mem(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let line_end = line_of(a) + 64;
            let chunk = ((line_end - a) as usize).min(len - off);
            let home = self.homing.home_node(line_of(a), NodeId(0));
            out.extend(self.node(home.0 as usize).chipset().memctl().dram().read_bytes(a, chunk));
            off += chunk;
        }
        out
    }

    /// Loads an assembled image at its base address.
    pub fn load_image(&mut self, img: &Image) {
        self.write_mem(img.base, &img.bytes);
    }

    /// Host backdoor for independent-node prototypes (§4.5's 1x4x2): writes
    /// into one specific node's DRAM, since without unified memory each
    /// node is a separate system with its own address space.
    pub fn write_mem_node(&mut self, g: usize, addr: u64, bytes: &[u8]) {
        self.node_mut(g).chipset_mut().memctl_mut().dram_mut().write_bytes(addr, bytes);
    }

    /// Loads an image into one node of an independent-node prototype.
    pub fn load_image_node(&mut self, g: usize, img: &Image) {
        self.write_mem_node(g, img.base, &img.bytes);
    }

    /// Host SD driver: injects a disk image into node `g`'s SD data region
    /// (the top half of that node's DRAM, §3.4.2).
    pub fn load_disk(&mut self, g: usize, image: &[u8]) {
        self.node_mut(g)
            .chipset_mut()
            .memctl_mut()
            .dram_mut()
            .write_bytes(crate::config::SD_DATA_BASE, image);
    }

    /// The host's virtual serial device for node `g`'s console UART.
    pub fn console_mut(&mut self, g: usize) -> &mut HostSerial {
        self.node_mut(g).chipset_mut().uart0.host_mut()
    }

    /// The host's virtual serial device for node `g`'s data UART (the
    /// prototype's network link).
    pub fn serial_mut(&mut self, g: usize) -> &mut HostSerial {
        self.node_mut(g).chipset_mut().uart1.host_mut()
    }

    /// Runs for `cycles` cycles.
    ///
    /// Globally quiet stretches are warped: while every FPGA reports a
    /// [`Fpga::quiet_bound`] (all components provably on their skip paths)
    /// and no PCIe delivery matures, the per-cycle skip ticks are batched
    /// into one [`Fpga::warp_quiet`] — bit-identical to stepping, just
    /// without touching every component every cycle. Reference mode
    /// (fast path off) never warps.
    pub fn run(&mut self, cycles: u64) {
        // Multi-FPGA fast path: drive the same epoch schedule the parallel
        // stepper uses (bit-identical by construction), on this thread.
        // Inside an epoch each FPGA warps its own quiet stretches
        // independently — the cycle-interleaved loop below can only warp
        // when *every* FPGA is quiet at once, so one busy FPGA pins all of
        // its peers to per-cycle stepping.
        if self.fast_path && cycles > 0 {
            if self.eth.is_some() {
                if self.grouped_lookaheads().0 > 0 {
                    self.run_groups_serial(cycles);
                    return;
                }
            } else if self.lookahead() > 0 {
                self.run_epochs_serial(cycles);
                return;
            }
        }
        let mut spent = 0u64;
        while spent < cycles {
            if let Some(delta) = self.quiet_delta(cycles - spent) {
                let now = self.now;
                for f in &mut self.fpgas {
                    f.warp_quiet(now, delta);
                }
                self.now += delta;
                spent += delta;
                continue;
            }
            self.step();
            spent += 1;
        }
    }

    /// The serial epoch driver: identical epoch schedule, pre-extraction,
    /// and barrier replay order to [`Platform::run_epochs`], with the
    /// FPGAs advanced one after another on this thread instead of on
    /// workers. Within an epoch no FPGA can observe a peer (that is what
    /// the lookahead guarantees), so sequential execution order is
    /// immaterial and the result is bit-identical to both the threaded
    /// epoch stepper and the cycle-interleaved serial stepper.
    fn run_epochs_serial(&mut self, max_cycles: u64) {
        let nf = self.fpgas.len();
        let lookahead =
            self.links.iter().map(|(_, l)| l.one_way_latency()).min().expect("links exist");
        let start_now = self.now;
        let mut idle_flags: Vec<bool> = self.fpgas.iter().map(|f| f.is_idle()).collect();
        let mut spent = 0u64;
        while spent < max_cycles {
            let len = lookahead.min(max_cycles - spent);
            let epoch_start = start_now + spent;
            let horizon = epoch_start + len;
            self.host_epochs.record(len);
            let idx = self.epoch_count;
            self.epoch_count += 1;
            self.host_trace
                .record(epoch_start, || TraceEventKind::Epoch { index: idx, width: len });
            let mut schedules: Vec<Vec<(Cycle, usize, Flight)>> =
                (0..nf).map(|_| Vec::new()).collect();
            for ((a, b), link) in self.links.iter_mut() {
                for (c, fl) in link.take_flights_to_b_before(horizon) {
                    schedules[*b].push((c, *a, fl));
                }
                for (c, fl) in link.take_flights_to_a_before(horizon) {
                    schedules[*a].push((c, *b, fl));
                }
            }
            for q in &mut schedules {
                // Stable: same-(cycle, from) flights keep their send order.
                q.sort_by_key(|&(c, f, _)| (c, f));
            }
            let mut outs = Vec::with_capacity(nf);
            for (w, fpga) in self.fpgas.iter_mut().enumerate() {
                let job = EpochJob {
                    start: epoch_start,
                    len,
                    inbound: std::mem::take(&mut schedules[w]),
                    eth_inbound: Vec::new(),
                    track: false,
                };
                outs.push(fpga_epoch(w, fpga, job, &mut idle_flags[w]));
            }
            // Barrier: replay sends in the same fixed (from, to) order the
            // threaded stepper uses.
            for o in &mut outs {
                for (t, to, item) in o.sends.drain(..) {
                    link_send_indexed(&mut self.links, &self.link_idx, nf, t, o.worker, to, item);
                }
            }
            spent += len;
        }
        self.now = start_now + spent;
    }

    /// The grouped lookaheads of a network-attached platform as
    /// `(local, global)`: how far a switch group may advance between local
    /// rendezvous (bounded by the NIC-to-switch link latency and by any
    /// intra-group PCIe latency under [`Topology::Hybrid`]), and how far
    /// all groups may advance between spine exchanges (the uplink
    /// latency). `(0, 0)` without an Ethernet fabric.
    pub fn grouped_lookaheads(&self) -> (u64, u64) {
        let Some(eth) = &self.eth else { return (0, 0) };
        let mut local = eth.local_lookahead();
        if let Some(min_pcie) = self.links.iter().map(|(_, l)| l.one_way_latency()).min() {
            local = local.min(min_pcie);
        }
        (local, eth.global_lookahead())
    }

    /// The serial grouped-epoch driver for network-attached topologies:
    /// per global epoch (bounded by the spine latency), exchange the
    /// spine, then advance each switch group through its local windows
    /// with [`group_epoch`], one group after another on this thread.
    /// Groups interact only through the spine, and the exchange horizon
    /// covers the whole epoch, so group order is immaterial and the
    /// result is bit-identical to the per-cycle reference and to
    /// [`Platform::run_groups_parallel`].
    fn run_groups_serial(&mut self, max_cycles: u64) {
        let (local, global) = self.grouped_lookaheads();
        let start_now = self.now;
        let mut idle_flags: Vec<bool> = self.fpgas.iter().map(|f| f.is_idle()).collect();
        let mut spent = 0u64;
        while spent < max_cycles {
            let glen = global.min(max_cycles - spent);
            let tg = start_now + spent;
            self.host_epochs.record(glen);
            let idx = self.epoch_count;
            self.epoch_count += 1;
            self.host_trace.record(tg, || TraceEventKind::Epoch { index: idx, width: glen });
            let eth = self.eth.as_mut().expect("grouped driver needs an Ethernet fabric");
            // Complete even for a truncated epoch: a frame arriving before
            // `tg + glen` left its source group an uplink latency earlier,
            // i.e. before `tg` — already forwarded by the previous epoch.
            eth.exchange(tg + glen);
            for g in 0..eth.groups() {
                let range = eth.group_members(g);
                group_epoch(
                    range.start,
                    &mut self.fpgas[range.clone()],
                    &mut self.links,
                    eth.switch_mut(g),
                    &self.cfg.topology,
                    &mut idle_flags[range],
                    tg,
                    glen,
                    local,
                );
            }
            spent += glen;
        }
        self.now = start_now + spent;
    }

    /// The parallel grouped-epoch driver: one worker thread per switch
    /// group. For each global epoch the platform state is partitioned —
    /// every group's thread exclusively owns its FPGAs, its internal PCIe
    /// links, and its switch — and the spine exchange at the epoch
    /// boundary is the only cross-group synchronization, mirroring how a
    /// rack deployment gives each chassis its own host process. Bit-
    /// identical to [`Platform::run_groups_serial`] (same schedule, same
    /// per-group code) and therefore to the per-cycle reference.
    fn run_groups_parallel(&mut self, max_cycles: u64) {
        let (local, global) = self.grouped_lookaheads();
        let start_now = self.now;
        let mut idle_flags: Vec<bool> = self.fpgas.iter().map(|f| f.is_idle()).collect();
        let mut spent = 0u64;
        while spent < max_cycles {
            let glen = global.min(max_cycles - spent);
            let tg = start_now + spent;
            self.host_epochs.record(glen);
            let idx = self.epoch_count;
            self.epoch_count += 1;
            self.host_trace.record(tg, || TraceEventKind::Epoch { index: idx, width: glen });
            let eth = self.eth.as_mut().expect("grouped driver needs an Ethernet fabric");
            eth.exchange(tg + glen);
            let ranges: Vec<_> = (0..eth.groups()).map(|g| eth.group_members(g)).collect();
            // Partition ownership: links by the group of their (lower)
            // endpoint — both endpoints share a group, links only join
            // `pcie_linked` pairs — and one switch per worker.
            let all_links = std::mem::take(&mut self.links);
            let mut group_links: Vec<Vec<((usize, usize), PcieLink)>> =
                (0..ranges.len()).map(|_| Vec::new()).collect();
            for ((a, b), link) in all_links {
                group_links[eth.group_of(a)].push(((a, b), link));
            }
            let mut switches: Vec<EthSwitch<PcieItem>> =
                (0..ranges.len()).map(|g| eth.take_switch(g)).collect();
            let topology = &self.cfg.topology;
            std::thread::scope(|s| {
                let mut rest_f: &mut [Fpga] = &mut self.fpgas;
                let mut rest_i: &mut [bool] = &mut idle_flags;
                for ((range, lk), sw) in
                    ranges.iter().zip(group_links.iter_mut()).zip(switches.iter_mut())
                {
                    let (chunk_f, rf) = rest_f.split_at_mut(range.len());
                    rest_f = rf;
                    let (chunk_i, ri) = rest_i.split_at_mut(range.len());
                    rest_i = ri;
                    let first = range.start;
                    s.spawn(move || {
                        group_epoch(first, chunk_f, lk, sw, topology, chunk_i, tg, glen, local);
                    });
                }
            });
            for (g, sw) in switches.into_iter().enumerate() {
                eth.put_switch(g, sw);
            }
            let mut merged: Vec<((usize, usize), PcieLink)> =
                group_links.into_iter().flatten().collect();
            // Construction order is ascending (a, b); restoring it keeps
            // `link_idx` valid.
            merged.sort_by_key(|l| l.0);
            self.links = merged;
            spent += glen;
        }
        self.now = start_now + spent;
    }

    /// How many upcoming cycles are provably skippable from the current
    /// cycle (capped at `budget`), or `None` when the next cycle must be
    /// stepped. Skippable means: every FPGA quiet through the window and
    /// no PCIe link or Ethernet fabric event maturing inside it.
    fn quiet_delta(&self, budget: u64) -> Option<u64> {
        let now = self.now;
        let mut bound = Cycle::MAX;
        for f in &self.fpgas {
            bound = bound.min(f.quiet_bound(now)?);
        }
        for (_, l) in &self.links {
            if let Some(t) = l.next_delivery_at() {
                if t <= now {
                    return None;
                }
                bound = bound.min(t);
            }
        }
        if let Some(eth) = &self.eth {
            // Conservative: the earliest *fabric* event (an ingress frame
            // maturing into the switch, not only a final delivery) bounds
            // the warp, so every forwarding step happens on the cycle the
            // per-cycle pump would perform it.
            if let Some(t) = eth.earliest_event() {
                if t <= now {
                    return None;
                }
                bound = bound.min(t);
            }
        }
        // `bound` is the first cycle that may do real work; everything
        // strictly before it is a skip.
        Some((bound - now).min(budget)).filter(|&d| d > 0)
    }

    /// Runs until `pred` returns true, up to `max` cycles. Returns true
    /// when the predicate fired.
    pub fn run_until(&mut self, max: u64, mut pred: impl FnMut(&Platform) -> bool) -> bool {
        for _ in 0..max {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    /// Runs until every engine finished and all machinery drained, up to
    /// `max` cycles of simulated time. Returns true on quiescence, with
    /// [`Platform::now`] at the exact first quiescent cycle.
    ///
    /// Dead stretches are skipped: while every FPGA is idle and the only
    /// pending work sits in PCIe links or UART wires, time warps straight
    /// to the next scheduled event, aging the guest clocks by the skipped
    /// cycles (each skipped cycle's tick would have been a no-op apart
    /// from the mtime increment, which [`Fpga::advance_idle`] reproduces).
    pub fn run_until_idle(&mut self, max: u64) -> bool {
        let mut spent = 0u64;
        while spent < max {
            if self.is_idle() {
                return true;
            }
            if self.fpgas.iter().all(Fpga::is_idle) {
                let now = self.now;
                let fpga_ev = self.fpgas.iter().filter_map(|f| f.next_event_after(now)).min();
                let link_ev = self.links.iter().filter_map(|(_, l)| l.next_delivery_at()).min();
                let eth_ev = self.eth.as_ref().and_then(EthFabric::earliest_event);
                let target = [fpga_ev, link_ev, eth_ev].into_iter().flatten().min();
                // Warp to the event cycle; the normal step below executes
                // it. `target <= now` means a link item matured for this
                // very cycle's pump — just step.
                if let Some(target) = target {
                    if target > now {
                        let warp = (target - now).min(max - spent);
                        for f in &mut self.fpgas {
                            f.advance_idle(warp);
                        }
                        self.now += warp;
                        spent += warp;
                        continue;
                    }
                }
            }
            self.step();
            spent += 1;
        }
        self.is_idle()
    }

    /// True when every FPGA, link, and switch is quiescent.
    pub fn is_idle(&self) -> bool {
        self.fpgas.iter().all(Fpga::is_idle)
            && self.links.iter().all(|(_, l)| l.is_idle())
            && self.eth.as_ref().is_none_or(EthFabric::is_idle)
    }

    /// Advances the platform one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        for f in &mut self.fpgas {
            f.tick(now);
        }
        self.pump_fabric(now);
        self.now += 1;
    }

    /// Moves traffic between Hard Shells: over the PCIe links and, on
    /// network-attached topologies, through the Ethernet fabric.
    fn pump_fabric(&mut self, now: Cycle) {
        let nf = self.fpgas.len();
        if let Some(eth) = &mut self.eth {
            // Spine hand-off first: a cross-group frame delivered at this
            // cycle crossed the uplink long ago, and anything sent below
            // matures at `now + 2` or later, so ordering against the rest
            // of the pump is immaterial.
            eth.exchange(now + 1);
        }
        // Outbound requests and responses onto the fabric, FPGA by FPGA.
        // PCIe-linked pairs use their link; everything else rides Ethernet.
        for fi in 0..nf {
            let (fpgas, links, eth) = (&mut self.fpgas, &mut self.links, &mut self.eth);
            let link_idx = &self.link_idx;
            drain_shell_outbound(&mut fpgas[fi], |to, item| {
                if link_idx[fi * nf + to] != usize::MAX {
                    link_send_indexed(links, link_idx, nf, now, fi, to, item);
                } else {
                    let eth = eth.as_mut().expect("unlinked pair implies an Ethernet fabric");
                    eth.send(now, fi, to, item.wire_bytes(), item);
                }
            });
        }
        // Deliveries off links, in lexicographic link order (which any
        // single receiver observes as ascending-peer order).
        for li in 0..self.links.len() {
            let (a, b) = self.links[li].0;
            while let Some(flight) = self.links[li].1.recv_flight_at_b(now) {
                deliver_flight(&mut self.fpgas[b], now, a, flight);
            }
            while let Some(flight) = self.links[li].1.recv_flight_at_a(now) {
                deliver_flight(&mut self.fpgas[a], now, b, flight);
            }
        }
        // Ethernet deliveries follow same-cycle PCIe flights at each
        // receiver, then the switches forward one cycle's worth of events.
        if let Some(eth) = &mut self.eth {
            for (m, fpga) in self.fpgas.iter_mut().enumerate() {
                for (_, src, seq, item) in eth.take_delivered(m, now + 1) {
                    deliver_flight(fpga, now, src as usize, Flight { seq, item });
                }
            }
            eth.process_all(now + 1);
        }
    }

    /// The conservative lookahead of the PCIe fabric: the minimum one-way
    /// link latency, i.e. how many cycles FPGAs can run without observing
    /// each other. Zero when the platform has no usable lookahead (single
    /// FPGA, or a zero-latency link configuration).
    pub fn lookahead(&self) -> u64 {
        if self.fpgas.len() < 2 {
            return 0;
        }
        self.links.iter().map(|(_, l)| l.one_way_latency()).min().unwrap_or(0)
    }

    /// Runs for `cycles` cycles on worker threads, one per FPGA, advancing
    /// in epochs of [`Platform::lookahead`] cycles. Falls back to the
    /// serial stepper when there is no lookahead to exploit.
    ///
    /// The execution is bit-identical to [`Platform::run`]: identical
    /// cycle count, statistics, memory, and console output.
    pub fn run_parallel(&mut self, cycles: u64) {
        if self.eth.is_some() {
            if self.grouped_lookaheads().0 > 0 && cycles > 0 {
                self.run_groups_parallel(cycles);
            } else {
                self.run(cycles);
            }
            return;
        }
        if self.lookahead() == 0 || cycles == 0 {
            self.run(cycles);
            return;
        }
        self.run_epochs(cycles, false);
    }

    /// The cooperative preemption grain: the smallest run-length multiple
    /// at which the platform may be cut, snapshotted, and later resumed
    /// with the *same* snapshot bytes an uninterrupted run would produce.
    ///
    /// The epoch drivers record each epoch's width as
    /// `lookahead.min(remaining_budget)`, so a run sliced at arbitrary
    /// points would log truncated epochs at every slice boundary and the
    /// `host.stepper` snapshot section would diverge from the unsliced
    /// run. Cutting only at multiples of the natural epoch width (the
    /// global lookahead for network-attached topologies, the PCIe
    /// lookahead for star/hybrid, one cycle for a single FPGA) keeps the
    /// epoch schedule — and therefore every snapshot byte — identical.
    ///
    /// Tiny natural grains (1-cycle single-FPGA, 62-cycle PCIe) are
    /// batched up to at least [`Platform::PREEMPT_GRAIN_FLOOR`] cycles,
    /// in whole-epoch multiples, so yield/idle checks stay off the hot
    /// path.
    pub fn preemption_grain(&self) -> u64 {
        let natural =
            if self.eth.is_some() { self.grouped_lookaheads().1 } else { self.lookahead() }.max(1);
        natural * Self::PREEMPT_GRAIN_FLOOR.div_ceil(natural)
    }

    /// Minimum cycles between cooperative preemption checkpoints; see
    /// [`Platform::preemption_grain`].
    pub const PREEMPT_GRAIN_FLOOR: u64 = 512;

    /// Runs up to `budget` cycles in [`Platform::preemption_grain`]-sized
    /// chunks, checking for quiescence and asking `should_yield` between
    /// chunks; returns the cycles actually advanced. `parallel` selects
    /// the epoch-parallel stepper ([`Platform::run_parallel`]) over the
    /// serial one ([`Platform::run`]).
    ///
    /// This is the service layer's execution primitive: a job advanced by
    /// any sequence of `run_preemptible` calls whose budgets are
    /// grain-multiples (plus one final remainder) produces snapshots
    /// bit-identical to a single uninterrupted call — the property
    /// `tests/service_equivalence.rs` proves. `should_yield` receives the
    /// platform and the cycles spent so far in this call; returning
    /// `true` stops after the current chunk without consuming the rest of
    /// the budget.
    pub fn run_preemptible(
        &mut self,
        budget: u64,
        parallel: bool,
        mut should_yield: impl FnMut(&Platform, u64) -> bool,
    ) -> u64 {
        let grain = self.preemption_grain();
        let mut spent = 0u64;
        while spent < budget {
            let step = grain.min(budget - spent);
            if parallel {
                self.run_parallel(step);
            } else {
                self.run(step);
            }
            spent += step;
            if self.is_idle() || (spent < budget && should_yield(self, spent)) {
                break;
            }
        }
        spent
    }

    /// Advances one epoch (up to [`Platform::lookahead`] cycles) with one
    /// worker thread per FPGA; returns the number of cycles advanced.
    /// Without lookahead this degenerates to a single serial step.
    pub fn step_epoch(&mut self) -> u64 {
        if self.eth.is_some() {
            let (local, global) = self.grouped_lookaheads();
            if local == 0 {
                self.step();
                return 1;
            }
            self.run_groups_parallel(global);
            return global;
        }
        let l = self.lookahead();
        if l == 0 {
            self.step();
            return 1;
        }
        self.run_epochs(l, false);
        l
    }

    /// Parallel [`Platform::run_until_idle`]: epoch-stepped on worker
    /// threads, up to `max` cycles. On quiescence, [`Platform::now`] lands
    /// on the same cycle the serial path reports and guest clocks are
    /// rolled back over any epoch overshoot.
    ///
    /// Caveat: workers always finish their epoch, so host-side UART output
    /// that matures *after* quiescence but before the epoch boundary is
    /// already drained to [`HostSerial`] when this returns (the serial
    /// path surfaces those bytes on the next run call instead). Guest-
    /// visible state is unaffected.
    pub fn run_until_idle_parallel(&mut self, max: u64) -> bool {
        if self.eth.is_some() || self.lookahead() == 0 {
            // Network-attached topologies use the serial idle loop: it
            // warps dead stretches to the next fabric event and lands on
            // the exact quiescent cycle, which the grouped drivers (built
            // for fixed-cycle runs) do not track.
            return self.run_until_idle(max);
        }
        if self.is_idle() {
            return true;
        }
        self.run_epochs(max, true) || self.is_idle()
    }

    /// The epoch engine shared by the parallel run modes: persistent
    /// worker threads (one per FPGA) advance lockstep epochs of at most
    /// the PCIe lookahead; the barrier replays buffered sends into the
    /// links in `(from, to)` order and pre-extracts the next epoch's
    /// deliveries. Returns true when `stop_when_idle` observed global
    /// quiescence (and trimmed `now` back to its exact cycle).
    fn run_epochs(&mut self, max_cycles: u64, stop_when_idle: bool) -> bool {
        let nf = self.fpgas.len();
        let lookahead =
            self.links.iter().map(|(_, l)| l.one_way_latency()).min().expect("links exist");
        let start_now = self.now;
        let fpgas = &mut self.fpgas;
        let links = &mut self.links;
        let link_idx = &self.link_idx;
        let host_epochs = &mut self.host_epochs;
        let host_trace = &mut self.host_trace;
        let epoch_count = &mut self.epoch_count;
        let (spent, went_idle, last_active) = std::thread::scope(|s| {
            let (out_tx, out_rx) = mpsc::channel::<EpochOut>();
            let mut job_txs = Vec::with_capacity(nf);
            for (w, fpga) in fpgas.iter_mut().enumerate() {
                let (tx, rx) = mpsc::channel::<EpochJob>();
                job_txs.push(tx);
                let out_tx = out_tx.clone();
                s.spawn(move || epoch_worker(w, fpga, rx, out_tx));
            }
            drop(out_tx);
            let mut spent = 0u64;
            let mut went_idle = false;
            let mut last_active: Option<Cycle> = None;
            while spent < max_cycles {
                let len = lookahead.min(max_cycles - spent);
                let epoch_start = start_now + spent;
                let horizon = epoch_start + len;
                host_epochs.record(len);
                let idx = *epoch_count;
                *epoch_count += 1;
                host_trace.record(epoch_start, || TraceEventKind::Epoch { index: idx, width: len });
                // Pull everything the links deliver inside this epoch and
                // schedule it at the receiving worker, keyed by sender.
                let mut schedules: Vec<Vec<(Cycle, usize, Flight)>> =
                    (0..nf).map(|_| Vec::new()).collect();
                for ((a, b), link) in links.iter_mut() {
                    for (c, fl) in link.take_flights_to_b_before(horizon) {
                        schedules[*b].push((c, *a, fl));
                    }
                    for (c, fl) in link.take_flights_to_a_before(horizon) {
                        schedules[*a].push((c, *b, fl));
                    }
                }
                for q in &mut schedules {
                    // Stable: same-(cycle, from) flights keep send order.
                    q.sort_by_key(|&(c, f, _)| (c, f));
                }
                for (w, tx) in job_txs.iter().enumerate() {
                    let job = EpochJob {
                        start: epoch_start,
                        len,
                        inbound: std::mem::take(&mut schedules[w]),
                        eth_inbound: Vec::new(),
                        track: stop_when_idle,
                    };
                    tx.send(job).expect("worker alive");
                }
                let mut outs: Vec<Option<EpochOut>> = (0..nf).map(|_| None).collect();
                for _ in 0..nf {
                    let o = out_rx.recv().expect("worker alive");
                    let w = o.worker;
                    outs[w] = Some(o);
                }
                // Barrier: replay sends in fixed (from, to) order. Each
                // link direction has a single sending FPGA, so replaying
                // one worker's buffer in timestamp order reproduces the
                // serial shaper state exactly.
                let mut all_idle = true;
                for slot in &mut outs {
                    let o = slot.as_mut().expect("every worker reported");
                    all_idle &= o.idle_at_end;
                    if let Some(t) = o.last_active {
                        last_active = Some(last_active.map_or(t, |p| p.max(t)));
                    }
                    for (t, to, item) in o.sends.drain(..) {
                        link_send_indexed(links, link_idx, nf, t, o.worker, to, item);
                    }
                }
                spent += len;
                if stop_when_idle && all_idle && links.iter().all(|(_, l)| l.is_idle()) {
                    went_idle = true;
                    break;
                }
            }
            (spent, went_idle, last_active)
        });
        if went_idle {
            // Workers ran to the epoch boundary; trim back to the first
            // quiescent cycle, undoing the overshoot's clock ticks.
            let epoch_end = start_now + spent;
            let resume = last_active.map_or(start_now, |t| t + 1);
            for f in self.fpgas.iter_mut() {
                f.rewind_idle(epoch_end - resume);
            }
            self.now = resume;
        } else {
            self.now = start_now + spent;
        }
        went_idle
    }

    /// FNV-1a digest of this platform's configuration, embedded in every
    /// snapshot. Restore refuses a snapshot whose digest differs: the
    /// format stores only mutable state, so reading it back into a
    /// platform with different capacities/topology would misalign.
    ///
    /// The digest hashes the `Debug` rendering of [`Config`], which covers
    /// the shape, every Table 2 parameter, the homing policy, and the
    /// fault plan.
    pub fn config_digest(&self) -> u64 {
        fnv1a(format!("{:?}", self.cfg).as_bytes())
    }

    /// Captures the platform's complete architectural state at the current
    /// cycle into a named-section [`Snapshot`].
    ///
    /// Sections are keyed by the same topology-rooted dotted names the
    /// metrics layer uses (`fpga0.node2.tile1.bpc`, `pcie0-1`, ...), so
    /// two snapshots can be diffed with [`Snapshot::first_divergence`] and
    /// the first differing component named. Host-side stepper diagnostics
    /// live under the `host.` prefix, which that comparison skips.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        self.save_walk(&mut w);
        Snapshot::new(self.config_digest(), self.now, w)
    }

    /// The deterministic save walk shared by [`Platform::snapshot`] and
    /// [`Platform::snapshot_to`]: every FPGA, every PCIe link, the
    /// optional Ethernet fabric, then host stepper state.
    fn save_walk(&self, w: &mut SnapWriter) {
        for (fi, f) in self.fpgas.iter().enumerate() {
            w.scoped(&format!("fpga{fi}"), |w| f.save(w));
        }
        for ((a, b), link) in &self.links {
            w.scoped(&format!("pcie{a}-{b}"), |w| link.save(w));
        }
        if let Some(eth) = &self.eth {
            w.scoped("eth", |w| eth.save(w));
        }
        w.scoped("host.stepper", |w| {
            self.host_epochs.save(w);
            w.u64(self.epoch_count);
        });
    }

    /// Streams the platform's state into `sink` section-by-section —
    /// same walk, same sections, same bytes as [`Platform::snapshot`],
    /// but at most one top-level component's sections are resident at a
    /// time, so a 64-FPGA rack checkpoints to a file (or a
    /// [`smappic_sim::CountingSink`]) in bounded memory.
    ///
    /// # Errors
    ///
    /// Propagates the first sink error (e.g. I/O failure of a file-backed
    /// [`smappic_sim::StreamSink`]).
    pub fn snapshot_to(&self, sink: &mut dyn SnapSink) -> Result<(), SnapError> {
        sink.begin(smappic_sim::SNAP_VERSION, self.config_digest(), self.now)?;
        let mut w = SnapWriter::streaming(sink);
        self.save_walk(&mut w);
        w.finish()?;
        sink.finish()
    }

    /// The incremental snapshot: only the sections that changed since
    /// `base`, pinned to `base` by state digest so chains apply in order
    /// or not at all. `base.apply_delta(..)` (or
    /// [`Platform::restore_chain`]) reproduces the full snapshot
    /// byte-for-byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::ConfigMismatch`] when `base` came from a different
    /// config (delegated to [`SnapDelta::between`]).
    pub fn snapshot_delta(&self, base: &Snapshot) -> Result<SnapDelta, SnapError> {
        SnapDelta::between(base, &self.snapshot())
    }

    /// Restores a snapshot taken from a platform with the same [`Config`],
    /// leaving this platform bit-identical to the one that saved it: same
    /// architectural state, same [`Platform::stats`], same
    /// [`MetricsRegistry::architectural`] metrics, under both steppers.
    ///
    /// # Errors
    ///
    /// Returns the first [`SnapError`] encountered — config digest
    /// mismatch, format version skew, a missing/trailing/unknown section,
    /// or a component-level validation failure. On error the platform's
    /// state is unspecified (possibly partially restored): rebuild it or
    /// restore a valid snapshot before further use.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapError> {
        if snap.version != smappic_sim::SNAP_VERSION {
            return Err(SnapError::VersionMismatch {
                found: snap.version,
                expected: smappic_sim::SNAP_VERSION,
            });
        }
        let expected = self.config_digest();
        if snap.config_digest != expected {
            return Err(SnapError::ConfigMismatch { found: snap.config_digest, expected });
        }
        let mut r = SnapReader::new(snap);
        self.restore_walk(&mut r);
        r.finish()?;
        self.now = snap.cycle;
        Ok(())
    }

    /// The restore walk shared by [`Platform::restore`] and
    /// [`Platform::restore_from`]; mirrors [`Platform::save_walk`].
    fn restore_walk(&mut self, r: &mut SnapReader) {
        for (fi, f) in self.fpgas.iter_mut().enumerate() {
            r.scoped(&format!("fpga{fi}"), |r| f.restore(r));
        }
        for ((a, b), link) in &mut self.links {
            r.scoped(&format!("pcie{a}-{b}"), |r| link.restore(r));
        }
        if let Some(eth) = &mut self.eth {
            r.scoped("eth", |r| eth.restore(r));
        }
        let (host_epochs, epoch_count) = (&mut self.host_epochs, &mut self.epoch_count);
        r.scoped("host.stepper", |r| {
            host_epochs.restore(r);
            *epoch_count = r.u64();
        });
    }

    /// Restores from a `SMAPSTRM` checkpoint stream (the
    /// [`smappic_sim::StreamSink`] wire form) without materializing the
    /// whole snapshot: sections are pulled, validated, and freed as the
    /// restore walk consumes them, so memory stays bounded just like the
    /// [`Platform::snapshot_to`] capture path.
    ///
    /// # Errors
    ///
    /// Any [`StreamSource`] validation failure (magic/version/flags,
    /// truncation, codec corruption, count/digest trailer mismatch),
    /// config digest skew, or the usual restore-walk format errors. On
    /// error the platform's state is unspecified, as with
    /// [`Platform::restore`].
    pub fn restore_from(&mut self, reader: impl std::io::Read) -> Result<(), SnapError> {
        let mut src = StreamSource::open(reader)?;
        let expected = self.config_digest();
        if src.config_digest() != expected {
            return Err(SnapError::ConfigMismatch { found: src.config_digest(), expected });
        }
        let cycle = src.cycle();
        let mut r = SnapReader::from_source(Box::new(move || src.next_section()));
        self.restore_walk(&mut r);
        r.finish()?;
        self.now = cycle;
        Ok(())
    }

    /// Restores a base snapshot plus an in-order delta chain — the
    /// incremental-checkpoint path. Equivalent to materializing the final
    /// snapshot with [`Snapshot::apply_delta`] and restoring it, and
    /// proven byte-for-byte identical to a full-snapshot restore by the
    /// round-trip suites.
    ///
    /// # Errors
    ///
    /// Any [`Snapshot::apply_delta`] failure — including
    /// [`SnapError::DeltaBaseMismatch`] for out-of-order chains — or any
    /// [`Platform::restore`] failure on the materialized snapshot.
    pub fn restore_chain(
        &mut self,
        base: &Snapshot,
        deltas: &[SnapDelta],
    ) -> Result<(), SnapError> {
        if deltas.is_empty() {
            return self.restore(base);
        }
        let mut snap = base.apply_delta(&deltas[0])?;
        for d in &deltas[1..] {
            snap = snap.apply_delta(d)?;
        }
        self.restore(&snap)
    }

    /// Aggregated statistics across the whole platform.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for f in &self.fpgas {
            s.merge(f.shell().stats());
            s.merge(f.xbar().stats());
            for n in f.nodes() {
                s.merge(n.chipset().stats());
                s.merge(n.chipset().memctl().stats());
                // The DRAM model's own counters (`dram.req`, `dram.bytes`,
                // `dram.oob`, fault spikes) were historically dropped here
                // — only the controller's `memctl.*` made it up.
                s.merge(n.chipset().memctl().dram().stats());
                s.merge(n.chipset().bridge_stats());
                n.merge_mesh_stats_into(&mut s);
                for t in 0..n.tile_count() {
                    n.tile(t as TileId).bpc().merge_stats_into(&mut s);
                    n.tile(t as TileId).llc().merge_stats_into(&mut s);
                }
            }
        }
        if let Some(eth) = &self.eth {
            eth.merge_stats(&mut s);
        }
        if self.cfg.fault.as_ref().is_some_and(|spec| spec.links) {
            let (delayed, duplicated) = self.links.iter().fold((0, 0), |(d, u), (_, l)| {
                let (ld, lu) = l.fault_counts();
                (d + ld, u + lu)
            });
            s.add("fault.link_delayed", delayed);
            s.add("fault.link_duplicated", duplicated);
            if let Some(eth) = &self.eth {
                let (d, u) = eth.fault_counts();
                s.add("fault.eth_delayed", d);
                s.add("fault.eth_duplicated", u);
            }
        }
        s
    }

    /// Enables or disables cycle-stamped event tracing in every component:
    /// PCIe links, crossbars, meshes, memory controllers, private caches,
    /// LLC slices, and the host-side epoch lane.
    ///
    /// Tracing defaults to off; with the `trace` feature compiled out of
    /// `smappic-sim` this call is a no-op and recording costs nothing.
    pub fn set_tracing(&mut self, on: bool) {
        self.host_trace.set_enabled(on);
        for (_, link) in &mut self.links {
            link.trace_mut().set_enabled(on);
        }
        for f in &mut self.fpgas {
            f.xbar_mut().trace_mut().set_enabled(on);
            for li in 0..f.nodes().len() {
                let node = f.node_mut(li);
                node.mesh_mut().trace_mut().set_enabled(on);
                node.chipset_mut().memctl_mut().trace_mut().set_enabled(on);
                for t in 0..node.tile_count() {
                    let tile = node.tile_mut(t as TileId);
                    tile.bpc_mut().trace_mut().set_enabled(on);
                    tile.llc_mut().trace_mut().set_enabled(on);
                }
            }
        }
    }

    /// Drains every component's trace buffer into one [`TraceSink`],
    /// labelled `(fpga, lane)`. Lane names are stable across runs:
    /// `pcie:a-b`, `xbar`, `nodeN.noc`, `nodeN.dram`, `nodeN.tileT.bpc`,
    /// `nodeN.tileT.llc`, and `host` (epoch boundaries, on FPGA 0).
    pub fn take_trace(&mut self) -> TraceSink {
        let mut sink = TraceSink::new();
        sink.absorb(0, "host", &mut self.host_trace);
        for ((a, b), link) in &mut self.links {
            sink.absorb(*a as u32, &format!("pcie:{a}-{b}"), link.trace_mut());
        }
        for fi in 0..self.fpgas.len() {
            let f = &mut self.fpgas[fi];
            sink.absorb(fi as u32, "xbar", f.xbar_mut().trace_mut());
            for li in 0..f.nodes().len() {
                let g = fi * self.cfg.nodes_per_fpga + li;
                let node = f.node_mut(li);
                sink.absorb(fi as u32, &format!("node{g}.noc"), node.mesh_mut().trace_mut());
                sink.absorb(
                    fi as u32,
                    &format!("node{g}.dram"),
                    node.chipset_mut().memctl_mut().trace_mut(),
                );
                for t in 0..node.tile_count() {
                    let tile = node.tile_mut(t as TileId);
                    sink.absorb(
                        fi as u32,
                        &format!("node{g}.tile{t}.bpc"),
                        tile.bpc_mut().trace_mut(),
                    );
                    sink.absorb(
                        fi as u32,
                        &format!("node{g}.tile{t}.llc"),
                        tile.llc_mut().trace_mut(),
                    );
                }
            }
        }
        sink
    }

    /// The platform's unified metrics: every counter from
    /// [`Platform::stats`] plus the latency/shape histograms, merged in a
    /// fixed component order so two equivalent runs produce bit-identical
    /// registries.
    ///
    /// Architectural entries (everything except the `host.`-prefixed
    /// stepper diagnostics) are identical between the serial and
    /// epoch-parallel steppers; compare with
    /// [`MetricsRegistry::architectural`].
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.merge_counters(&self.stats());
        for (_, link) in &self.links {
            m.merge_histogram("pcie.rtt", link.rtt());
        }
        for f in &self.fpgas {
            for n in f.nodes() {
                m.merge_histogram("noc.hops", n.mesh_hops());
                m.merge_histogram("dram.latency", n.chipset().memctl().latency());
                for t in 0..n.tile_count() {
                    m.merge_histogram("bpc.miss_latency", n.tile(t as TileId).bpc().miss_latency());
                    m.merge_histogram("llc.miss_latency", n.tile(t as TileId).llc().miss_latency());
                }
            }
        }
        m.merge_histogram("host.epoch_width", &self.host_epochs);
        // Flow-control layer: every Port's pushes/stalls/peak counters and
        // occupancy histogram, under stable dotted names rooted in the
        // topology (`port.fpga0.shell.in_req.*`, `port.node3.tile1.bpc
        // .noc_out.*`, ...). Same fixed walk order as the stats merge, so
        // equivalent runs produce bit-identical registries.
        for (fi, f) in self.fpgas.iter().enumerate() {
            f.shell().merge_port_metrics(&format!("fpga{fi}.shell"), &mut m);
            f.xbar().merge_port_metrics(&format!("fpga{fi}.xbar"), &mut m);
            for (li, n) in f.nodes().iter().enumerate() {
                let g = fi * self.cfg.nodes_per_fpga + li;
                n.merge_port_metrics(&format!("node{g}"), &mut m);
            }
        }
        if let Some(eth) = &self.eth {
            // Fabric hop meters sample occupancy at pump-call time, which
            // the grouped drivers batch differently from the per-cycle
            // reference — stepper diagnostics, so they live under `host.`
            // and are stripped by [`MetricsRegistry::architectural`]. The
            // deterministic fabric counters (`eth.frames`, `eth.bytes`)
            // come in through [`Platform::stats`] above.
            let mut fabric = MetricsRegistry::new();
            eth.merge_port_metrics("eth", &mut fabric);
            for (name, v) in fabric.counters().iter() {
                m.add_counter(&format!("host.{name}"), v);
            }
            for (name, h) in fabric.histograms() {
                m.merge_histogram(&format!("host.{name}"), h);
            }
        }
        m
    }

    /// Items currently in flight across the interconnect: PCIe links
    /// (shapers plus fault-stage jitter buffers) and, when present, the
    /// Ethernet fabric (NIC links, switch queues, spine, jitter).
    pub fn links_in_flight(&self) -> usize {
        self.links.iter().map(|(_, l)| l.in_flight()).sum::<usize>()
            + self.eth.as_ref().map_or(0, EthFabric::in_flight)
    }

    /// A hash of every monotone architectural-progress indicator: engine
    /// retirement and completion, shell traffic counts, NoC deliveries,
    /// and link byte/occupancy state. Two samples with equal signatures
    /// mean no observable forward progress happened between them — the
    /// Watchdog's livelock criterion. (Equal signatures on *different*
    /// states would need an FNV collision on top of frozen counters;
    /// acceptable for a diagnostic.)
    pub fn progress_signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(FNV_PRIME);
        let mut h = FNV_OFFSET;
        for f in &self.fpgas {
            h = fold(h, f.shell().stats().get("shell.in_req"));
            h = fold(h, f.shell().stats().get("shell.out_req"));
            for n in f.nodes() {
                h = fold(h, n.mesh_stats("noc.delivered"));
                for t in 0..n.tile_count() {
                    let tile = n.tile(t as TileId);
                    h = fold(h, tile.engine().progress());
                    h = fold(h, u64::from(tile.engine().is_done()));
                }
            }
        }
        for (_, l) in &self.links {
            h = fold(h, l.bytes_transferred());
            h = fold(h, l.in_flight() as u64);
        }
        if let Some(eth) = &self.eth {
            h = fold(h, eth.bytes_transferred());
            h = fold(h, eth.in_flight() as u64);
        }
        h
    }

    /// [`Platform::run_until_idle`] under Watchdog supervision: runs in
    /// `check_interval` chunks (serial or epoch-parallel stepper per
    /// `parallel`), sampling the progress signature between chunks.
    ///
    /// Returns `Ok(true)` on quiescence, `Ok(false)` when `max` ran out
    /// while still making progress, and `Err(report)` when the signature
    /// froze for `stall_limit` cycles — a livelock (e.g. a core spinning
    /// on a flag stuck behind a blackholed link) converted into a
    /// structured [`FaultReport`] instead of a hang.
    pub fn run_until_idle_watched(
        &mut self,
        max: u64,
        wcfg: &WatchdogConfig,
        parallel: bool,
    ) -> Result<bool, Box<FaultReport>> {
        let mut wd = Watchdog::new(wcfg.clone());
        wd.observe(self.now, self.progress_signature());
        let mut spent = 0u64;
        while spent < max {
            let chunk = wcfg.check_interval.max(1).min(max - spent);
            let before = self.now;
            let done = if parallel {
                self.run_until_idle_parallel(chunk)
            } else {
                self.run_until_idle(chunk)
            };
            if done {
                return Ok(true);
            }
            // Guarantee termination even if a stepper made no visible
            // cycle progress (cannot happen today; belt and braces).
            spent += (self.now - before).max(1);
            if let Some(stalled_since) = wd.observe(self.now, self.progress_signature()) {
                return Err(Box::new(FaultReport {
                    detected_at: self.now,
                    stalled_since,
                    stalled_for: self.now - stalled_since,
                    signature: self.progress_signature(),
                    fpga_idle: self.fpgas.iter().map(Fpga::is_idle).collect(),
                    links_in_flight: self.links_in_flight(),
                    stats: self.stats().to_string(),
                }));
            }
        }
        Ok(self.is_idle())
    }
}
