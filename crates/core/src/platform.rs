//! The full prototype: FPGAs, PCIe fabric, and the host machine.

use smappic_axi::{AxiReq, HardShell, PcieItem, PcieLink, ShellRoute};
use smappic_coherence::Homing;
use smappic_isa::Image;
use smappic_noc::{line_of, Gid, NodeId, TileId};
use smappic_sim::{Cycle, Stats};
use smappic_tile::{AddrMap, Engine};

use crate::config::{Config, CLINT_BASE, PLIC_BASE, SD_CTL_BASE, UART0_BASE, UART1_BASE};
use crate::fpga::Fpga;
use crate::node::Node;
use crate::uart::HostSerial;

/// The assembled SMAPPIC prototype plus its host machine.
///
/// The host side models what the paper's host programs do: create virtual
/// serial devices for the UART tunnels, load programs and disk images into
/// FPGA DRAM over PCIe, and start/stop runs. The loader uses a functional
/// backdoor (it does not consume simulated cycles), mirroring how the real
/// flow loads memory before releasing reset.
#[derive(Debug)]
pub struct Platform {
    cfg: Config,
    homing: Homing,
    fpgas: Vec<Fpga>,
    /// links[i][j] for i < j.
    links: Vec<((usize, usize), PcieLink)>,
    now: Cycle,
}

impl Platform {
    /// Builds the prototype described by `cfg`, with idle engines in every
    /// tile; install cores with [`Platform::set_engine`] (the workload
    /// layer provides builders that do this for whole experiments).
    pub fn new(cfg: Config) -> Self {
        let homing = Homing::new(
            cfg.homing_mode(),
            cfg.total_nodes() as u16,
            cfg.tiles_per_node as u16,
        );
        let fpgas: Vec<Fpga> = (0..cfg.fpgas).map(|i| Fpga::new(&cfg, i, homing)).collect();
        let p = &cfg.params;
        let mut links = Vec::new();
        for i in 0..cfg.fpgas {
            for j in (i + 1)..cfg.fpgas {
                links.push((
                    (i, j),
                    PcieLink::new(p.pcie_one_way_latency, p.pcie_bytes_per_cycle),
                ));
            }
        }
        Self { cfg, homing, fpgas, links, now: 0 }
    }

    /// The configuration this platform was built from.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The homing function (workload builders use it for placement).
    pub fn homing(&self) -> Homing {
        self.homing
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Wall-clock seconds the modeled prototype would have taken.
    pub fn modeled_seconds(&self) -> f64 {
        self.now as f64 / (f64::from(self.cfg.params.frequency_mhz) * 1e6)
    }

    fn locate(&self, node: usize) -> (usize, usize) {
        (node / self.cfg.nodes_per_fpga, node % self.cfg.nodes_per_fpga)
    }

    /// Access node `g` (global index).
    pub fn node(&self, g: usize) -> &Node {
        let (f, l) = self.locate(g);
        &self.fpgas[f].nodes()[l]
    }

    /// Mutable access to node `g`.
    pub fn node_mut(&mut self, g: usize) -> &mut Node {
        let (f, l) = self.locate(g);
        self.fpgas[f].node_mut(l)
    }

    /// Installs an engine into tile `t` of node `g`.
    pub fn set_engine(&mut self, g: usize, t: TileId, engine: Box<dyn Engine>) {
        self.node_mut(g).set_engine(t, engine);
    }

    /// The standard address map for a core on node `g`: UARTs, CLINT, and
    /// the SD controller of its own chipset. Accelerator windows are added
    /// by the caller with [`AddrMap::add_device`].
    pub fn addr_map(&self, g: usize) -> AddrMap {
        let chipset = Gid::chipset(NodeId(g as u16));
        let mut m = AddrMap::new();
        m.add_device(UART0_BASE, 0x1000, chipset);
        m.add_device(UART1_BASE, 0x1000, chipset);
        m.add_device(CLINT_BASE, 0x10000, chipset);
        m.add_device(SD_CTL_BASE, 0x1000, chipset);
        m.add_device(PLIC_BASE, 0x40_0000, chipset);
        m
    }

    /// Host backdoor: writes bytes into the prototype's unified memory,
    /// scattering each cache line into its home node's DRAM.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) {
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr + off as u64;
            let line_end = line_of(a) + 64;
            let chunk = ((line_end - a) as usize).min(bytes.len() - off);
            let home = self.homing.home_node(line_of(a), NodeId(0));
            self.node_mut(home.0 as usize)
                .chipset_mut()
                .memctl_mut()
                .dram_mut()
                .write_bytes(a, &bytes[off..off + chunk]);
            off += chunk;
        }
    }

    /// Host backdoor: reads bytes from unified memory (gathering across
    /// home nodes). Only meaningful when caches are clean/quiescent.
    pub fn read_mem(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let line_end = line_of(a) + 64;
            let chunk = ((line_end - a) as usize).min(len - off);
            let home = self.homing.home_node(line_of(a), NodeId(0));
            out.extend(self.node(home.0 as usize).chipset().memctl().dram().read_bytes(a, chunk));
            off += chunk;
        }
        out
    }

    /// Loads an assembled image at its base address.
    pub fn load_image(&mut self, img: &Image) {
        self.write_mem(img.base, &img.bytes);
    }

    /// Host backdoor for independent-node prototypes (§4.5's 1x4x2): writes
    /// into one specific node's DRAM, since without unified memory each
    /// node is a separate system with its own address space.
    pub fn write_mem_node(&mut self, g: usize, addr: u64, bytes: &[u8]) {
        self.node_mut(g).chipset_mut().memctl_mut().dram_mut().write_bytes(addr, bytes);
    }

    /// Loads an image into one node of an independent-node prototype.
    pub fn load_image_node(&mut self, g: usize, img: &Image) {
        self.write_mem_node(g, img.base, &img.bytes);
    }

    /// Host SD driver: injects a disk image into node `g`'s SD data region
    /// (the top half of that node's DRAM, §3.4.2).
    pub fn load_disk(&mut self, g: usize, image: &[u8]) {
        self.node_mut(g)
            .chipset_mut()
            .memctl_mut()
            .dram_mut()
            .write_bytes(crate::config::SD_DATA_BASE, image);
    }

    /// The host's virtual serial device for node `g`'s console UART.
    pub fn console_mut(&mut self, g: usize) -> &mut HostSerial {
        self.node_mut(g).chipset_mut().uart0.host_mut()
    }

    /// The host's virtual serial device for node `g`'s data UART (the
    /// prototype's network link).
    pub fn serial_mut(&mut self, g: usize) -> &mut HostSerial {
        self.node_mut(g).chipset_mut().uart1.host_mut()
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until `pred` returns true, up to `max` cycles. Returns true
    /// when the predicate fired.
    pub fn run_until(&mut self, max: u64, mut pred: impl FnMut(&Platform) -> bool) -> bool {
        for _ in 0..max {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    /// Runs until every engine finished and all machinery drained, up to
    /// `max` cycles. Returns true on quiescence.
    pub fn run_until_idle(&mut self, max: u64) -> bool {
        // Cheap idle check every few cycles keeps the hot loop tight.
        for _ in 0..max {
            self.step();
            if self.now % 64 == 0 && self.is_idle() {
                return true;
            }
        }
        self.is_idle()
    }

    /// True when every FPGA and link is quiescent.
    pub fn is_idle(&self) -> bool {
        self.fpgas.iter().all(Fpga::is_idle) && self.links.iter().all(|(_, l)| l.is_idle())
    }

    /// Advances the platform one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        for f in &mut self.fpgas {
            f.tick(now);
        }
        self.pump_pcie(now);
        self.now += 1;
    }

    /// Moves traffic between Hard Shells over the PCIe links.
    fn pump_pcie(&mut self, now: Cycle) {
        // Outbound requests and responses onto links.
        for fi in 0..self.fpgas.len() {
            loop {
                let Some((route, req)) = self.fpgas[fi].shell_mut().pop_outbound() else { break };
                match route {
                    ShellRoute::Fpga(peer) => {
                        // Strip the window so the peer sees bridge offsets.
                        let stripped = match req {
                            AxiReq::Write(mut w) => {
                                w.addr = HardShell::window_offset(peer, w.addr)
                                    .expect("shell routed by window");
                                AxiReq::Write(w)
                            }
                            AxiReq::Read(mut r) => {
                                r.addr = HardShell::window_offset(peer, r.addr)
                                    .expect("shell routed by window");
                                AxiReq::Read(r)
                            }
                        };
                        self.link_send(now, fi, peer, PcieItem::Req(stripped));
                    }
                    ShellRoute::Host => {
                        // Host-directed writes (management) are absorbed.
                    }
                }
            }
            loop {
                let Some((peer, resp)) = self.fpgas[fi].shell_mut().pop_outbound_resp() else {
                    break;
                };
                self.link_send(now, fi, peer, PcieItem::Resp(resp));
            }
        }
        // Deliveries off links.
        for li in 0..self.links.len() {
            let ((a, b), _) = self.links[li];
            loop {
                let item = {
                    let (_, link) = &mut self.links[li];
                    link.recv_at_b(now)
                };
                match item {
                    Some(PcieItem::Req(req)) => {
                        let _ = self.fpgas[b].shell_mut().push_inbound(a, req);
                    }
                    Some(PcieItem::Resp(resp)) => {
                        let _ = self.fpgas[b].shell_mut().push_inbound_resp(resp);
                    }
                    None => break,
                }
            }
            loop {
                let item = {
                    let (_, link) = &mut self.links[li];
                    link.recv_at_a(now)
                };
                match item {
                    Some(PcieItem::Req(req)) => {
                        let _ = self.fpgas[a].shell_mut().push_inbound(b, req);
                    }
                    Some(PcieItem::Resp(resp)) => {
                        let _ = self.fpgas[a].shell_mut().push_inbound_resp(resp);
                    }
                    None => break,
                }
            }
        }
    }

    fn link_send(&mut self, now: Cycle, from: usize, to: usize, item: PcieItem) {
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let (_, link) = self
            .links
            .iter_mut()
            .find(|((a, b), _)| (*a, *b) == (lo, hi))
            .expect("links form a full mesh over the FPGAs");
        if from == lo {
            link.send_from_a(now, item);
        } else {
            link.send_from_b(now, item);
        }
    }

    /// Aggregated statistics across the whole platform.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for f in &self.fpgas {
            for n in f.nodes() {
                s.merge(n.chipset().stats());
                s.merge(n.chipset().memctl().stats());
                s.merge(n.chipset().bridge_stats());
                s.merge(n.mesh_stats_all());
                for t in 0..n.tile_count() {
                    s.merge(n.tile(t as TileId).bpc().stats());
                    s.merge(n.tile(t as TileId).llc().stats());
                }
            }
        }
        s
    }
}
