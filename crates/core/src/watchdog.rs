//! Livelock detection: the platform Watchdog and its structured report.
//!
//! Injected timing faults must never hang a run silently — a blackholed
//! link, for example, leaves a core spinning on a flag that will never be
//! written. The Watchdog samples the platform's *progress signature* (a
//! hash of every monotone architectural-progress counter: engine
//! retirement, shell traffic, NoC deliveries, link bytes) at a fixed
//! interval; when the signature freezes for longer than the configured
//! bound while the platform is not quiescent, the run is declared
//! livelocked and a [`FaultReport`] describes the stuck state instead of
//! the test timing out.

use smappic_sim::Cycle;

/// Watchdog tuning.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Declare livelock after this many cycles without any change in the
    /// progress signature (must comfortably exceed the longest legitimate
    /// quiet stretch — PCIe + DRAM + injected delays).
    pub stall_limit: Cycle,
    /// How often (in cycles) the signature is sampled. Detection latency
    /// is `stall_limit + check_interval` in the worst case.
    pub check_interval: Cycle,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { stall_limit: 50_000, check_interval: 1_000 }
    }
}

/// A structured description of a detected livelock.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Cycle at which the Watchdog declared livelock.
    pub detected_at: Cycle,
    /// Last cycle at which the progress signature changed.
    pub stalled_since: Cycle,
    /// `detected_at - stalled_since`.
    pub stalled_for: Cycle,
    /// The frozen progress signature (diagnostic fingerprint).
    pub signature: u64,
    /// Per-FPGA idle flags at detection time.
    pub fpga_idle: Vec<bool>,
    /// Items stuck in PCIe links (shapers + fault-stage jitter buffers).
    pub links_in_flight: usize,
    /// Full platform statistics at detection time.
    pub stats: String,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "LIVELOCK detected at cycle {}", self.detected_at)?;
        writeln!(
            f,
            "  no architectural progress since cycle {} ({} cycles)",
            self.stalled_since, self.stalled_for
        )?;
        writeln!(f, "  progress signature: {:#018x}", self.signature)?;
        let idle: Vec<String> =
            self.fpga_idle.iter().map(|i| if *i { "idle" } else { "busy" }.into()).collect();
        writeln!(f, "  fpgas: [{}]", idle.join(", "))?;
        writeln!(f, "  pcie items in flight: {}", self.links_in_flight)?;
        write!(f, "  stats:\n{}", self.stats)
    }
}

/// The stall detector: feed it `(now, signature)` samples; it reports when
/// the signature has been frozen past the limit.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_sig: Option<u64>,
    last_change_at: Cycle,
}

impl Watchdog {
    /// Creates a watchdog; the first observation initializes the baseline.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Self { cfg, last_sig: None, last_change_at: 0 }
    }

    /// The configured tuning.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// The current stall-tracking state as `(last_signature,
    /// last_change_at)`. Together with [`Watchdog::resume`] this lets a
    /// scheduler park a watched job and re-arm an equivalent watchdog on
    /// another worker without resetting the stall clock — a job frozen
    /// across a migration stays frozen, it does not get a fresh
    /// `stall_limit` per resume.
    pub fn state(&self) -> (Option<u64>, Cycle) {
        (self.last_sig, self.last_change_at)
    }

    /// Reconstructs a watchdog from a parked [`Watchdog::state`], so
    /// detection behaves as if the same watchdog had observed the whole
    /// run.
    pub fn resume(cfg: WatchdogConfig, last_sig: Option<u64>, last_change_at: Cycle) -> Self {
        Self { cfg, last_sig, last_change_at }
    }

    /// Records a sample. Returns `Some(stalled_since)` when the signature
    /// has not changed for at least `stall_limit` cycles.
    pub fn observe(&mut self, now: Cycle, signature: u64) -> Option<Cycle> {
        match self.last_sig {
            Some(prev) if prev == signature => (now.saturating_sub(self.last_change_at)
                >= self.cfg.stall_limit)
                .then_some(self.last_change_at),
            _ => {
                self.last_sig = Some(signature);
                self.last_change_at = now;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_after_the_limit() {
        let mut wd = Watchdog::new(WatchdogConfig { stall_limit: 100, check_interval: 10 });
        assert_eq!(wd.observe(0, 7), None);
        assert_eq!(wd.observe(50, 7), None);
        assert_eq!(wd.observe(99, 7), None);
        assert_eq!(wd.observe(100, 7), Some(0));
    }

    #[test]
    fn progress_resets_the_clock() {
        let mut wd = Watchdog::new(WatchdogConfig { stall_limit: 100, check_interval: 10 });
        assert_eq!(wd.observe(0, 1), None);
        assert_eq!(wd.observe(90, 2), None); // progress
        assert_eq!(wd.observe(180, 2), None); // only 90 stalled
        assert_eq!(wd.observe(190, 2), Some(90));
    }

    #[test]
    fn report_renders_human_readably() {
        let r = FaultReport {
            detected_at: 60_000,
            stalled_since: 10_000,
            stalled_for: 50_000,
            signature: 0xDEAD_BEEF,
            fpga_idle: vec![false, true],
            links_in_flight: 1,
            stats: "shell.out_req: 4".into(),
        };
        let s = r.to_string();
        assert!(s.contains("LIVELOCK"));
        assert!(s.contains("60000"));
        assert!(s.contains("busy, idle"));
    }
}
