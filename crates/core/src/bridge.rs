//! The inter-node bridge: NoC ↔ AXI4 encapsulation with credit-based flow
//! control (§3.1, Fig 4).

use std::collections::HashMap;

use smappic_axi::{AxiRead, AxiReadResp, AxiReq, AxiResp, AxiWrite, AxiWriteResp};
use smappic_noc::{NodeId, Packet};
use smappic_sim::{
    Cycle, MetricsRegistry, Port, Ring, SaveState, SnapReader, SnapWriter, Stats, TrafficShaper,
};

use crate::codec::{decode_packet, encode_packet};

/// Byte offset window each destination node owns in the bridge address
/// space (16 MiB per node; well under an FPGA's PCIe window).
pub const NODE_WINDOW: u64 = 1 << 24;

/// Bit set in the address of credit-return read requests (the paper's
/// "ar channel: request for credits return").
const CREDIT_FLAG: u64 = 1 << 4;

/// Encodes the bridge address carrying transfer info: destination node,
/// source node, and flags — Fig 4's "aw channel: transfer info".
pub fn bridge_addr(dst: NodeId, src: NodeId, credit_req: bool) -> u64 {
    (u64::from(dst.0) * NODE_WINDOW)
        | (u64::from(src.0) << 8)
        | if credit_req { CREDIT_FLAG } else { 0 }
}

/// Destination node encoded in a bridge address.
pub fn addr_dst(addr: u64) -> NodeId {
    NodeId((addr / NODE_WINDOW) as u16)
}

/// Source node encoded in a bridge address. The source field spans bits
/// 8..24 — the full `u16` node-id space — so rack-scale prototypes with
/// more than 256 nodes encode losslessly (the old 8-bit mask aliased node
/// 256 onto node 0 and broke credit returns).
pub fn addr_src(addr: u64) -> NodeId {
    NodeId(((addr >> 8) & 0xFFFF) as u16)
}

/// Initial send credits per destination node (receive-buffer slots the
/// peer guarantees).
const INITIAL_CREDITS: u32 = 32;
/// Below this many remaining credits the sender asks for returns.
const LOW_WATER: u32 = 12;

/// The inter-node bridge of one node.
///
/// **Send path**: NoC packets whose destination is another node are
/// encoded ([`encode_packet`]) into AXI4 write bursts whose address carries
/// dest/source node IDs; a [`TrafficShaper`] applies the §3.5 performance
/// model. Writes consume *credits*; when they run low the bridge issues an
/// AXI read to the peer, which answers with the number of freed slots —
/// deadlock-free flow control exactly as the paper describes.
///
/// **Receive path**: incoming writes are decoded back into NoC packets and
/// handed to the chipset; draining them frees credits reported on the next
/// credit read.
#[derive(Debug)]
pub struct InterNodeBridge {
    node: NodeId,
    shaper: TrafficShaper<AxiReq>,
    out_req: Port<AxiReq>,
    /// Packets blocked on credits, per destination node — unmetered
    /// micro-queues (the `bridge.credit_stall` counter already reports
    /// this congestion).
    blocked: HashMap<u16, Ring<Packet>>,
    credits: HashMap<u16, u32>,
    credit_req_outstanding: HashMap<u16, bool>,
    /// Freed receive slots per source node, returned on credit reads.
    freed: HashMap<u16, u32>,
    incoming: Port<Packet>,
    resp_for_peer: Port<(u16, AxiResp)>,
    next_id: u16,
    /// Outstanding credit reads: AXI id → destination node.
    pending_reads: HashMap<u16, u16>,
    stats: Stats,
}

impl InterNodeBridge {
    /// Creates the bridge for `node` with the given shaper parameters
    /// (`extra_latency` cycles, `bytes_per_cycle` bandwidth).
    pub fn new(node: NodeId, extra_latency: Cycle, bytes_per_cycle: u64) -> Self {
        Self {
            node,
            shaper: TrafficShaper::new(bytes_per_cycle.max(1), 1, extra_latency),
            out_req: Port::elastic_with("out_req", 8),
            blocked: HashMap::new(),
            credits: HashMap::new(),
            credit_req_outstanding: HashMap::new(),
            freed: HashMap::new(),
            incoming: Port::elastic_with("incoming", 8),
            resp_for_peer: Port::elastic_with("resp_for_peer", 8),
            next_id: 0,
            pending_reads: HashMap::new(),
            stats: Stats::new(),
        }
    }

    /// Counters (`bridge.sent`, `bridge.recv`, `bridge.credit_stall`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Merges the bridge's port meters (AXI egress, decoded ingress, peer
    /// responses) into `m` under `port.{prefix}...`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        self.out_req.meter().merge_into(prefix, m);
        self.incoming.meter().merge_into(prefix, m);
        self.resp_for_peer.meter().merge_into(prefix, m);
    }

    fn alloc_id(&mut self) -> u16 {
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            if !self.pending_reads.contains_key(&id) {
                return id;
            }
        }
    }

    /// Node side: sends a packet to another node. Always accepted; credits
    /// and shaping happen inside.
    pub fn send(&mut self, now: Cycle, pkt: Packet) {
        debug_assert_ne!(pkt.dst.node, self.node, "bridge only carries inter-node traffic");
        let dst = pkt.dst.node.0;
        let credits = self.credits.entry(dst).or_insert(INITIAL_CREDITS);
        if *credits == 0 || self.blocked.get(&dst).is_some_and(|q| !q.is_empty()) {
            self.blocked.entry(dst).or_default().push_back(pkt);
            self.stats.incr("bridge.credit_stall");
        } else {
            *credits -= 1;
            self.encode_and_ship(now, pkt);
        }
        self.maybe_request_credits(now);
    }

    fn encode_and_ship(&mut self, now: Cycle, pkt: Packet) {
        let bytes = encode_packet(&pkt);
        let addr = bridge_addr(pkt.dst.node, self.node, false);
        let wire = bytes.len() as u64;
        let req = AxiReq::Write(AxiWrite::new(addr, bytes, 0));
        self.shaper.push(now, wire, req);
        self.stats.incr("bridge.sent");
    }

    fn maybe_request_credits(&mut self, now: Cycle) {
        let dsts: Vec<u16> = self.credits.keys().copied().collect();
        for dst in dsts {
            let c = self.credits[&dst];
            let blocked = self.blocked.get(&dst).map_or(0, Ring::len);
            if (c < LOW_WATER || blocked > 0)
                && !self.credit_req_outstanding.get(&dst).copied().unwrap_or(false)
            {
                let id = self.alloc_id();
                self.pending_reads.insert(id, dst);
                self.credit_req_outstanding.insert(dst, true);
                let addr = bridge_addr(NodeId(dst), self.node, true);
                self.shaper.push(now, 8, AxiReq::Read(AxiRead::new(addr, 8, id)));
            }
        }
    }

    /// Node side: next packet received from a remote node.
    pub fn recv(&mut self) -> Option<Packet> {
        let pkt = self.incoming.pop()?;
        // Draining frees a receive slot: report it on the next credit read.
        *self.freed.entry(pkt.src.node.0).or_insert(0) += 1;
        Some(pkt)
    }

    /// AXI side: next outgoing request (after shaping), for the FPGA's
    /// crossbar. Addresses are bridge offsets; the FPGA adds the PCIe
    /// window when leaving the chip.
    pub fn axi_pop_req(&mut self, now: Cycle) -> Option<AxiReq> {
        if let Some(req) = self.shaper.pop_ready(now) {
            self.out_req.push(req);
        }
        self.out_req.pop()
    }

    /// AXI side: a request from a peer bridge arrives.
    pub fn axi_push_req(&mut self, _now: Cycle, req: AxiReq) {
        match req {
            AxiReq::Write(w) => {
                match decode_packet(&w.data) {
                    Some(pkt) => {
                        self.incoming.push(pkt);
                        self.stats.incr("bridge.recv");
                    }
                    None => self.stats.incr("bridge.decode_error"),
                }
                self.resp_for_peer.push((
                    addr_src(w.addr).0,
                    AxiResp::Write(AxiWriteResp { id: w.id, ok: true }),
                ));
            }
            AxiReq::Read(r) => {
                // Credit-return request: answer with freed slots.
                let src = addr_src(r.addr).0;
                let freed = self.freed.insert(src, 0).unwrap_or(0);
                self.resp_for_peer.push((
                    src,
                    AxiResp::Read(AxiReadResp {
                        id: r.id,
                        data: u64::from(freed).to_le_bytes().to_vec(),
                    }),
                ));
                self.stats.add("bridge.credits_returned", u64::from(freed));
            }
        }
    }

    /// AXI side: responses this bridge owes to peers (b-channel acks and
    /// r-channel credit returns), tagged with the peer node.
    pub fn axi_pop_resp_for_peer(&mut self) -> Option<(u16, AxiResp)> {
        self.resp_for_peer.pop()
    }

    /// AXI side: a response to one of our own requests arrives.
    pub fn axi_push_resp(&mut self, now: Cycle, resp: AxiResp) {
        match resp {
            AxiResp::Write(_) => {} // posted writes: acks are bookkeeping
            AxiResp::Read(r) => {
                let Some(dst) = self.pending_reads.remove(&r.id) else {
                    self.stats.incr("bridge.orphan_resp");
                    return;
                };
                self.credit_req_outstanding.insert(dst, false);
                let freed = r
                    .data
                    .get(..8)
                    .map_or(0, |b| u64::from_le_bytes(b.try_into().expect("8 bytes")) as u32);
                let entry = self.credits.entry(dst).or_insert(0);
                *entry = (*entry + freed).min(INITIAL_CREDITS);
                // Release blocked packets with the new credits.
                while *self.credits.get(&dst).expect("entry exists") > 0 {
                    let Some(q) = self.blocked.get_mut(&dst) else { break };
                    let Some(pkt) = q.pop_front() else { break };
                    *self.credits.get_mut(&dst).expect("entry exists") -= 1;
                    self.encode_and_ship(now, pkt);
                }
                self.maybe_request_credits(now);
            }
        }
    }

    /// True when decoded packets from remote nodes are waiting for the
    /// chipset to collect via [`InterNodeBridge::recv`]. This is the only
    /// bridge channel the chipset's own tick drains (the FPGA pumps the
    /// AXI side every cycle regardless), so it is the exact per-cycle
    /// probe of the chipset's component sleep.
    pub fn has_incoming(&self) -> bool {
        !self.incoming.is_empty()
    }

    /// True when the FPGA's per-cycle AXI pump would move nothing at this
    /// bridge on cycle `now`: no queued egress request, no shaped request
    /// matured, and no response owed to a peer. Exact — under this
    /// predicate [`InterNodeBridge::axi_pop_req`] and
    /// [`InterNodeBridge::axi_pop_resp_for_peer`] return `None` with no
    /// side effects, so the pump may be skipped bit-identically.
    pub fn axi_quiet(&self, now: Cycle) -> bool {
        self.out_req.is_empty()
            && self.resp_for_peer.is_empty()
            && self.shaper.front_ready_at().is_none_or(|t| t > now)
    }

    /// When the next shaped request matures, if any — the cycle at which
    /// [`InterNodeBridge::axi_quiet`] stops holding on its own.
    pub fn next_axi_ready(&self) -> Option<Cycle> {
        self.shaper.front_ready_at()
    }

    /// True when nothing is queued or in flight at this bridge.
    pub fn is_idle(&self) -> bool {
        self.shaper.is_empty()
            && self.out_req.is_empty()
            && self.incoming.is_empty()
            && self.resp_for_peer.is_empty()
            && self.blocked.values().all(Ring::is_empty)
    }
}

impl SaveState for InterNodeBridge {
    fn save(&self, w: &mut SnapWriter) {
        // Every HashMap is serialized in sorted key order for deterministic
        // snapshot bytes. The node id and shaper timing are configuration.
        self.shaper.save(w);
        self.out_req.save(w);
        let mut dsts: Vec<u16> = self.blocked.keys().copied().collect();
        dsts.sort_unstable();
        w.usize(dsts.len());
        for dst in dsts {
            w.u16(dst);
            self.blocked[&dst].save(w);
        }
        let sorted_u32_map = |w: &mut SnapWriter, m: &HashMap<u16, u32>| {
            let mut keys: Vec<u16> = m.keys().copied().collect();
            keys.sort_unstable();
            w.usize(keys.len());
            for k in keys {
                w.u16(k);
                w.u32(m[&k]);
            }
        };
        sorted_u32_map(w, &self.credits);
        let mut keys: Vec<u16> = self.credit_req_outstanding.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u16(k);
            w.bool(self.credit_req_outstanding[&k]);
        }
        sorted_u32_map(w, &self.freed);
        self.incoming.save(w);
        self.resp_for_peer.save(w);
        w.u16(self.next_id);
        let mut ids: Vec<u16> = self.pending_reads.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            w.u16(id);
            w.u16(self.pending_reads[&id]);
        }
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.shaper.restore(r);
        self.out_req.restore(r);
        self.blocked.clear();
        for _ in 0..r.usize() {
            if !r.ok() {
                break;
            }
            let dst = r.u16();
            let mut ring = Ring::default();
            ring.restore(r);
            self.blocked.insert(dst, ring);
        }
        let restore_u32_map = |r: &mut SnapReader, m: &mut HashMap<u16, u32>| {
            m.clear();
            for _ in 0..r.usize() {
                if !r.ok() {
                    break;
                }
                let k = r.u16();
                let v = r.u32();
                m.insert(k, v);
            }
        };
        restore_u32_map(r, &mut self.credits);
        self.credit_req_outstanding.clear();
        for _ in 0..r.usize() {
            if !r.ok() {
                break;
            }
            let k = r.u16();
            let v = r.bool();
            self.credit_req_outstanding.insert(k, v);
        }
        restore_u32_map(r, &mut self.freed);
        self.incoming.restore(r);
        self.resp_for_peer.restore(r);
        self.next_id = r.u16();
        self.pending_reads.clear();
        for _ in 0..r.usize() {
            if !r.ok() {
                break;
            }
            let id = r.u16();
            let dst = r.u16();
            self.pending_reads.insert(id, dst);
        }
        self.stats.restore(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smappic_noc::{Gid, Msg};

    fn pkt(dst: u16, src: u16, line: u64) -> Packet {
        Packet::on_canonical_vn(
            Gid::tile(NodeId(dst), 0),
            Gid::tile(NodeId(src), 0),
            Msg::ReqS { line },
        )
    }

    /// Wires two bridges back to back and pumps until quiescent.
    fn pump_pair(a: &mut InterNodeBridge, b: &mut InterNodeBridge, now: &mut Cycle, cycles: u64) {
        for _ in 0..cycles {
            while let Some(req) = a.axi_pop_req(*now) {
                b.axi_push_req(*now, req);
            }
            while let Some(req) = b.axi_pop_req(*now) {
                a.axi_push_req(*now, req);
            }
            while let Some((peer, resp)) = a.axi_pop_resp_for_peer() {
                assert_eq!(peer, 1);
                b.axi_push_resp(*now, resp);
            }
            while let Some((peer, resp)) = b.axi_pop_resp_for_peer() {
                assert_eq!(peer, 0);
                a.axi_push_resp(*now, resp);
            }
            *now += 1;
        }
    }

    #[test]
    fn address_encoding_roundtrips() {
        let a = bridge_addr(NodeId(3), NodeId(1), false);
        assert_eq!(addr_dst(a), NodeId(3));
        assert_eq!(addr_src(a), NodeId(1));
        assert_eq!(a & CREDIT_FLAG, 0);
        let c = bridge_addr(NodeId(2), NodeId(0), true);
        assert_ne!(c & CREDIT_FLAG, 0);
    }

    #[test]
    fn address_encoding_survives_wide_node_ids() {
        // Pinned regression: the source mask was 8 bits, so node 300's
        // credit-return requests looked like node 44's at rack scale.
        let a = bridge_addr(NodeId(4000), NodeId(300), true);
        assert_eq!(addr_dst(a), NodeId(4000));
        assert_eq!(addr_src(a), NodeId(300));
        assert_ne!(a & CREDIT_FLAG, 0);
        let b = bridge_addr(NodeId(1), NodeId(u16::MAX), false);
        assert_eq!(addr_src(b), NodeId(u16::MAX));
    }

    #[test]
    fn packet_crosses_bridges_intact() {
        let mut a = InterNodeBridge::new(NodeId(0), 0, 64);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 64);
        let original = pkt(1, 0, 0x1040);
        let mut now = 0;
        a.send(now, original.clone());
        pump_pair(&mut a, &mut b, &mut now, 50);
        let got = b.recv().expect("delivered");
        assert_eq!(got, original);
    }

    #[test]
    fn shaper_latency_delays_delivery() {
        let mut a = InterNodeBridge::new(NodeId(0), 100, 64);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 64);
        let mut now = 0;
        a.send(now, pkt(1, 0, 0x40));
        pump_pair(&mut a, &mut b, &mut now, 99);
        assert!(b.recv().is_none(), "must respect the 100-cycle shaper");
        pump_pair(&mut a, &mut b, &mut now, 10);
        assert!(b.recv().is_some());
    }

    #[test]
    fn credits_throttle_and_recover() {
        let mut a = InterNodeBridge::new(NodeId(0), 0, 1_000);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 1_000);
        let mut now = 0;
        // Send 3x the credit budget without draining the receiver.
        let total = INITIAL_CREDITS * 3;
        for i in 0..total {
            a.send(now, pkt(1, 0, u64::from(i) * 64));
        }
        assert!(a.stats().get("bridge.credit_stall") > 0, "must hit the credit wall");
        // Pump while the receiver drains: all packets eventually arrive.
        let mut got = 0;
        for _ in 0..10_000 {
            pump_pair(&mut a, &mut b, &mut now, 1);
            while b.recv().is_some() {
                got += 1;
            }
            if got == total {
                break;
            }
        }
        assert_eq!(got, total, "credit recovery must release blocked packets");
        assert!(a.is_idle());
    }

    #[test]
    fn credit_read_ids_survive_two_u16_wraps() {
        let mut a = InterNodeBridge::new(NodeId(0), 0, 1_000);
        // Park three credit reads for the whole run: their ids (0..=2) stay
        // in `pending_reads`, so `alloc_id` must skip them at every wrap.
        let mut parked = Vec::new();
        for dst in [10u16, 11, 12] {
            let id = a.alloc_id();
            a.pending_reads.insert(id, dst);
            a.credit_req_outstanding.insert(dst, true);
            parked.push((id, dst));
        }
        // Keep the looping destinations above LOW_WATER so responses don't
        // trigger fresh credit reads of their own.
        for dst in 1..=3u16 {
            a.credits.insert(dst, INITIAL_CREDITS);
        }
        // 140k allocations: `next_id` crosses the u16 space twice while
        // the parked ids remain outstanding.
        for i in 0..140_000u64 {
            let dst = 1 + (i % 3) as u16;
            let id = a.alloc_id();
            assert!(
                !parked.iter().any(|&(p, _)| p == id),
                "iteration {i}: allocator reused a live id"
            );
            a.pending_reads.insert(id, dst);
            a.credit_req_outstanding.insert(dst, true);
            a.axi_push_resp(
                i,
                AxiResp::Read(AxiReadResp { id, data: 2u64.to_le_bytes().to_vec() }),
            );
            assert!(!a.pending_reads.contains_key(&id), "iteration {i}: response unmatched");
            assert!(!a.credit_req_outstanding[&dst], "iteration {i}: wrong destination");
        }
        assert_eq!(a.stats().get("bridge.orphan_resp"), 0);
        // The parked reads, answered after two full wraps, still credit
        // their own destinations.
        for (id, dst) in parked {
            a.axi_push_resp(
                0,
                AxiResp::Read(AxiReadResp {
                    id,
                    data: u64::from(INITIAL_CREDITS).to_le_bytes().to_vec(),
                }),
            );
            assert!(!a.credit_req_outstanding[&dst]);
            assert_eq!(a.credits[&dst], INITIAL_CREDITS);
        }
        assert!(a.pending_reads.is_empty());
    }

    #[test]
    fn per_destination_ordering_is_preserved() {
        let mut a = InterNodeBridge::new(NodeId(0), 5, 32);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 32);
        let mut now = 0;
        for i in 0..100u64 {
            a.send(now, pkt(1, 0, i * 64));
        }
        let mut lines = Vec::new();
        for _ in 0..100_000 {
            pump_pair(&mut a, &mut b, &mut now, 1);
            while let Some(p) = b.recv() {
                if let Msg::ReqS { line } = p.msg {
                    lines.push(line / 64);
                }
            }
            if lines.len() == 100 {
                break;
            }
        }
        assert_eq!(lines, (0..100).collect::<Vec<_>>());
    }
}
