//! The FPGA synthesis model: LUT utilization and achievable frequency per
//! configuration (Table 4 of the paper).
//!
//! The paper's numbers come from Vivado synthesis runs against the VU9P.
//! We ship them as a calibration table plus an analytic model fitted to
//! those rows (shell + per-node + per-tile LUT costs) for unseen shapes —
//! documented deviation #5 in DESIGN.md.

/// Result of "synthesizing" a BxC node/tile arrangement for one VU9P FPGA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Synthesis {
    /// Achievable fabric frequency in MHz.
    pub frequency_mhz: u32,
    /// LUT utilization as a percentage of the VU9P.
    pub lut_utilization: f64,
    /// True when the configuration does not fit / close timing.
    pub feasible: bool,
}

/// Calibration rows straight from Table 4: (nodes B, tiles C, MHz, LUT%).
pub const TABLE4: [(usize, usize, u32, f64); 5] =
    [(1, 12, 75, 97.0), (1, 10, 100, 83.0), (2, 4, 100, 73.0), (2, 5, 75, 88.0), (4, 2, 100, 87.0)];

/// Analytic LUT model fitted to Table 4: shell ≈ 9 %, each node's
/// uncore (memory controller, chipset, bridge) ≈ 4 %, each Ariane tile
/// (core + BPC + LLC slice + routers) ≈ 7 %. The 4x2 row sits ~6 % above
/// the plain fit (crossbar + replicated I/O at B=4), captured with a
/// per-extra-node-pair crossbar term.
fn lut_estimate(nodes: usize, tiles_per_node: usize) -> f64 {
    let shell = 9.0;
    let per_node = 4.0;
    let per_tile = 7.0;
    // Crossbar ports grow with node count; negligible below 3 nodes.
    let xbar = match nodes {
        0..=2 => 0.0,
        3 => 3.0,
        _ => 6.0,
    };
    shell + per_node * nodes as f64 + per_tile * (nodes * tiles_per_node) as f64 + xbar
}

/// Synthesizes a BxC arrangement.
///
/// Known Table 4 configurations return the paper's measured numbers;
/// everything else uses the fitted analytic model. Frequency drops to
/// 75 MHz when utilization crosses 85 % (routing congestion dominates
/// timing on a nearly-full VU9P) — except when the calibration table says
/// otherwise, which it does for the 4x2 row (87 % but a short, regular
/// critical path).
pub fn synthesize(nodes: usize, tiles_per_node: usize) -> Synthesis {
    for &(b, c, mhz, lut) in &TABLE4 {
        if b == nodes && c == tiles_per_node {
            return Synthesis { frequency_mhz: mhz, lut_utilization: lut, feasible: true };
        }
    }
    let lut = lut_estimate(nodes, tiles_per_node);
    let feasible = lut <= 100.0 && (1..=4).contains(&nodes);
    let frequency_mhz = if lut > 85.0 { 75 } else { 100 };
    Synthesis { frequency_mhz, lut_utilization: lut, feasible }
}

/// The largest tile count per node that fits at `nodes` nodes per FPGA
/// (paper: "F1 FPGAs can fit at most 12 Ariane tiles").
pub fn max_tiles(nodes: usize) -> usize {
    (1..=64).take_while(|&c| synthesize(nodes, c).feasible).last().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_are_reproduced_exactly() {
        for &(b, c, mhz, lut) in &TABLE4 {
            let s = synthesize(b, c);
            assert_eq!(s.frequency_mhz, mhz, "{b}x{c}");
            assert!((s.lut_utilization - lut).abs() < 1e-9, "{b}x{c}");
            assert!(s.feasible);
        }
    }

    #[test]
    fn analytic_model_tracks_calibration_points() {
        // The fit should land within a few percent of the measured rows.
        for &(b, c, _, lut) in &TABLE4 {
            let est = lut_estimate(b, c);
            assert!((est - lut).abs() <= 6.0, "{b}x{c}: fit {est:.1}% vs measured {lut:.1}%");
        }
    }

    #[test]
    fn thirteen_tiles_do_not_fit() {
        // §4.8: at most 12 Ariane tiles per FPGA.
        assert!(!synthesize(1, 13).feasible);
        assert_eq!(max_tiles(1), 12);
    }

    #[test]
    fn fuller_fpgas_run_slower() {
        assert_eq!(synthesize(1, 12).frequency_mhz, 75);
        assert_eq!(synthesize(1, 10).frequency_mhz, 100);
        assert_eq!(synthesize(1, 2).frequency_mhz, 100);
    }

    #[test]
    fn five_nodes_are_infeasible() {
        assert!(!synthesize(5, 1).feasible, "only four DDR4 controllers per F1 FPGA");
    }
}
