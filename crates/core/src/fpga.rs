//! One F1 FPGA: up to four nodes, an AXI crossbar binding them, and the
//! AWS Hard Shell.

use smappic_axi::{Crossbar, HardShell};
use smappic_coherence::Homing;
use smappic_noc::NodeId;
use smappic_sim::{Cycle, SaveState, SnapReader, SnapWriter};

use crate::bridge::NODE_WINDOW;
use crate::config::Config;
use crate::node::Node;

/// One FPGA of the prototype.
///
/// The crossbar has one master+slave port pair per local node bridge plus
/// one pair for the Hard Shell: same-FPGA inter-node traffic turns around
/// inside the crossbar (§3.1: *"connecting nodes on the same FPGA using
/// the AXI4 crossbar"*); everything else leaves via the shell and PCIe.
#[derive(Debug)]
pub struct Fpga {
    index: usize,
    nodes: Vec<Node>,
    xbar: Crossbar,
    shell: HardShell,
    first_global_node: usize,
    total_nodes: usize,
    /// Host-side switch: allow the AXI quiet path in [`Fpga::tick`]. Not
    /// architectural state — never serialized.
    fast_path: bool,
}

impl Fpga {
    /// Builds FPGA `index` of the prototype described by `cfg`.
    pub fn new(cfg: &Config, index: usize, homing: Homing) -> Self {
        let b = cfg.nodes_per_fpga;
        let first_global_node = index * b;
        let nodes = (0..b)
            .map(|i| Node::new(cfg, NodeId((first_global_node + i) as u16), homing))
            .collect();
        // Masters/slaves: b node bridges + 1 shell port.
        let mut xbar = Crossbar::new(b + 1, b + 1);
        let total_nodes = cfg.total_nodes();
        for g in 0..total_nodes {
            let base = g as u64 * NODE_WINDOW;
            let slave = if (first_global_node..first_global_node + b).contains(&g) {
                g - first_global_node
            } else {
                b // shell-outbound port
            };
            xbar.map_range(base, NODE_WINDOW, slave);
        }
        let mut shell = HardShell::new(index);
        shell.set_fpga_count(cfg.fpgas);
        Self { index, nodes, xbar, shell, first_global_node, total_nodes, fast_path: true }
    }

    /// Toggles the whole FPGA's host fast path: every node's (engines,
    /// component sleep, mesh elision) plus this FPGA's AXI quiet path.
    /// Off reproduces the plain reference simulator, bit-identically.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        for n in &mut self.nodes {
            n.set_fast_path(on);
        }
    }

    /// Global FPGA index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The nodes on this FPGA.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable node access by local index.
    pub fn node_mut(&mut self, local: usize) -> &mut Node {
        &mut self.nodes[local]
    }

    /// The Hard Shell (the platform pumps its PCIe side).
    pub fn shell_mut(&mut self) -> &mut HardShell {
        &mut self.shell
    }

    /// Read-only Hard Shell access (statistics).
    pub fn shell(&self) -> &HardShell {
        &self.shell
    }

    /// Mutable crossbar access (fault-injection wiring, statistics).
    pub fn xbar_mut(&mut self) -> &mut Crossbar {
        &mut self.xbar
    }

    /// Read-only crossbar access.
    pub fn xbar(&self) -> &Crossbar {
        &self.xbar
    }

    /// Everything on this FPGA is quiescent.
    pub fn is_idle(&self) -> bool {
        self.nodes.iter().all(Node::is_idle) && self.xbar.is_idle() && self.shell.is_idle()
    }

    /// Ages every node's guest clock across `delta` warped-over idle
    /// cycles (the idle-skip equivalent of `delta` no-op ticks).
    pub fn advance_idle(&mut self, delta: u64) {
        for n in &mut self.nodes {
            n.advance_idle(delta);
        }
    }

    /// Rolls every node's guest clock back over `delta` over-run cycles.
    pub fn rewind_idle(&mut self, delta: u64) {
        for n in &mut self.nodes {
            n.rewind_idle(delta);
        }
    }

    /// The next cycle after `now` at which ticking this (idle) FPGA would
    /// do observable work, folded over all nodes.
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        self.nodes.iter().filter_map(|n| n.next_event_after(now)).min()
    }

    /// Which global node a bridge address targets.
    fn addr_node(addr: u64) -> usize {
        (addr / NODE_WINDOW) as usize
    }

    /// The first cycle after `now` at which ticking this FPGA may do real
    /// work, when every tick until then is provably reducible to aging
    /// (every node quiet, every bridge's AXI side silent, crossbar ports
    /// empty, shell holding nothing); `None` when the FPGA must tick at
    /// `now`. `Cycle::MAX` means only PCIe deliveries can create work.
    /// Always `None` in reference mode so a warp never fires there.
    pub fn quiet_bound(&self, now: Cycle) -> Option<Cycle> {
        if !self.fast_path || !self.xbar.pump_is_noop() || !self.shell.warp_quiet_ok() {
            return None;
        }
        let mut bound = Cycle::MAX;
        for n in &self.nodes {
            bound = bound.min(n.quiet_bound(now)?);
            if !n.chipset().bridge_axi_quiet(now) {
                return None;
            }
            // An in-flight shaped request bounds the window even though
            // the bridge is quiet this cycle.
            if let Some(t) = n.chipset().bridge_next_axi_ready() {
                if t <= now {
                    return None;
                }
                bound = bound.min(t);
            }
        }
        Some(bound)
    }

    /// Applies the `delta` quiet ticks of `[now, now + delta)` in one
    /// step: exactly what that many per-cycle quiet paths would have done
    /// across the FPGA, including the crossbar's round-robin pointer
    /// advance. Caller guarantees [`Fpga::quiet_bound`] covers the whole
    /// window.
    pub fn warp_quiet(&mut self, now: Cycle, delta: u64) {
        for n in &mut self.nodes {
            n.warp_quiet(now, delta);
        }
        self.xbar.advance_quiet(delta);
    }

    /// Advances one cycle: nodes, then the AXI plumbing between bridges,
    /// the crossbar, and the shell.
    pub fn tick(&mut self, now: Cycle) {
        // Retry guard-held PCIe deliveries first so a delivery that slots
        // in this cycle is visible to the shell-inbound drain below (no-op
        // without the fault guard). Both steppers tick every simulated
        // cycle, so retry timing is identical under each.
        self.shell.pump_guard(now);
        for n in &mut self.nodes {
            n.tick(now);
        }
        let b = self.nodes.len();

        // AXI quiet path: when every bridge's AXI side is quiet at `now`,
        // every crossbar port is empty, and the shell's CL side holds
        // nothing, every pump loop below pops `None` immediately (each
        // probe is exact, and pops on empty ports are meter-neutral). The
        // tick's only state change is the crossbar's round-robin pointer
        // advance, which `tick_quiet` preserves so snapshot bytes match a
        // reference run bit for bit.
        if self.fast_path
            && self.xbar.pump_is_noop()
            && self.shell.cl_quiet()
            && self.nodes.iter().all(|n| n.chipset().bridge_axi_quiet(now))
        {
            self.xbar.tick_quiet();
            return;
        }

        // Node bridges → crossbar masters; responses back.
        for i in 0..b {
            let bridge = self.nodes[i].chipset_mut().bridge_mut();
            while self.xbar.master_can_push(i) {
                let Some(req) = bridge.axi_pop_req(now) else { break };
                self.xbar.master_push(i, req).expect("capacity checked");
            }
            while let Some(resp) = self.xbar.master_pop(i) {
                self.nodes[i].chipset_mut().bridge_mut().axi_push_resp(now, resp);
            }
        }

        // Shell inbound (requests from peer FPGAs) → crossbar master b.
        while self.xbar.master_can_push(b) {
            let Some(req) = self.shell.cl_pop_inbound() else { break };
            self.xbar.master_push(b, req).expect("capacity checked");
        }
        while self.shell.cl_can_push_resp() {
            let Some(resp) = self.xbar.master_pop(b) else { break };
            self.shell.cl_push_resp(resp).expect("cl_can_push_resp checked");
        }

        self.xbar.tick(now);

        // Crossbar slaves: local node bridges receive; shell transmits.
        for i in 0..b {
            while let Some(req) = self.xbar.slave_pop(i) {
                self.nodes[i].chipset_mut().bridge_mut().axi_push_req(now, req);
            }
            while self.xbar.slave_can_push(i) {
                let bridge = self.nodes[i].chipset_mut().bridge_mut();
                let Some((_peer, resp)) = bridge.axi_pop_resp_for_peer() else { break };
                self.xbar.slave_push(i, resp).expect("slave_can_push checked");
            }
        }
        // Shell-outbound slave: add the PCIe window for the target FPGA.
        while self.shell.cl_can_push() {
            let Some(req) = self.xbar.slave_pop(b) else { break };
            let g = Self::addr_node(req.addr());
            debug_assert!(g < self.total_nodes, "bridge address beyond prototype");
            let dst_fpga = g / self.nodes.len();
            let window = HardShell::fpga_window(dst_fpga);
            let rewritten = match req {
                smappic_axi::AxiReq::Write(mut w) => {
                    w.addr += window;
                    smappic_axi::AxiReq::Write(w)
                }
                smappic_axi::AxiReq::Read(mut r) => {
                    r.addr += window;
                    smappic_axi::AxiReq::Read(r)
                }
            };
            self.shell.cl_push_outbound(rewritten).expect("cl_can_push checked");
        }
        while self.xbar.slave_can_push(b) {
            let Some(resp) = self.shell.cl_pop_resp() else { break };
            self.xbar.slave_push(b, resp).expect("slave_can_push checked");
        }
    }

    /// The first global node index hosted here.
    pub fn first_global_node(&self) -> usize {
        self.first_global_node
    }
}

impl SaveState for Fpga {
    fn save(&self, w: &mut SnapWriter) {
        // Nodes keyed by *global* index, matching the metrics layer's
        // `node{g}` naming, so divergence reports name the same component
        // the dashboards do.
        for (i, n) in self.nodes.iter().enumerate() {
            w.scoped(&format!("node{}", self.first_global_node + i), |w| n.save(w));
        }
        w.scoped("xbar", |w| self.xbar.save(w));
        w.scoped("shell", |w| self.shell.save(w));
    }

    fn restore(&mut self, r: &mut SnapReader) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            r.scoped(&format!("node{}", self.first_global_node + i), |r| n.restore(r));
        }
        r.scoped("xbar", |r| self.xbar.restore(r));
        r.scoped("shell", |r| self.shell.restore(r));
    }
}
