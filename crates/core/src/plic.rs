//! A platform-level interrupt controller (RISC-V PLIC subset).
//!
//! Routes device interrupt sources (the UARTs' RX lines) to harts with
//! per-source priorities, per-hart enables and thresholds, and the
//! claim/complete protocol. Its per-hart external-interrupt outputs feed
//! the interrupt packetizer (§3.3) like every other wire in the node.

/// Number of interrupt sources supported (source 0 is reserved, as the
/// spec requires).
pub const PLIC_SOURCES: usize = 32;

/// Source ID of the console UART's RX interrupt.
pub const PLIC_SRC_UART0: u32 = 1;
/// Source ID of the data UART's RX interrupt.
pub const PLIC_SRC_UART1: u32 = 2;

const REG_PENDING: u64 = 0x1000;
const REG_ENABLE_BASE: u64 = 0x2000;
const ENABLE_STRIDE: u64 = 0x80;
const REG_CONTEXT_BASE: u64 = 0x20_0000;
const CONTEXT_STRIDE: u64 = 0x1000;

/// The PLIC state for one node.
#[derive(Debug)]
pub struct Plic {
    priority: [u32; PLIC_SOURCES],
    /// Level of each source's input wire.
    level: u32,
    /// Pending bits (edge-latched from levels; cleared on claim).
    pending: u32,
    /// Claimed-but-not-completed sources, per source.
    claimed: u32,
    enable: Vec<u32>,
    threshold: Vec<u32>,
}

impl Plic {
    /// Creates a PLIC serving `harts` harts. Everything starts masked
    /// (priority 0, enables clear), like hardware out of reset.
    pub fn new(harts: usize) -> Self {
        Self {
            priority: [0; PLIC_SOURCES],
            level: 0,
            pending: 0,
            claimed: 0,
            enable: vec![0; harts],
            threshold: vec![0; harts],
        }
    }

    /// Drives one source's input wire. A rising edge latches the pending
    /// bit; level-sensitive re-pend happens on completion while high.
    pub fn set_source_level(&mut self, src: u32, high: bool) {
        // Sources beyond the supported range have no wire: ignore them
        // rather than shifting out of range (panic in debug, aliasing a
        // low source in release).
        if src >= PLIC_SOURCES as u32 {
            return;
        }
        let bit = 1u32 << src;
        if high {
            if self.level & bit == 0 {
                self.level |= bit;
                if self.claimed & bit == 0 {
                    self.pending |= bit;
                }
            }
        } else {
            self.level &= !bit;
        }
    }

    /// Best pending source for `hart`: enabled, priority above threshold,
    /// highest priority wins (lowest ID breaks ties).
    ///
    /// Walks only the set bits of `pending & enable` — the packetizer calls
    /// this for every hart every cycle, and the common case (no pending
    /// enabled source) must cost one AND. Ascending bit order plus the
    /// strict `>` keeps the lowest-ID tie-break of the scalar loop; bit 0
    /// can never be set because source 0's enable is masked on write.
    fn best(&self, hart: usize) -> Option<u32> {
        let mut cand = self.pending & self.enable[hart];
        let mut best: Option<(u32, u32)> = None;
        while cand != 0 {
            let src = cand.trailing_zeros();
            cand &= cand - 1;
            let prio = self.priority[src as usize];
            if prio > self.threshold[hart] && best.is_none_or(|(bp, _)| prio > bp) {
                best = Some((prio, src));
            }
        }
        best.map(|(_, src)| src)
    }

    /// The external-interrupt wire level for `hart` (mip.MEIP, line 11).
    pub fn ext_level(&self, hart: usize) -> bool {
        self.best(hart).is_some()
    }

    /// Guest MMIO read at `offset` within the PLIC window.
    pub fn read(&mut self, offset: u64) -> u64 {
        if offset < REG_PENDING {
            let src = (offset / 4) as usize;
            return u64::from(*self.priority.get(src).unwrap_or(&0));
        }
        if offset < REG_ENABLE_BASE {
            return u64::from(self.pending);
        }
        if offset < REG_CONTEXT_BASE {
            let hart = ((offset - REG_ENABLE_BASE) / ENABLE_STRIDE) as usize;
            return u64::from(self.enable.get(hart).copied().unwrap_or(0));
        }
        let hart = ((offset - REG_CONTEXT_BASE) / CONTEXT_STRIDE) as usize;
        let reg = (offset - REG_CONTEXT_BASE) % CONTEXT_STRIDE;
        if hart >= self.threshold.len() {
            return 0;
        }
        match reg {
            0 => u64::from(self.threshold[hart]),
            4 => {
                // Claim: atomically take the best pending source.
                match self.best(hart) {
                    Some(src) => {
                        let bit = 1u32 << src;
                        self.pending &= !bit;
                        self.claimed |= bit;
                        u64::from(src)
                    }
                    None => 0,
                }
            }
            _ => 0,
        }
    }

    /// Guest MMIO write.
    pub fn write(&mut self, offset: u64, data: u64) {
        if offset < REG_PENDING {
            let src = (offset / 4) as usize;
            if (1..PLIC_SOURCES).contains(&src) {
                self.priority[src] = data as u32;
            }
            return;
        }
        if offset < REG_CONTEXT_BASE {
            if offset >= REG_ENABLE_BASE {
                let hart = ((offset - REG_ENABLE_BASE) / ENABLE_STRIDE) as usize;
                if let Some(e) = self.enable.get_mut(hart) {
                    *e = data as u32 & !1; // source 0 cannot be enabled
                }
            }
            return;
        }
        let hart = ((offset - REG_CONTEXT_BASE) / CONTEXT_STRIDE) as usize;
        let reg = (offset - REG_CONTEXT_BASE) % CONTEXT_STRIDE;
        if hart >= self.threshold.len() {
            return;
        }
        match reg {
            0 => self.threshold[hart] = data as u32,
            4 => {
                // Complete: release the source; re-pend if still high.
                let src = data as u32;
                if (1..PLIC_SOURCES as u32).contains(&src) {
                    let bit = 1u32 << src;
                    self.claimed &= !bit;
                    if self.level & bit != 0 {
                        self.pending |= bit;
                    }
                }
            }
            _ => {}
        }
    }
}

impl smappic_sim::SaveState for Plic {
    fn save(&self, w: &mut smappic_sim::SnapWriter) {
        for p in &self.priority {
            w.u32(*p);
        }
        w.u32(self.level);
        w.u32(self.pending);
        w.u32(self.claimed);
        w.usize(self.enable.len());
        for e in &self.enable {
            w.u32(*e);
        }
        for t in &self.threshold {
            w.u32(*t);
        }
    }

    fn restore(&mut self, r: &mut smappic_sim::SnapReader) {
        for p in &mut self.priority {
            *p = r.u32();
        }
        self.level = r.u32();
        self.pending = r.u32();
        self.claimed = r.u32();
        if r.usize() != self.enable.len() {
            r.corrupt("PLIC hart count does not match this node's configuration");
            return;
        }
        for e in &mut self.enable {
            *e = r.u32();
        }
        for t in &mut self.threshold {
            *t = r.u32();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_plic() -> Plic {
        let mut p = Plic::new(2);
        p.write(4 * u64::from(PLIC_SRC_UART0), 3); // priority 3
        p.write(4 * u64::from(PLIC_SRC_UART1), 5);
        p.write(REG_ENABLE_BASE, 0b110); // hart 0: sources 1 and 2
        p
    }

    #[test]
    fn masked_out_of_reset() {
        let mut p = Plic::new(1);
        p.set_source_level(PLIC_SRC_UART0, true);
        assert!(!p.ext_level(0), "nothing enabled yet");
    }

    #[test]
    fn claim_returns_highest_priority_source() {
        let mut p = armed_plic();
        p.set_source_level(PLIC_SRC_UART0, true);
        p.set_source_level(PLIC_SRC_UART1, true);
        assert!(p.ext_level(0));
        let claimed = p.read(REG_CONTEXT_BASE + 4);
        assert_eq!(claimed, u64::from(PLIC_SRC_UART1), "priority 5 beats 3");
        let second = p.read(REG_CONTEXT_BASE + 4);
        assert_eq!(second, u64::from(PLIC_SRC_UART0));
        assert_eq!(p.read(REG_CONTEXT_BASE + 4), 0, "nothing left");
    }

    #[test]
    fn claimed_source_does_not_retrigger_until_complete() {
        let mut p = armed_plic();
        p.set_source_level(PLIC_SRC_UART0, true);
        assert_eq!(p.read(REG_CONTEXT_BASE + 4), 1);
        assert!(!p.ext_level(0), "claimed: wire must drop");
        // Completion while the level is still high re-pends (level-
        // sensitive source).
        p.write(REG_CONTEXT_BASE + 4, 1);
        assert!(p.ext_level(0));
        // Completion after the level dropped stays quiet.
        assert_eq!(p.read(REG_CONTEXT_BASE + 4), 1);
        p.set_source_level(PLIC_SRC_UART0, false);
        p.write(REG_CONTEXT_BASE + 4, 1);
        assert!(!p.ext_level(0));
    }

    #[test]
    fn threshold_masks_low_priorities() {
        let mut p = armed_plic();
        p.write(REG_CONTEXT_BASE, 4); // hart 0 threshold = 4
        p.set_source_level(PLIC_SRC_UART0, true); // priority 3 ≤ 4
        assert!(!p.ext_level(0));
        p.set_source_level(PLIC_SRC_UART1, true); // priority 5 > 4
        assert!(p.ext_level(0));
    }

    #[test]
    fn per_hart_enables_are_independent() {
        let mut p = armed_plic();
        p.write(REG_ENABLE_BASE + ENABLE_STRIDE, 1 << PLIC_SRC_UART1); // hart 1
        p.set_source_level(PLIC_SRC_UART1, true);
        assert!(p.ext_level(0));
        assert!(p.ext_level(1));
        p.set_source_level(PLIC_SRC_UART0, true);
        assert!(p.ext_level(1), "hart 1 only sees UART1");
        // Hart 1 claims UART1; hart 0 still has UART0 pending.
        assert_eq!(p.read(REG_CONTEXT_BASE + CONTEXT_STRIDE + 4), u64::from(PLIC_SRC_UART1));
        assert!(p.ext_level(0));
    }

    #[test]
    fn source_zero_cannot_be_enabled() {
        let mut p = Plic::new(1);
        p.write(REG_ENABLE_BASE, u64::from(u32::MAX));
        p.set_source_level(0, true);
        assert!(!p.ext_level(0));
    }

    #[test]
    fn out_of_range_sources_are_ignored() {
        let mut p = armed_plic();
        // src == 32 would previously compute `1u32 << 32`: a debug panic,
        // and in release an alias of source 0. Both must be plain no-ops.
        p.set_source_level(32, true);
        p.set_source_level(33, true);
        p.set_source_level(u32::MAX, true);
        assert!(!p.ext_level(0), "phantom sources must not pend anything");
        // The complete path ignores out-of-range ids too.
        p.write(REG_CONTEXT_BASE + 4, 32);
        p.write(REG_CONTEXT_BASE + 4, u64::from(u32::MAX));
        assert!(!p.ext_level(0));
        // And a real source still works afterwards.
        p.set_source_level(PLIC_SRC_UART0, true);
        assert!(p.ext_level(0));
    }

    #[test]
    fn snapshot_round_trip_preserves_claim_state() {
        use smappic_sim::{SaveState, SnapReader, SnapWriter, Snapshot};

        let mut p = armed_plic();
        p.set_source_level(PLIC_SRC_UART0, true);
        p.set_source_level(PLIC_SRC_UART1, true);
        assert_eq!(p.read(REG_CONTEXT_BASE + 4), u64::from(PLIC_SRC_UART1)); // claim

        let mut w = SnapWriter::new();
        w.scoped("plic", |w| p.save(w));
        let snap = Snapshot::new(1, 0, w);

        let mut p2 = Plic::new(2);
        let mut r = SnapReader::new(&snap);
        r.scoped("plic", |r| p2.restore(r));
        r.finish().expect("clean restore");

        // The claimed source stays suppressed; the other stays pending.
        assert_eq!(p2.read(REG_CONTEXT_BASE + 4), u64::from(PLIC_SRC_UART0));
        // Completing the claimed source while its level is high re-pends.
        p2.write(REG_CONTEXT_BASE + 4, u64::from(PLIC_SRC_UART1));
        assert!(p2.ext_level(0));
    }

    #[test]
    fn snapshot_with_wrong_hart_count_is_rejected() {
        use smappic_sim::{SaveState, SnapReader, SnapWriter, Snapshot};

        let p = Plic::new(2);
        let mut w = SnapWriter::new();
        w.scoped("plic", |w| p.save(w));
        let snap = Snapshot::new(1, 0, w);

        let mut p2 = Plic::new(3);
        let mut r = SnapReader::new(&snap);
        r.scoped("plic", |r| p2.restore(r));
        assert!(r.finish().is_err());
    }
}
