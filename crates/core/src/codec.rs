//! Binary codec for NoC packets crossing the inter-node bridge.
//!
//! §3.1 / Fig 4: the bridge encapsulates NoC packets into AXI4 write
//! bursts — the address carries destination/source node IDs and flit-valid
//! bits, the data carries the flits. This codec is that wire format: a
//! compact, self-describing byte serialization whose length matches the
//! packet's flit count (8 bytes per flit), so the AXI/PCIe bandwidth
//! models see realistic transfer sizes.

use smappic_noc::{Elem, Gid, LineData, Msg, NodeId, Packet, VirtNet};

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_gid(out: &mut Vec<u8>, g: Gid) {
    put_u16(out, g.node.0);
    match g.elem {
        Elem::Tile(t) => {
            out.push(0);
            put_u16(out, t);
        }
        Elem::Chipset => {
            out.push(1);
            put_u16(out, 0);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(b.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
    fn line(&mut self) -> Option<LineData> {
        let b = self.buf.get(self.pos..self.pos + 64)?;
        self.pos += 64;
        let mut l = LineData::zeroed();
        l.0.copy_from_slice(b);
        Some(l)
    }
    fn gid(&mut self) -> Option<Gid> {
        let node = NodeId(self.u16()?);
        let kind = self.u8()?;
        let t = self.u16()?;
        Some(match kind {
            0 => Gid::tile(node, t),
            _ => Gid::chipset(node),
        })
    }
}

/// Serializes a packet into the bridge wire format.
pub fn encode_packet(pkt: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(pkt.wire_bytes() as usize);
    put_gid(&mut out, pkt.dst);
    put_gid(&mut out, pkt.src);
    out.push(pkt.vn.index() as u8);
    let (tag, line, data, a, b, c): (u8, Option<&LineData>, u64, u64, u64, u64) = match &pkt.msg {
        Msg::ReqS { line } => (0, None, *line, 0, 0, 0),
        Msg::ReqM { line } => (1, None, *line, 0, 0, 0),
        Msg::Amo { addr, size, op, val, expected } => {
            let op_code = *op as u8;
            (2, None, *addr, u64::from(*size) | (u64::from(op_code) << 8), *val, *expected)
        }
        Msg::NcLoad { addr, size } => (3, None, *addr, u64::from(*size), 0, 0),
        Msg::NcStore { addr, size, data } => (4, None, *addr, u64::from(*size), *data, 0),
        Msg::Data { line, data, excl } => (5, Some(data), *line, u64::from(*excl), 0, 0),
        Msg::UpgradeAck { line } => (6, None, *line, 0, 0, 0),
        Msg::Inv { line } => (7, None, *line, 0, 0, 0),
        Msg::Recall { line } => (8, None, *line, 0, 0, 0),
        Msg::Downgrade { line } => (9, None, *line, 0, 0, 0),
        Msg::AmoResp { addr, old } => (10, None, *addr, *old, 0, 0),
        Msg::NcData { addr, data } => (11, None, *addr, *data, 0, 0),
        Msg::NcAck { addr } => (12, None, *addr, 0, 0, 0),
        Msg::Irq { line_no, level } => (13, None, u64::from(*line_no), u64::from(*level), 0, 0),
        Msg::WbData { line, data } => (14, Some(data), *line, 0, 0, 0),
        Msg::WbClean { line } => (15, None, *line, 0, 0, 0),
        Msg::InvAck { line } => (16, None, *line, 0, 0, 0),
        Msg::RecallNack { line } => (17, None, *line, 0, 0, 0),
        Msg::RecallData { line, data, dirty } => (18, Some(data), *line, u64::from(*dirty), 0, 0),
        Msg::MemRd { line } => (19, None, *line, 0, 0, 0),
        Msg::MemWr { line, data } => (20, Some(data), *line, 0, 0, 0),
        Msg::MemData { line, data } => (21, Some(data), *line, 0, 0, 0),
    };
    out.push(tag);
    put_u64(&mut out, data);
    put_u64(&mut out, a);
    put_u64(&mut out, b);
    put_u64(&mut out, c);
    if let Some(l) = line {
        out.extend_from_slice(&l.0);
    }
    out
}

/// Deserializes the bridge wire format. Returns `None` on malformed input
/// (a corrupted transfer should surface as a dropped packet, not a panic,
/// because the bytes cross a modeled physical link).
pub fn decode_packet(buf: &[u8]) -> Option<Packet> {
    let mut r = Reader { buf, pos: 0 };
    let dst = r.gid()?;
    let src = r.gid()?;
    let vn = match r.u8()? {
        0 => VirtNet::Req,
        1 => VirtNet::Resp,
        2 => VirtNet::Mem,
        _ => return None,
    };
    let tag = r.u8()?;
    let d = r.u64()?;
    let a = r.u64()?;
    let b = r.u64()?;
    let c = r.u64()?;
    use smappic_noc::AmoOp;
    let msg = match tag {
        0 => Msg::ReqS { line: d },
        1 => Msg::ReqM { line: d },
        2 => {
            let size = (a & 0xFF) as u8;
            let op = match (a >> 8) as u8 {
                0 => AmoOp::Swap,
                1 => AmoOp::Add,
                2 => AmoOp::And,
                3 => AmoOp::Or,
                4 => AmoOp::Xor,
                5 => AmoOp::Max,
                6 => AmoOp::Min,
                7 => AmoOp::MaxU,
                8 => AmoOp::MinU,
                9 => AmoOp::Cas,
                _ => return None,
            };
            Msg::Amo { addr: d, size, op, val: b, expected: c }
        }
        3 => Msg::NcLoad { addr: d, size: a as u8 },
        4 => Msg::NcStore { addr: d, size: a as u8, data: b },
        5 => Msg::Data { line: d, data: r.line()?, excl: a != 0 },
        6 => Msg::UpgradeAck { line: d },
        7 => Msg::Inv { line: d },
        8 => Msg::Recall { line: d },
        9 => Msg::Downgrade { line: d },
        10 => Msg::AmoResp { addr: d, old: a },
        11 => Msg::NcData { addr: d, data: a },
        12 => Msg::NcAck { addr: d },
        13 => Msg::Irq { line_no: d as u16, level: a != 0 },
        14 => Msg::WbData { line: d, data: r.line()? },
        15 => Msg::WbClean { line: d },
        16 => Msg::InvAck { line: d },
        17 => Msg::RecallNack { line: d },
        18 => Msg::RecallData { line: d, data: r.line()?, dirty: a != 0 },
        19 => Msg::MemRd { line: d },
        20 => Msg::MemWr { line: d, data: r.line()? },
        21 => Msg::MemData { line: d, data: r.line()? },
        _ => return None,
    };
    Some(Packet::new(dst, src, vn, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let pkt = Packet::on_canonical_vn(Gid::tile(NodeId(3), 7), Gid::tile(NodeId(0), 2), msg);
        let bytes = encode_packet(&pkt);
        let back = decode_packet(&bytes).expect("decodes");
        assert_eq!(back, pkt);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        let mut data = LineData::zeroed();
        data.write(0, 8, 0xFEED_FACE);
        use smappic_noc::AmoOp;
        for msg in [
            Msg::ReqS { line: 0x1000 },
            Msg::ReqM { line: 0x2040 },
            Msg::Amo { addr: 0x3008, size: 8, op: AmoOp::Cas, val: 7, expected: 3 },
            Msg::Amo { addr: 0x3008, size: 4, op: AmoOp::MinU, val: 7, expected: 0 },
            Msg::NcLoad { addr: 0xF000_0000, size: 4 },
            Msg::NcStore { addr: 0xF000_0008, size: 2, data: 0xBEEF },
            Msg::Data { line: 0x40, data, excl: true },
            Msg::Data { line: 0x40, data, excl: false },
            Msg::UpgradeAck { line: 0x80 },
            Msg::Inv { line: 0xC0 },
            Msg::Recall { line: 0x100 },
            Msg::Downgrade { line: 0x140 },
            Msg::AmoResp { addr: 0x3008, old: 99 },
            Msg::NcData { addr: 0xF000_0000, data: 0x1234 },
            Msg::NcAck { addr: 0xF000_0008 },
            Msg::Irq { line_no: 11, level: true },
            Msg::WbData { line: 0x180, data },
            Msg::WbClean { line: 0x1C0 },
            Msg::InvAck { line: 0x200 },
            Msg::RecallNack { line: 0x240 },
            Msg::RecallData { line: 0x280, data, dirty: true },
            Msg::MemRd { line: 0x2C0 },
            Msg::MemWr { line: 0x300, data },
            Msg::MemData { line: 0x340, data },
        ] {
            roundtrip(msg);
        }
    }

    #[test]
    fn chipset_gids_roundtrip() {
        let pkt = Packet::on_canonical_vn(
            Gid::chipset(NodeId(2)),
            Gid::tile(NodeId(1), 11),
            Msg::MemRd { line: 0x40 },
        );
        let back = decode_packet(&encode_packet(&pkt)).unwrap();
        assert_eq!(back.dst, Gid::chipset(NodeId(2)));
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let pkt = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 0),
            Gid::tile(NodeId(1), 0),
            Msg::MemData { line: 0, data: LineData::zeroed() },
        );
        let bytes = encode_packet(&pkt);
        for cut in [0, 1, 5, 11, 40, bytes.len() - 1] {
            assert!(decode_packet(&bytes[..cut]).is_none(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let pkt = Packet::on_canonical_vn(
            Gid::tile(NodeId(0), 0),
            Gid::tile(NodeId(1), 0),
            Msg::ReqS { line: 0 },
        );
        let mut bytes = encode_packet(&pkt);
        let tag_pos = 11; // after two gids (5 bytes each) + vn byte
        bytes[tag_pos] = 0xEE;
        assert!(decode_packet(&bytes).is_none());
    }
}
