//! UART16550 model, tunneled to a host virtual serial device.
//!
//! §3.4.1: F1 has no physical UART, so SMAPPIC wraps a Xilinx UART16550 in
//! AXI-Lite and tunnels the bytes over PCIe into a host program that
//! exposes a virtual serial device. Each node instantiates two: a 115200-
//! baud console and an "overclocked" ~1 Mbit/s data UART that carries a
//! pppd network link (§4.4 uses it to put Nginx on the prototype).

use smappic_sim::{
    Cycle, MetricsRegistry, Port, Ring, SaveState, SnapReader, SnapWriter, TrafficShaper,
};

/// Guest-visible 16550 register offsets (4-byte register stride).
const REG_DATA: u64 = 0x00; // RBR (read) / THR (write)
const REG_IER: u64 = 0x04;
const REG_LSR: u64 = 0x14;

const LSR_RX_READY: u64 = 1 << 0;
const LSR_THR_EMPTY: u64 = 1 << 5;

/// The host end of a UART: what the virtual serial device shows.
#[derive(Debug, Default)]
pub struct HostSerial {
    /// Bytes the guest transmitted (drained by the host application).
    pub output: Ring<u8>,
    /// Bytes the host queued for the guest to receive.
    pub input: Ring<u8>,
}

impl HostSerial {
    /// Reads everything the guest printed so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        self.output.drain_all()
    }

    /// Queues bytes for the guest.
    pub fn send(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.input.push_back(b);
        }
    }
}

/// One UART16550 with baud-rate-accurate byte timing.
#[derive(Debug)]
pub struct Uart16550 {
    /// Cycles per byte on the wire (≈ frequency / (baud / 10)).
    tx: TrafficShaper<u8>,
    rx: TrafficShaper<u8>,
    /// Bytes ready for the guest's RBR.
    rx_ready: Port<u8>,
    host: HostSerial,
    ier: u32,
    bytes_tx: u64,
    bytes_rx: u64,
}

impl Uart16550 {
    /// Creates a UART. `cycles_per_byte` models the baud rate: at 100 MHz,
    /// 115200 baud ≈ 8680 cycles/byte; the overclocked 1 Mbit/s data UART
    /// ≈ 1000 cycles/byte.
    pub fn new(cycles_per_byte: u64) -> Self {
        Self {
            tx: TrafficShaper::new(1, cycles_per_byte.max(1), 0),
            rx: TrafficShaper::new(1, cycles_per_byte.max(1), 0),
            rx_ready: Port::elastic_with("rx_ready", 16),
            host: HostSerial::default(),
            ier: 0,
            bytes_tx: 0,
            bytes_rx: 0,
        }
    }

    /// The console UART of Table 2 prototypes (115200 baud at 100 MHz).
    pub fn console() -> Self {
        Self::new(8680)
    }

    /// The overclocked data UART (§3.4.1, ~1 Mbit/s).
    pub fn data() -> Self {
        Self::new(1000)
    }

    /// Host-side access (virtual serial device).
    pub fn host_mut(&mut self) -> &mut HostSerial {
        &mut self.host
    }

    /// Host-side read access.
    pub fn host(&self) -> &HostSerial {
        &self.host
    }

    /// Guest MMIO read.
    pub fn read(&mut self, offset: u64) -> u64 {
        match offset & 0x1C {
            REG_DATA => self.rx_ready.pop().map_or(0, u64::from),
            REG_LSR => {
                let mut v = LSR_THR_EMPTY; // tx never blocks the guest
                if !self.rx_ready.is_empty() {
                    v |= LSR_RX_READY;
                }
                v
            }
            REG_IER => u64::from(self.ier),
            _ => 0,
        }
    }

    /// Guest MMIO write.
    pub fn write(&mut self, now: Cycle, offset: u64, data: u64) {
        match offset & 0x1C {
            REG_DATA => {
                self.tx.push(now, 1, data as u8);
                self.bytes_tx += 1;
            }
            REG_IER => self.ier = data as u32,
            _ => {}
        }
    }

    /// True when the guest has unread input (drives the RX interrupt wire
    /// through the packetizer when IER bit 0 is set).
    pub fn rx_irq_level(&self) -> bool {
        self.ier & 1 != 0 && !self.rx_ready.is_empty()
    }

    /// Advances the wire: matured TX bytes surface at the host, pending
    /// host input trickles into the guest's RX FIFO at the baud rate.
    pub fn tick(&mut self, now: Cycle) {
        while let Some(b) = self.tx.pop_ready(now) {
            self.host.output.push_back(b);
        }
        // Start serializing the next host byte when the link is free.
        if let Some(b) = self.host.input.pop_front() {
            self.rx.push(now, 1, b);
            self.bytes_rx += 1;
        }
        while let Some(b) = self.rx.pop_ready(now) {
            self.rx_ready.push(b);
        }
    }

    /// Merges the UART's port meters (the guest-visible RX FIFO) into `m`
    /// under `port.{prefix}.rx_ready`.
    pub fn merge_port_metrics(&self, prefix: &str, m: &mut MetricsRegistry) {
        self.rx_ready.meter().merge_into(prefix, m);
    }

    /// Total bytes transmitted by the guest.
    pub fn bytes_transmitted(&self) -> u64 {
        self.bytes_tx
    }

    /// True when a tick at `now` would be a pure no-op: no host input is
    /// waiting to enter the RX shaper and no wire byte in either direction
    /// has matured. This is the exact per-cycle probe of the chipset's
    /// component sleep — unlike [`Uart16550::next_event_after`], which
    /// reports events strictly *after* `now`, this answers for `now`
    /// itself (a byte that matured at or before `now` makes the tick pop).
    pub fn tick_is_noop(&self, now: Cycle) -> bool {
        self.host.input.is_empty()
            && self.tx.front_ready_at().is_none_or(|r| r > now)
            && self.rx.front_ready_at().is_none_or(|r| r > now)
    }

    /// The next cycle after `now` at which ticking this UART would do
    /// anything: a wire byte maturing in either direction, or — when the
    /// host has input queued — the very next cycle (one byte enters the RX
    /// shaper per tick). [`None`] means ticks are pure no-ops until new
    /// traffic arrives, so the idle-skip scan may warp past this UART.
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        if !self.host.input.is_empty() {
            return Some(now + 1);
        }
        match (self.tx.next_event_after(now), self.rx.next_event_after(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl SaveState for Uart16550 {
    fn save(&self, w: &mut SnapWriter) {
        // The baud rate (shaper timing) is configuration; bytes on the
        // wire, the RX FIFO, and the host-side buffers are state.
        self.tx.save(w);
        self.rx.save(w);
        self.rx_ready.save(w);
        self.host.output.save(w);
        self.host.input.save(w);
        w.u32(self.ier);
        w.u64(self.bytes_tx);
        w.u64(self.bytes_rx);
    }

    fn restore(&mut self, r: &mut SnapReader) {
        self.tx.restore(r);
        self.rx.restore(r);
        self.rx_ready.restore(r);
        self.host.output.restore(r);
        self.host.input.restore(r);
        self.ier = r.u32();
        self.bytes_tx = r.u64();
        self.bytes_rx = r.u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_print_reaches_host_at_baud_rate() {
        let mut u = Uart16550::new(100);
        for (i, b) in b"hey".iter().enumerate() {
            u.write(i as u64, REG_DATA, u64::from(*b));
        }
        let mut seen = Vec::new();
        for now in 0..1_000 {
            u.tick(now);
            seen.extend(u.host_mut().take_output());
        }
        assert_eq!(seen, b"hey");
        assert_eq!(u.bytes_transmitted(), 3);
        // 3 bytes at 100 cycles each cannot land before ~300 cycles: check
        // via a fresh UART that nothing arrives early.
        let mut u2 = Uart16550::new(100);
        u2.write(0, REG_DATA, b'x'.into());
        u2.tick(50);
        assert!(u2.host_mut().take_output().is_empty(), "byte arrived before baud delay");
    }

    #[test]
    fn host_input_raises_rx_ready() {
        let mut u = Uart16550::new(10);
        u.host_mut().send(b"ok");
        assert_eq!(u.read(REG_LSR) & LSR_RX_READY, 0);
        for now in 0..100 {
            u.tick(now);
        }
        assert_ne!(u.read(REG_LSR) & LSR_RX_READY, 0);
        assert_eq!(u.read(REG_DATA), u64::from(b'o'));
        assert_eq!(u.read(REG_DATA), u64::from(b'k'));
        assert_eq!(u.read(REG_LSR) & LSR_RX_READY, 0);
    }

    #[test]
    fn rx_irq_follows_ier() {
        let mut u = Uart16550::new(1);
        u.host_mut().send(b"!");
        for now in 0..10 {
            u.tick(now);
        }
        assert!(!u.rx_irq_level(), "IER bit 0 clear: no interrupt");
        u.write(10, REG_IER, 1);
        assert!(u.rx_irq_level());
        let _ = u.read(REG_DATA);
        assert!(!u.rx_irq_level(), "drained FIFO drops the level");
    }

    #[test]
    fn thr_empty_is_always_set() {
        let mut u = Uart16550::console();
        assert_ne!(u.read(REG_LSR) & LSR_THR_EMPTY, 0);
    }
}
