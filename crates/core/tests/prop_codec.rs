//! Randomized tests: the bridge wire codec round-trips every message shape,
//! and the bridge pair delivers arbitrary traffic exactly once, in order.
//!
//! Cases are drawn from the deterministic [`SimRng`] (fixed seeds) so the
//! suite needs no external dependencies and failures reproduce exactly.

use smappic_core::{decode_packet, encode_packet, InterNodeBridge};
use smappic_noc::{AmoOp, Gid, LineData, Msg, NodeId, Packet};
use smappic_sim::SimRng;

fn random_line_data(rng: &mut SimRng) -> LineData {
    // Half-mirrored pattern: fills all 64 bytes from 32 random ones, so the
    // codec can't get away with encoding only a prefix.
    let mut l = LineData::zeroed();
    for i in 0..32 {
        l.0[i] = rng.next_u64() as u8;
    }
    let (lo, hi) = l.0.split_at_mut(32);
    hi.copy_from_slice(lo);
    l
}

fn random_amo_op(rng: &mut SimRng) -> AmoOp {
    const OPS: &[AmoOp] = &[
        AmoOp::Swap,
        AmoOp::Add,
        AmoOp::And,
        AmoOp::Or,
        AmoOp::Xor,
        AmoOp::Max,
        AmoOp::Min,
        AmoOp::MaxU,
        AmoOp::MinU,
        AmoOp::Cas,
    ];
    OPS[rng.gen_range(OPS.len() as u64) as usize]
}

/// Draws a message uniformly across every variant the codec must handle.
fn random_msg(rng: &mut SimRng) -> Msg {
    let line = rng.next_u64() & !63;
    let addr = rng.next_u64();
    match rng.gen_range(22) {
        0 => Msg::ReqS { line },
        1 => Msg::ReqM { line },
        2 => {
            let size = if rng.chance(0.5) { 4 } else { 8 };
            Msg::Amo {
                addr,
                size,
                op: random_amo_op(rng),
                val: rng.next_u64(),
                expected: rng.next_u64(),
            }
        }
        3 => Msg::NcLoad { addr, size: 1 << rng.gen_range(4) },
        4 => Msg::NcStore { addr, size: 1 << rng.gen_range(4), data: rng.next_u64() },
        5 => Msg::Data { line, data: random_line_data(rng), excl: rng.chance(0.5) },
        6 => Msg::UpgradeAck { line },
        7 => Msg::Inv { line },
        8 => Msg::Recall { line },
        9 => Msg::Downgrade { line },
        10 => Msg::AmoResp { addr, old: rng.next_u64() },
        11 => Msg::NcData { addr, data: rng.next_u64() },
        12 => Msg::NcAck { addr },
        13 => Msg::Irq { line_no: rng.next_u64() as u16, level: rng.chance(0.5) },
        14 => Msg::WbData { line, data: random_line_data(rng) },
        15 => Msg::WbClean { line },
        16 => Msg::InvAck { line },
        17 => Msg::RecallNack { line },
        18 => Msg::RecallData { line, data: random_line_data(rng), dirty: rng.chance(0.5) },
        19 => Msg::MemRd { line },
        20 => Msg::MemWr { line, data: random_line_data(rng) },
        _ => Msg::MemData { line, data: random_line_data(rng) },
    }
}

fn random_gid(rng: &mut SimRng) -> Gid {
    let node = NodeId(rng.gen_range(16) as u16);
    if rng.chance(0.75) {
        Gid::tile(node, rng.gen_range(64) as u16)
    } else {
        Gid::chipset(node)
    }
}

fn random_packet(rng: &mut SimRng) -> Packet {
    let dst = random_gid(rng);
    let src = random_gid(rng);
    let msg = random_msg(rng);
    Packet::on_canonical_vn(dst, src, msg)
}

#[test]
fn codec_roundtrips_any_packet() {
    let mut rng = SimRng::new(0xC0DEC01);
    for _ in 0..2048 {
        let pkt = random_packet(&mut rng);
        let bytes = encode_packet(&pkt);
        let back = decode_packet(&bytes);
        assert_eq!(back.as_ref(), Some(&pkt));
    }
}

#[test]
fn truncation_never_panics_or_misdecodes() {
    let mut rng = SimRng::new(0xC0DEC02);
    for _ in 0..1024 {
        let pkt = random_packet(&mut rng);
        let bytes = encode_packet(&pkt);
        let cut = rng.gen_range(64) as usize;
        if cut < bytes.len() {
            // A truncated buffer must be rejected, not misread.
            assert!(decode_packet(&bytes[..cut]).is_none());
        }
    }
}

#[test]
fn bridge_pair_delivers_everything_in_order() {
    let mut rng = SimRng::new(0xB41D6E);
    for case in 0..48 {
        let n = 1 + rng.gen_range(39) as usize; // 1..40 messages
        let latency = rng.gen_range(50); // 0..50 cycles
        let mut a = InterNodeBridge::new(NodeId(0), latency, 16);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 16);
        let sent: Vec<Packet> = (0..n)
            .map(|_| {
                Packet::on_canonical_vn(
                    Gid::tile(NodeId(1), 0),
                    Gid::tile(NodeId(0), 0),
                    random_msg(&mut rng),
                )
            })
            .collect();
        let mut now = 0u64;
        for p in &sent {
            a.send(now, p.clone());
        }
        let mut got = Vec::new();
        while got.len() < sent.len() {
            while let Some(req) = a.axi_pop_req(now) {
                b.axi_push_req(now, req);
            }
            while let Some(req) = b.axi_pop_req(now) {
                a.axi_push_req(now, req);
            }
            while let Some((_, resp)) = a.axi_pop_resp_for_peer() {
                b.axi_push_resp(now, resp);
            }
            while let Some((_, resp)) = b.axi_pop_resp_for_peer() {
                a.axi_push_resp(now, resp);
            }
            while let Some(p) = b.recv() {
                got.push(p);
            }
            now += 1;
            assert!(now < 1_000_000, "bridge stuck after {} of {} (case {case})", got.len(), n);
        }
        assert_eq!(got, sent, "case {case}");
    }
}
