//! Property tests: the bridge wire codec round-trips every message shape,
//! and the bridge pair delivers arbitrary traffic exactly once, in order.

use proptest::prelude::*;
use smappic_core::{decode_packet, encode_packet, InterNodeBridge};
use smappic_noc::{AmoOp, Gid, LineData, Msg, NodeId, Packet};

fn line_data() -> impl Strategy<Value = LineData> {
    any::<[u8; 32]>().prop_map(|half| {
        let mut l = LineData::zeroed();
        l.0[..32].copy_from_slice(&half);
        l.0[32..].copy_from_slice(&half);
        l
    })
}

fn amo_op() -> impl Strategy<Value = AmoOp> {
    prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Xor),
        Just(AmoOp::Max),
        Just(AmoOp::Min),
        Just(AmoOp::MaxU),
        Just(AmoOp::MinU),
        Just(AmoOp::Cas),
    ]
}

fn msg() -> impl Strategy<Value = Msg> {
    let line = any::<u64>().prop_map(|a| a & !63);
    prop_oneof![
        line.clone().prop_map(|line| Msg::ReqS { line }),
        line.clone().prop_map(|line| Msg::ReqM { line }),
        (any::<u64>(), prop_oneof![Just(4u8), Just(8u8)], amo_op(), any::<u64>(), any::<u64>())
            .prop_map(|(addr, size, op, val, expected)| Msg::Amo { addr, size, op, val, expected }),
        (any::<u64>(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])
            .prop_map(|(addr, size)| Msg::NcLoad { addr, size }),
        (any::<u64>(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)], any::<u64>())
            .prop_map(|(addr, size, data)| Msg::NcStore { addr, size, data }),
        (line.clone(), line_data(), any::<bool>())
            .prop_map(|(line, data, excl)| Msg::Data { line, data, excl }),
        line.clone().prop_map(|line| Msg::UpgradeAck { line }),
        line.clone().prop_map(|line| Msg::Inv { line }),
        line.clone().prop_map(|line| Msg::Recall { line }),
        line.clone().prop_map(|line| Msg::Downgrade { line }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, old)| Msg::AmoResp { addr, old }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, data)| Msg::NcData { addr, data }),
        any::<u64>().prop_map(|addr| Msg::NcAck { addr }),
        (any::<u16>(), any::<bool>()).prop_map(|(line_no, level)| Msg::Irq { line_no, level }),
        (line.clone(), line_data()).prop_map(|(line, data)| Msg::WbData { line, data }),
        line.clone().prop_map(|line| Msg::WbClean { line }),
        line.clone().prop_map(|line| Msg::InvAck { line }),
        line.clone().prop_map(|line| Msg::RecallNack { line }),
        (line.clone(), line_data(), any::<bool>())
            .prop_map(|(line, data, dirty)| Msg::RecallData { line, data, dirty }),
        line.clone().prop_map(|line| Msg::MemRd { line }),
        (line.clone(), line_data()).prop_map(|(line, data)| Msg::MemWr { line, data }),
        (line, line_data()).prop_map(|(line, data)| Msg::MemData { line, data }),
    ]
}

fn gid() -> impl Strategy<Value = Gid> {
    (0u16..16, prop_oneof![(0u16..64).prop_map(Some), Just(None)]).prop_map(|(n, t)| match t {
        Some(t) => Gid::tile(NodeId(n), t),
        None => Gid::chipset(NodeId(n)),
    })
}

fn packet() -> impl Strategy<Value = Packet> {
    (gid(), gid(), msg()).prop_map(|(dst, src, msg)| Packet::on_canonical_vn(dst, src, msg))
}

proptest! {
    #[test]
    fn codec_roundtrips_any_packet(pkt in packet()) {
        let bytes = encode_packet(&pkt);
        let back = decode_packet(&bytes);
        prop_assert_eq!(back.as_ref(), Some(&pkt));
    }

    #[test]
    fn truncation_never_panics_or_misdecodes(pkt in packet(), cut in 0usize..64) {
        let bytes = encode_packet(&pkt);
        if cut < bytes.len() {
            // A truncated buffer must be rejected, not misread.
            prop_assert!(decode_packet(&bytes[..cut]).is_none());
        }
    }

    #[test]
    fn bridge_pair_delivers_everything_in_order(
        msgs in prop::collection::vec(msg(), 1..40),
        latency in 0u64..50,
    ) {
        let mut a = InterNodeBridge::new(NodeId(0), latency, 16);
        let mut b = InterNodeBridge::new(NodeId(1), 0, 16);
        let sent: Vec<Packet> = msgs
            .into_iter()
            .map(|m| Packet::on_canonical_vn(Gid::tile(NodeId(1), 0), Gid::tile(NodeId(0), 0), m))
            .collect();
        let mut now = 0u64;
        for p in &sent {
            a.send(now, p.clone());
        }
        let mut got = Vec::new();
        while got.len() < sent.len() {
            while let Some(req) = a.axi_pop_req(now) {
                b.axi_push_req(now, req);
            }
            while let Some(req) = b.axi_pop_req(now) {
                a.axi_push_req(now, req);
            }
            while let Some((_, resp)) = a.axi_pop_resp_for_peer() {
                b.axi_push_resp(now, resp);
            }
            while let Some((_, resp)) = b.axi_pop_resp_for_peer() {
                a.axi_push_resp(now, resp);
            }
            while let Some(p) = b.recv() {
                got.push(p);
            }
            now += 1;
            prop_assert!(now < 1_000_000, "bridge stuck after {} of {}", got.len(), sent.len());
        }
        prop_assert_eq!(got, sent);
    }
}
