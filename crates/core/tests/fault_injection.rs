//! Failure injection: the platform must degrade gracefully, not panic,
//! when modeled physical links corrupt traffic.

use smappic_axi::{AxiReq, AxiWrite};
use smappic_core::{bridge_addr, encode_packet, InterNodeBridge};
use smappic_noc::{Gid, Msg, NodeId, Packet};

fn req_packet() -> Packet {
    Packet::on_canonical_vn(
        Gid::tile(NodeId(1), 0),
        Gid::tile(NodeId(0), 0),
        Msg::ReqS { line: 0x8000_0040 },
    )
}

/// A corrupted inter-node transfer is dropped and counted — it must never
/// panic or surface as a phantom packet.
#[test]
fn corrupted_bridge_payload_is_counted_and_dropped() {
    let mut b = InterNodeBridge::new(NodeId(1), 0, 64);
    let mut bytes = encode_packet(&req_packet());
    bytes[11] = 0xEE; // clobber the message tag
    let addr = bridge_addr(NodeId(1), NodeId(0), false);
    b.axi_push_req(0, AxiReq::Write(AxiWrite::new(addr, bytes, 0)));
    assert!(b.recv().is_none(), "corrupted packet must not be delivered");
    assert_eq!(b.stats().get("bridge.decode_error"), 1);
    // The b-channel ack still flows, so the sender's credit accounting
    // keeps working.
    assert!(b.axi_pop_resp_for_peer().is_some());
}

/// Truncated transfers (a torn burst) are equally survivable.
#[test]
fn truncated_bridge_payload_is_survivable() {
    let mut b = InterNodeBridge::new(NodeId(1), 0, 64);
    let bytes = encode_packet(&req_packet());
    for cut in [0, 1, 7, bytes.len() / 2] {
        let addr = bridge_addr(NodeId(1), NodeId(0), false);
        b.axi_push_req(0, AxiReq::Write(AxiWrite::new(addr, bytes[..cut].to_vec(), 0)));
    }
    assert!(b.recv().is_none());
    assert_eq!(b.stats().get("bridge.decode_error"), 4);
}

/// An orphan response (a completion for a transaction the bridge never
/// issued — e.g. after a modeled reset) is counted, not crashed on.
#[test]
fn orphan_axi_response_is_tolerated() {
    let mut b = InterNodeBridge::new(NodeId(0), 0, 64);
    b.axi_push_resp(
        0,
        smappic_axi::AxiResp::Read(smappic_axi::AxiReadResp { id: 999, data: vec![0; 8] }),
    );
    assert_eq!(b.stats().get("bridge.orphan_resp"), 1);
}
