//! Declarative job descriptions and their replay text format.
//!
//! A [`JobSpec`] is everything a tenant submits: the prototype shape and
//! topology, the workload, an optional deterministic fault plan, the
//! stepper, and a cycle budget. Specs are pure data — two builds of the
//! same spec produce bit-identical platforms — and round-trip losslessly
//! through a line-oriented text format (the same idiom as
//! [`FaultPlan::to_text`]), so the spec printed into a [`crate::JobReport`]
//! is sufficient to replay the job exactly.

use std::sync::Arc;

use smappic_core::{Config, FaultSpec, Platform, Topology};
use smappic_sim::{fnv1a, EthParams, FaultPlan, FaultProfile};

use crate::workload;

/// Inter-FPGA topology selection, mirroring [`Topology`] without carrying
/// the full [`EthParams`] (the service uses the calibrated defaults; only
/// the switch-group fan-in is a tenant knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// All-to-all PCIe links ([`Topology::PcieStar`], 1..=4 FPGAs).
    Star,
    /// Switched-Ethernet rack with leaf switches of `group_size` FPGAs.
    Ethernet {
        /// FPGAs per leaf switch.
        group_size: usize,
    },
    /// Ethernet between groups, PCIe inside each group of `group_size`.
    Hybrid {
        /// FPGAs per PCIe island (at most 4).
        group_size: usize,
    },
}

/// Which stepper drives the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepperSpec {
    /// Serial stepper with the host fast path disabled (the bit-exact
    /// per-cycle reference).
    Reference,
    /// Serial stepper with the fast path on (epoch driver + quiet warps).
    Serial,
    /// Epoch-parallel stepper on worker threads.
    Parallel,
}

/// Workload selection. The trace workloads mirror the simperf duty-cycle
/// profiles; `Sort` is the NPB-IS bucket sort from `crates/workloads`;
/// `Poison` is the chaos-test job that panics mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Saturated atomic contention: every core hammers a shared counter.
    AmoHeavy {
        /// Shared-counter increments per core.
        ops: u64,
        /// Program-generation seed.
        seed: u64,
    },
    /// Bursty duty cycle: long compute stretches between accesses.
    Bursty {
        /// Shared-counter increments per core.
        ops: u64,
        /// Program-generation seed.
        seed: u64,
    },
    /// NPB Integer Sort (Fig 8 scaling shape, NUMA-aware placement).
    Sort {
        /// Total keys to sort.
        keys: usize,
        /// Worker threads (at most the tile count).
        threads: usize,
    },
    /// A [`crate::PoisonEngine`] on tile 0 that panics after `after`
    /// executed ticks — the chaos suite's worker-kill stand-in.
    Poison {
        /// Ticks until detonation.
        after: u64,
    },
}

/// Fault-plan profile selection, mirroring the [`FaultProfile`]
/// constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfileSpec {
    /// No faults (plumbing enabled, timing-neutral).
    Quiet,
    /// Occasional short delays and rare duplicates.
    Light,
    /// Frequent long delays, duplicates, stalls, DRAM spikes.
    Heavy,
    /// Permanently black-hole link items maturing at or after `at` — the
    /// unrecoverable fault the per-job Watchdog must report.
    Blackhole {
        /// First black-holed cycle.
        at: u64,
    },
}

/// A job's deterministic fault plan: profile, seed, and scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobFaults {
    /// Which [`FaultProfile`] to instantiate.
    pub profile: FaultProfileSpec,
    /// The plan seed (decisions are pure functions of `(seed, stream, seq)`).
    pub seed: u64,
    /// Restrict injection to the PCIe/Ethernet links ([`FaultSpec::links_only`])
    /// instead of every transport ([`FaultSpec::all`]).
    pub links_only: bool,
}

/// A declarative prototyping job: everything needed to rebuild the
/// platform bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant-chosen label (one whitespace-free token).
    pub name: String,
    /// FPGAs in the prototype.
    pub fpgas: usize,
    /// Nodes per FPGA (1..=4).
    pub nodes: usize,
    /// Tiles per node.
    pub tiles: usize,
    /// Inter-FPGA topology.
    pub topology: TopoSpec,
    /// Stepper choice.
    pub stepper: StepperSpec,
    /// The workload to install.
    pub workload: WorkloadSpec,
    /// Optional deterministic fault plan.
    pub faults: Option<JobFaults>,
    /// Maximum cycles to run; the job also ends early on quiescence.
    pub budget: u64,
    /// Collect a Perfetto trace of the job's final segment.
    pub trace: bool,
    /// Tenant this job is accounted to (one whitespace-free token). The
    /// scheduler's quotas ([`crate::TenantQuota`]) key on it. Old v1 spec
    /// texts without a `tenant` line parse as [`JobSpec::DEFAULT_TENANT`].
    pub tenant: String,
    /// Scheduling priority, `0..=`[`JobSpec::MAX_PRIORITY`]; higher runs
    /// first and may preempt lower. Defaults to
    /// [`JobSpec::DEFAULT_PRIORITY`]; the scheduler's aging rule boosts a
    /// waiting job's *effective* priority, so low means later, never never.
    pub priority: u8,
    /// Optional completion deadline in simulated cycles. Used as the
    /// earliest-deadline-first tiebreak within a priority class; a
    /// terminal report whose cycle count exceeds it is flagged
    /// `deadline_missed`.
    pub deadline_cycles: Option<u64>,
}

impl JobSpec {
    /// Tenant a spec belongs to when no `tenant` line names one.
    pub const DEFAULT_TENANT: &'static str = "default";
    /// Priority assigned when no `priority` line names one (mid-scale,
    /// so tenants can go both above and below the default).
    pub const DEFAULT_PRIORITY: u8 = 4;
    /// Highest (most urgent) priority; aging saturates here.
    pub const MAX_PRIORITY: u8 = 7;

    /// A small single-FPGA default: handy starting point for builders.
    pub fn small(name: &str, workload: WorkloadSpec) -> Self {
        Self {
            name: name.to_string(),
            fpgas: 2,
            nodes: 1,
            tiles: 2,
            topology: TopoSpec::Star,
            stepper: StepperSpec::Serial,
            workload,
            faults: None,
            budget: 2_000_000,
            trace: false,
            tenant: Self::DEFAULT_TENANT.to_string(),
            priority: Self::DEFAULT_PRIORITY,
            deadline_cycles: None,
        }
    }

    /// Validates the spec against the platform's construction limits, so
    /// a malformed submission is a typed error instead of a panic inside
    /// [`Config`].
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.split_whitespace().count() != 1 {
            return Err(format!("job name must be one non-empty token, got {:?}", self.name));
        }
        if !(1..=4).contains(&self.nodes) {
            return Err(format!("nodes per FPGA must be 1..=4, got {}", self.nodes));
        }
        if self.tiles == 0 {
            return Err("a node needs at least one tile".into());
        }
        match self.topology {
            TopoSpec::Star => {
                if !(1..=4).contains(&self.fpgas) {
                    return Err(format!("star topologies span 1..=4 FPGAs, got {}", self.fpgas));
                }
            }
            TopoSpec::Ethernet { group_size } => {
                if group_size == 0 {
                    return Err("ethernet group_size must be >= 1".into());
                }
                if !(1..=256).contains(&self.fpgas) {
                    return Err(format!("rack topologies span 1..=256 FPGAs, got {}", self.fpgas));
                }
            }
            TopoSpec::Hybrid { group_size } => {
                if !(1..=4).contains(&group_size) {
                    return Err(format!("hybrid group_size must be 1..=4, got {group_size}"));
                }
                if !(1..=256).contains(&self.fpgas) {
                    return Err(format!("rack topologies span 1..=256 FPGAs, got {}", self.fpgas));
                }
            }
        }
        if let WorkloadSpec::Sort { keys, threads } = self.workload {
            let total = self.fpgas * self.nodes * self.tiles;
            if threads == 0 || threads > total {
                return Err(format!("sort threads must be 1..={total}, got {threads}"));
            }
            if keys == 0 {
                return Err("sort needs at least one key".into());
            }
        }
        if self.budget == 0 {
            return Err("cycle budget must be positive".into());
        }
        if self.tenant.is_empty() || self.tenant.split_whitespace().count() != 1 {
            return Err(format!("tenant must be one non-empty token, got {:?}", self.tenant));
        }
        if self.priority > Self::MAX_PRIORITY {
            return Err(format!(
                "priority must be 0..={}, got {}",
                Self::MAX_PRIORITY,
                self.priority
            ));
        }
        if self.deadline_cycles == Some(0) {
            return Err("deadline_cycles must be positive when set".into());
        }
        Ok(())
    }

    /// The platform [`Config`] this spec describes (topology + faults).
    pub fn config(&self) -> Config {
        let mut cfg = match self.topology {
            TopoSpec::Star => Config::new(self.fpgas, self.nodes, self.tiles),
            TopoSpec::Ethernet { group_size } => Config::rack(
                self.fpgas,
                self.nodes,
                self.tiles,
                Topology::Ethernet(EthParams { group_size, ..EthParams::default() }),
            ),
            TopoSpec::Hybrid { group_size } => Config::rack(
                self.fpgas,
                self.nodes,
                self.tiles,
                Topology::Hybrid(EthParams { group_size, ..EthParams::default() }),
            ),
        };
        if let Some(jf) = &self.faults {
            let profile = match jf.profile {
                FaultProfileSpec::Quiet => FaultProfile::quiet(),
                FaultProfileSpec::Light => FaultProfile::light(),
                FaultProfileSpec::Heavy => FaultProfile::heavy(),
                FaultProfileSpec::Blackhole { at } => FaultProfile::blackhole(at),
            };
            let plan = Arc::new(FaultPlan::seeded(jf.seed, profile));
            cfg = cfg.with_faults(if jf.links_only {
                FaultSpec::links_only(plan)
            } else {
                FaultSpec::all(plan)
            });
        }
        cfg
    }

    /// Builds the job's platform: config, workload engines, stepper mode.
    /// Two calls build bit-identical twins — the property the scheduler's
    /// park/rebuild/restore migration relies on.
    ///
    /// # Panics
    ///
    /// On an invalid spec; call [`JobSpec::validate`] first at service
    /// boundaries.
    pub fn build(&self) -> Platform {
        if let Err(e) = self.validate() {
            panic!("invalid JobSpec: {e}");
        }
        let mut p = workload::build_platform(self);
        if self.stepper == StepperSpec::Reference {
            p.set_fast_path(false);
        }
        if self.trace {
            p.set_tracing(true);
        }
        p
    }

    /// Whether the scheduler should drive this job with the
    /// epoch-parallel stepper.
    pub fn parallel(&self) -> bool {
        self.stepper == StepperSpec::Parallel
    }

    /// A stable fingerprint of the spec text — names replay artifacts.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_text().as_bytes())
    }

    /// Serializes the spec into the line-oriented replay format.
    /// [`JobSpec::from_text`] parses it back losslessly.
    pub fn to_text(&self) -> String {
        let mut out = String::from("smappic-jobspec v1\n");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("shape {} {} {}\n", self.fpgas, self.nodes, self.tiles));
        match self.topology {
            TopoSpec::Star => out.push_str("topology star\n"),
            TopoSpec::Ethernet { group_size } => {
                out.push_str(&format!("topology eth {group_size}\n"))
            }
            TopoSpec::Hybrid { group_size } => {
                out.push_str(&format!("topology hybrid {group_size}\n"))
            }
        }
        let stepper = match self.stepper {
            StepperSpec::Reference => "reference",
            StepperSpec::Serial => "serial",
            StepperSpec::Parallel => "parallel",
        };
        out.push_str(&format!("stepper {stepper}\n"));
        match self.workload {
            WorkloadSpec::AmoHeavy { ops, seed } => {
                out.push_str(&format!("workload amoheavy {ops} {seed:#x}\n"))
            }
            WorkloadSpec::Bursty { ops, seed } => {
                out.push_str(&format!("workload bursty {ops} {seed:#x}\n"))
            }
            WorkloadSpec::Sort { keys, threads } => {
                out.push_str(&format!("workload sort {keys} {threads}\n"))
            }
            WorkloadSpec::Poison { after } => out.push_str(&format!("workload poison {after}\n")),
        }
        match &self.faults {
            None => out.push_str("faults none\n"),
            Some(jf) => {
                let profile = match jf.profile {
                    FaultProfileSpec::Quiet => "quiet".to_string(),
                    FaultProfileSpec::Light => "light".to_string(),
                    FaultProfileSpec::Heavy => "heavy".to_string(),
                    FaultProfileSpec::Blackhole { at } => format!("blackhole:{at}"),
                };
                let scope = if jf.links_only { "links" } else { "all" };
                out.push_str(&format!("faults {profile} {:#x} {scope}\n", jf.seed));
            }
        }
        out.push_str(&format!("budget {}\n", self.budget));
        out.push_str(&format!("trace {}\n", if self.trace { "on" } else { "off" }));
        // Multi-tenancy fields are emitted only when non-default, so a
        // default spec's text (and digest) is byte-identical to the
        // pre-tenancy v1 format and old readers keep parsing new specs
        // that never opted in.
        if self.tenant != Self::DEFAULT_TENANT {
            out.push_str(&format!("tenant {}\n", self.tenant));
        }
        if self.priority != Self::DEFAULT_PRIORITY {
            out.push_str(&format!("priority {}\n", self.priority));
        }
        if let Some(d) = self.deadline_cycles {
            out.push_str(&format!("deadline {d}\n"));
        }
        out
    }

    /// Parses [`JobSpec::to_text`] output. Line order is fixed; every
    /// field is mandatory.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        fn parse_u64(tok: &str) -> Result<u64, String> {
            let r = match tok.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => tok.parse(),
            };
            r.map_err(|e| format!("bad number {tok:?}: {e}"))
        }
        fn parse_usize(tok: &str) -> Result<usize, String> {
            tok.parse().map_err(|e| format!("bad number {tok:?}: {e}"))
        }
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let mut field = |key: &str| -> Result<Vec<String>, String> {
            let line = lines.next().ok_or_else(|| format!("missing {key:?} line"))?;
            let mut toks = line.split_whitespace().map(str::to_string);
            let found = toks.next().unwrap_or_default();
            if found != key {
                return Err(format!("expected {key:?} line, found {line:?}"));
            }
            Ok(toks.collect())
        };

        let header = field("smappic-jobspec")?;
        if header != ["v1"] {
            return Err(format!("unsupported jobspec version {header:?}"));
        }
        let name_toks = field("name")?;
        let [name] = name_toks.as_slice() else {
            return Err(format!("name wants one token, got {name_toks:?}"));
        };
        let shape = field("shape")?;
        let [f, n, t] = shape.as_slice() else {
            return Err(format!("shape wants <fpgas> <nodes> <tiles>, got {shape:?}"));
        };
        let (fpgas, nodes, tiles) = (parse_usize(f)?, parse_usize(n)?, parse_usize(t)?);
        let topo = field("topology")?;
        let topology = match topo.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["star"] => TopoSpec::Star,
            ["eth", g] => TopoSpec::Ethernet { group_size: parse_usize(g)? },
            ["hybrid", g] => TopoSpec::Hybrid { group_size: parse_usize(g)? },
            _ => return Err(format!("bad topology {topo:?}")),
        };
        let st = field("stepper")?;
        let stepper = match st.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["reference"] => StepperSpec::Reference,
            ["serial"] => StepperSpec::Serial,
            ["parallel"] => StepperSpec::Parallel,
            _ => return Err(format!("bad stepper {st:?}")),
        };
        let wl = field("workload")?;
        let workload = match wl.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["amoheavy", ops, seed] => {
                WorkloadSpec::AmoHeavy { ops: parse_u64(ops)?, seed: parse_u64(seed)? }
            }
            ["bursty", ops, seed] => {
                WorkloadSpec::Bursty { ops: parse_u64(ops)?, seed: parse_u64(seed)? }
            }
            ["sort", keys, threads] => {
                WorkloadSpec::Sort { keys: parse_usize(keys)?, threads: parse_usize(threads)? }
            }
            ["poison", after] => WorkloadSpec::Poison { after: parse_u64(after)? },
            _ => return Err(format!("bad workload {wl:?}")),
        };
        let fl = field("faults")?;
        let faults = match fl.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["none"] => None,
            [profile, seed, scope] => {
                let profile = match profile.split_once(':') {
                    Some(("blackhole", at)) => FaultProfileSpec::Blackhole { at: parse_u64(at)? },
                    None => match *profile {
                        "quiet" => FaultProfileSpec::Quiet,
                        "light" => FaultProfileSpec::Light,
                        "heavy" => FaultProfileSpec::Heavy,
                        other => return Err(format!("bad fault profile {other:?}")),
                    },
                    _ => return Err(format!("bad fault profile {profile:?}")),
                };
                let links_only = match *scope {
                    "links" => true,
                    "all" => false,
                    other => return Err(format!("bad fault scope {other:?}")),
                };
                Some(JobFaults { profile, seed: parse_u64(seed)?, links_only })
            }
            _ => return Err(format!("bad faults line {fl:?}")),
        };
        let bd = field("budget")?;
        let [budget] = bd.as_slice() else {
            return Err(format!("budget wants one number, got {bd:?}"));
        };
        let tr = field("trace")?;
        let trace = match tr.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["on"] => true,
            ["off"] => false,
            _ => return Err(format!("bad trace flag {tr:?}")),
        };
        // Optional multi-tenancy trailer: absent in old v1 texts, which
        // therefore parse with the defaults. Each key appears at most
        // once, in canonical order.
        let mut tenant = Self::DEFAULT_TENANT.to_string();
        let mut priority = Self::DEFAULT_PRIORITY;
        let mut deadline_cycles = None;
        let mut seen = 0u8;
        for line in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["tenant", t] if seen < 1 => {
                    tenant = t.to_string();
                    seen = 1;
                }
                ["priority", p] if seen < 2 => {
                    priority = p.parse().map_err(|e| format!("bad priority {p:?}: {e}"))?;
                    seen = 2;
                }
                ["deadline", d] if seen < 3 => {
                    deadline_cycles = Some(parse_u64(d)?);
                    seen = 3;
                }
                _ => return Err(format!("trailing line {line:?}")),
            }
        }
        let spec = Self {
            name: name.clone(),
            fpgas,
            nodes,
            tiles,
            topology,
            stepper,
            workload,
            faults,
            budget: parse_u64(budget)?,
            trace,
            tenant,
            priority,
            deadline_cycles,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let spec = JobSpec {
            name: "tenant-7".into(),
            fpgas: 8,
            nodes: 1,
            tiles: 2,
            topology: TopoSpec::Ethernet { group_size: 4 },
            stepper: StepperSpec::Parallel,
            workload: WorkloadSpec::AmoHeavy { ops: 500, seed: 0xBEEF },
            faults: Some(JobFaults {
                profile: FaultProfileSpec::Blackhole { at: 9000 },
                seed: 42,
                links_only: true,
            }),
            budget: 1_000_000,
            trace: true,
            tenant: "acme".into(),
            priority: 6,
            deadline_cycles: Some(750_000),
        };
        let parsed = JobSpec::from_text(&spec.to_text()).expect("round-trips");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.digest(), spec.digest());
    }

    #[test]
    fn old_v1_text_parses_with_tenancy_defaults() {
        // A default spec's text carries no tenancy trailer at all, so it
        // is exactly what a pre-tenancy writer produced.
        let spec = JobSpec::small("legacy", WorkloadSpec::Bursty { ops: 9, seed: 3 });
        let text = spec.to_text();
        assert!(!text.contains("tenant") && !text.contains("priority"));
        let parsed = JobSpec::from_text(&text).expect("old v1 text parses");
        assert_eq!(parsed.tenant, JobSpec::DEFAULT_TENANT);
        assert_eq!(parsed.priority, JobSpec::DEFAULT_PRIORITY);
        assert_eq!(parsed.deadline_cycles, None);
        assert_eq!(parsed, spec);
        // Non-default tenancy extends the digest.
        let mut pri = spec.clone();
        pri.priority = 7;
        assert_ne!(pri.digest(), spec.digest());
        // Duplicate or out-of-order trailer keys are rejected.
        assert!(JobSpec::from_text(&(text.clone() + "tenant a\ntenant b\n")).is_err());
        assert!(JobSpec::from_text(&(text + "deadline 5\npriority 1\n")).is_err());
    }

    #[test]
    fn malformed_text_is_a_typed_error() {
        assert!(JobSpec::from_text("").is_err());
        assert!(JobSpec::from_text("smappic-jobspec v2\n").is_err());
        let good = JobSpec::small("a", WorkloadSpec::Bursty { ops: 1, seed: 1 }).to_text();
        assert!(JobSpec::from_text(&good.replace("shape 2 1 2", "shape 9 1 2")).is_err());
        assert!(JobSpec::from_text(&(good.clone() + "extra line\n")).is_err());
        assert!(JobSpec::from_text(&good.replace("faults none", "faults maybe 1 all")).is_err());
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut s = JobSpec::small("ok", WorkloadSpec::Sort { keys: 64, threads: 4 });
        assert!(s.validate().is_ok());
        s.workload = WorkloadSpec::Sort { keys: 64, threads: 500 };
        assert!(s.validate().is_err());
        s.workload = WorkloadSpec::Bursty { ops: 1, seed: 1 };
        s.name = "two words".into();
        assert!(s.validate().is_err());
        s.name = "ok".into();
        s.topology = TopoSpec::Hybrid { group_size: 9 };
        assert!(s.validate().is_err());
        s.topology = TopoSpec::Star;
        s.priority = JobSpec::MAX_PRIORITY + 1;
        assert!(s.validate().is_err());
        s.priority = JobSpec::DEFAULT_PRIORITY;
        s.tenant = "two words".into();
        assert!(s.validate().is_err());
        s.tenant = "ok".into();
        s.deadline_cycles = Some(0);
        assert!(s.validate().is_err());
    }
}
