//! Workload installation for service jobs, plus the chaos-test
//! [`PoisonEngine`].
//!
//! The trace workloads mirror the simperf duty-cycle profiles but are
//! *finite*: every core runs its program, arrives at a shared barrier,
//! checksums the contended line, and quiesces — so a completed job is
//! detectable via [`smappic_core::Platform::is_idle`] and its
//! architectural digest is a pure function of the [`JobSpec`].

use smappic_core::{Platform, DRAM_BASE};
use smappic_sim::{Cycle, SaveState, SimRng, SnapReader, SnapWriter};
use smappic_tile::{Engine, TraceCore, TraceOp, Tri};
use smappic_workloads::is_sort::{build_sort, Placement, SortParams};

use crate::spec::{JobSpec, WorkloadSpec};

/// Shared contention counter every trace core hammers.
const COUNTER: u64 = DRAM_BASE + 0xA000;
/// Barrier arrival counter (cores quiesce once everyone arrived).
const DONE: u64 = DRAM_BASE + 0xA100;

/// Builds the platform for a spec: config + engines. Deterministic — two
/// calls with the same spec build bit-identical twins.
pub(crate) fn build_platform(spec: &JobSpec) -> Platform {
    let cfg = spec.config();
    match spec.workload {
        WorkloadSpec::Sort { keys, threads } => {
            build_sort(&SortParams::scaling(cfg, keys, threads, Placement::NumaAware)).0
        }
        WorkloadSpec::AmoHeavy { ops, seed } => trace_fleet(cfg, ops, seed, false),
        WorkloadSpec::Bursty { ops, seed } => trace_fleet(cfg, ops, seed, true),
        WorkloadSpec::Poison { after } => {
            let mut p = Platform::new(cfg);
            p.set_engine(0, 0, Box::new(PoisonEngine::new(after)));
            p
        }
    }
}

/// The finite duty-cycle trace fleet: per-core programs of compute +
/// shared-counter atomics (+ private stores), ending in a global barrier
/// and a checksum of the contended line.
fn trace_fleet(cfg: smappic_core::Config, ops: u64, seed: u64, bursty: bool) -> Platform {
    let tiles = cfg.tiles_per_node;
    let total = cfg.total_tiles();
    let mut p = Platform::new(cfg);
    let mut rng = SimRng::new(seed);
    for g in 0..total {
        let (node, tile) = (g / tiles, (g % tiles) as u16);
        let private = DRAM_BASE + 0x40_0000 + g as u64 * 4096;
        let mut program = Vec::new();
        for i in 0..ops {
            let compute = if bursty { rng.gen_range(400) + 100 } else { rng.gen_range(20) + 1 };
            program.push(TraceOp::Compute(compute));
            program.push(TraceOp::AmoAdd(COUNTER, 1));
            if rng.chance(if bursty { 0.25 } else { 0.5 }) {
                program.push(TraceOp::StoreVal(private + (i % 16) * 64, g as u64 ^ i));
            }
            if rng.chance(0.2) {
                program.push(TraceOp::Checksum(private + (i % 16) * 64));
            }
        }
        program.push(TraceOp::AmoAdd(DONE, 1));
        program.push(TraceOp::SpinUntilGe(DONE, total as u64));
        program.push(TraceOp::Checksum(COUNTER));
        p.set_engine(node, tile, Box::new(TraceCore::new(format!("job{g}"), program)));
    }
    p
}

/// An engine that panics after a configured number of executed ticks —
/// the chaos suite's stand-in for a job that kills its worker mid-run.
///
/// The tick counter is *executed* ticks, not a wall cycle, so a poison
/// job that is preempted, migrated, and resumed still detonates at the
/// same simulated point: the counter rides in the snapshot via
/// [`SaveState`]. It reports itself permanently busy
/// (`next_event_after == now`) so the fast path can never warp past the
/// detonation, and its [`Engine::progress`] advances every tick so the
/// fuse is not mistaken for a livelock.
#[derive(Debug)]
pub struct PoisonEngine {
    /// Detonation fuse, in executed ticks (configuration, not state).
    after: u64,
    /// Executed ticks so far (snapshotted state).
    ticks: u64,
}

impl PoisonEngine {
    /// An engine that panics on its `after`-th tick.
    pub fn new(after: u64) -> Self {
        Self { after, ticks: 0 }
    }
}

impl SaveState for PoisonEngine {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.ticks);
    }
    fn restore(&mut self, r: &mut SnapReader) {
        self.ticks = r.u64();
    }
}

impl Engine for PoisonEngine {
    fn tick(&mut self, _now: Cycle, _tri: &mut dyn Tri) {
        self.ticks += 1;
        if self.ticks >= self.after {
            panic!("poison engine detonated after {} ticks", self.after);
        }
    }

    fn progress(&self) -> u64 {
        self.ticks
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader) {
        self.restore(r);
    }

    fn label(&self) -> &str {
        "poison"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StepperSpec;

    #[test]
    fn trace_fleet_quiesces_within_budget() {
        let spec = JobSpec::small("t", WorkloadSpec::AmoHeavy { ops: 40, seed: 7 });
        let mut p = spec.build();
        p.run_until_idle(2_000_000);
        assert!(p.is_idle(), "finite fleet must quiesce");
        let mut q = spec.build();
        q.run_until_idle(2_000_000);
        assert_eq!(p.now(), q.now(), "twin builds are deterministic");
    }

    #[test]
    fn poison_engine_detonates_at_its_fuse() {
        let mut spec = JobSpec::small("boom", WorkloadSpec::Poison { after: 700 });
        spec.stepper = StepperSpec::Reference;
        let mut p = spec.build();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.run(10_000)))
            .expect_err("must detonate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("poison engine detonated"), "got {msg:?}");
    }
}
