//! Per-job result artifacts.

use smappic_core::HostPerf;
use smappic_sim::{SnapError, Snapshot};

/// Why the scheduler's admission control refused a job. Admission is a
/// pure function of the submitted fleet and the [`crate::SchedulerConfig`]
/// in submission order, so the same fleet is rejected identically on
/// every run (including [`crate::Scheduler::resume`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded pending queue was already holding `limit` admitted
    /// jobs ([`crate::SchedulerConfig::max_pending`]).
    QueueFull {
        /// The configured queue bound.
        limit: usize,
    },
    /// Admitting the job would overcommit its tenant's aggregate cycle
    /// budget ([`crate::TenantQuota::cycle_budget`]). The full spec
    /// budget is reserved up front, so the quota can never be exceeded
    /// mid-flight.
    CycleQuota {
        /// The tenant whose quota ran out.
        tenant: String,
        /// Cycles the job asked for (its spec budget).
        needed: u64,
        /// Cycles the tenant had left before this job.
        remaining: u64,
    },
}

impl RejectReason {
    /// One-line human-readable rendering (used in report markers).
    pub fn describe(&self) -> String {
        match self {
            RejectReason::QueueFull { limit } => format!("pending queue full ({limit} jobs)"),
            RejectReason::CycleQuota { tenant, needed, remaining } => {
                format!("tenant {tenant} cycle quota exhausted ({needed} needed, {remaining} left)")
            }
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobExit {
    /// The job ran to architectural quiescence (`idle == true`) or
    /// exhausted its cycle budget (`idle == false`).
    Completed {
        /// True when the platform quiesced before the budget ran out.
        idle: bool,
    },
    /// The job panicked; the scheduler isolated the failure to this
    /// report and the worker kept serving other jobs.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The per-job Watchdog saw the progress signature freeze past its
    /// stall limit.
    Livelocked {
        /// Last cycle at which the job made architectural progress.
        stalled_since: u64,
        /// Cycle at which the watchdog declared livelock.
        detected_at: u64,
    },
    /// Admission control refused the job before it ran a single cycle.
    Rejected {
        /// The structured reason the tenant can act on.
        reason: RejectReason,
    },
}

/// The artifact a tenant gets back for one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission index (stable across runs of the same fleet).
    pub job: usize,
    /// The spec's name.
    pub name: String,
    /// The tenant the job was accounted to.
    pub tenant: String,
    /// The spec's submitted (base) priority.
    pub priority: u8,
    /// Terminal status.
    pub exit: JobExit,
    /// Simulated cycles actually executed.
    pub cycles: u64,
    /// True when the spec carried a `deadline_cycles` and the job's
    /// terminal cycle count overran it (never set for rejected jobs —
    /// they executed nothing).
    pub deadline_missed: bool,
    /// Host wall-clock seconds spent executing (summed across segments,
    /// excluding time parked in queues).
    pub wall_secs: f64,
    /// Times the job was preempted and parked as a snapshot.
    pub preemptions: u64,
    /// Resumes that landed on a different worker than the one that
    /// parked the job.
    pub migrations: u64,
    /// Worker ids that executed segments of this job, in order (repeats
    /// collapsed).
    pub workers: Vec<usize>,
    /// Host fast-path diagnostics accumulated across all segments.
    pub host_perf: HostPerf,
    /// Fingerprint of the job's architectural outcome (final cycle +
    /// platform statistics + architectural metrics). A pure function of
    /// the [`crate::JobSpec`]: identical regardless of worker count,
    /// preemption pattern, or steal order. Zero for panicked and
    /// rejected jobs (no platform outcome exists).
    pub digest: u64,
    /// Raw (`SMAPSNAP`) wire size of the final image; 0 when neither
    /// snapshots nor checkpoints were requested (measuring costs a full
    /// serialization walk).
    pub snapshot_bytes: u64,
    /// Compressed (`SMAPSTRM`) size of the same image; 0 when not
    /// measured.
    pub compressed_bytes: u64,
    /// Cumulative raw wire bytes a full snapshot would have cost at each
    /// preemption park.
    pub park_raw_bytes: u64,
    /// Cumulative bytes the scheduler actually held for this job while
    /// parked (compressed base image + compressed delta).
    pub park_stored_bytes: u64,
    /// Final image as compressed stream bytes, when the scheduler was
    /// asked to keep it ([`crate::SchedulerConfig::capture_final_snapshots`]).
    pub(crate) final_snapshot_z: Option<Vec<u8>>,
    /// Perfetto trace path, when the spec asked for a trace and the
    /// scheduler was given an artifact directory.
    pub trace_path: Option<String>,
}

impl JobReport {
    /// True for [`JobExit::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self.exit, JobExit::Completed { .. })
    }

    /// True for [`JobExit::Rejected`].
    pub fn is_rejected(&self) -> bool {
        matches!(self.exit, JobExit::Rejected { .. })
    }

    /// The final snapshot as raw `SMAPSNAP` wire bytes, decompressed
    /// from the stream form the scheduler stores. `Ok(None)` when the
    /// scheduler was not asked to keep final snapshots; `Err` when the
    /// stored stream is corrupted (a torn artifact degrades into a typed
    /// error instead of panicking the reader).
    pub fn final_snapshot(&self) -> Result<Option<Vec<u8>>, SnapError> {
        let Some(z) = self.final_snapshot_z.as_ref() else { return Ok(None) };
        Ok(Some(Snapshot::from_stream_bytes(z)?.to_bytes()))
    }

    /// Compressed size of the final image over its raw size; 1.0 when
    /// sizes were not measured.
    pub fn compression_ratio(&self) -> f64 {
        if self.snapshot_bytes > 0 {
            self.compressed_bytes as f64 / self.snapshot_bytes as f64
        } else {
            1.0
        }
    }

    /// Simulated cycles per host wall-clock second; 0 when no time was
    /// measured.
    pub fn cyc_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serde). Snapshot bytes are summarized by size, not
    /// inlined.
    pub fn to_json(&self) -> String {
        let exit = match &self.exit {
            JobExit::Completed { idle } => {
                format!("{{\"kind\": \"completed\", \"idle\": {idle}}}")
            }
            JobExit::Panicked { message } => {
                format!("{{\"kind\": \"panicked\", \"message\": \"{}\"}}", escape(message))
            }
            JobExit::Livelocked { stalled_since, detected_at } => format!(
                "{{\"kind\": \"livelocked\", \"stalled_since\": {stalled_since}, \
                 \"detected_at\": {detected_at}}}"
            ),
            JobExit::Rejected { reason } => {
                format!(
                    "{{\"kind\": \"rejected\", \"reason\": \"{}\"}}",
                    escape(&reason.describe())
                )
            }
        };
        let workers: Vec<String> = self.workers.iter().map(usize::to_string).collect();
        let trace = match &self.trace_path {
            Some(p) => format!("\"{}\"", escape(p)),
            None => "null".into(),
        };
        format!(
            "{{\n  \"job\": {},\n  \"name\": \"{}\",\n  \"tenant\": \"{}\",\n  \
             \"priority\": {},\n  \"exit\": {},\n  \"cycles\": {},\n  \
             \"deadline_missed\": {},\n  \
             \"wall_secs\": {:.6},\n  \"cyc_per_sec\": {:.1},\n  \"preemptions\": {},\n  \
             \"migrations\": {},\n  \"workers\": [{}],\n  \"digest\": \"{:#018x}\",\n  \
             \"block_cache_hit_rate\": {:.4},\n  \"snapshot_bytes\": {},\n  \
             \"compressed_bytes\": {},\n  \"compression_ratio\": {:.4},\n  \
             \"park_raw_bytes\": {},\n  \"park_stored_bytes\": {},\n  \"trace\": {}\n}}",
            self.job,
            escape(&self.name),
            escape(&self.tenant),
            self.priority,
            exit,
            self.cycles,
            self.deadline_missed,
            self.wall_secs,
            self.cyc_per_sec(),
            self.preemptions,
            self.migrations,
            workers.join(", "),
            self.digest,
            self.host_perf.block_cache_hit_rate(),
            self.snapshot_bytes,
            self.compressed_bytes,
            self.compression_ratio(),
            self.park_raw_bytes,
            self.park_stored_bytes,
            trace,
        )
    }
}

/// JSON string escaping. Backslash and quote get their two-character
/// forms; every other control character below 0x20 (tab, CR, NUL, ANSI
/// escapes in panic payloads, ...) becomes a `\u00XX` sequence — JSON
/// forbids them raw, so anything less renders an invalid document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> JobReport {
        JobReport {
            job: 3,
            name: "t".into(),
            tenant: "acme".into(),
            priority: 5,
            exit: JobExit::Completed { idle: true },
            cycles: 1000,
            deadline_missed: false,
            wall_secs: 0.5,
            preemptions: 2,
            migrations: 1,
            workers: vec![0, 1],
            host_perf: HostPerf::default(),
            digest: 0xABCD,
            snapshot_bytes: 4000,
            compressed_bytes: 1000,
            park_raw_bytes: 0,
            park_stored_bytes: 0,
            final_snapshot_z: None,
            trace_path: None,
        }
    }

    #[test]
    fn json_renders_every_exit_kind() {
        let mut r = report();
        assert!(r.to_json().contains("\"completed\""));
        assert!(r.to_json().contains("\"tenant\": \"acme\""));
        assert!(r.to_json().contains("\"compression_ratio\": 0.2500"));
        assert!((r.cyc_per_sec() - 2000.0).abs() < 1e-9);
        assert!(r.final_snapshot().expect("no stored snapshot is fine").is_none());
        r.exit = JobExit::Panicked { message: "boom \"quote\"".into() };
        assert!(r.to_json().contains("\\\"quote\\\""));
        r.exit = JobExit::Livelocked { stalled_since: 5, detected_at: 9 };
        assert!(r.to_json().contains("\"livelocked\""));
        r.exit = JobExit::Rejected { reason: RejectReason::QueueFull { limit: 8 } };
        assert!(r.to_json().contains("\"rejected\""));
        assert!(r.to_json().contains("pending queue full (8 jobs)"));
    }

    #[test]
    fn escape_handles_all_control_characters() {
        // The exact payload class the old escape() mangled: a panic
        // message carrying tab + CR (plus an exotic control char).
        let mut r = report();
        r.exit = JobExit::Panicked { message: "tab\there\rcr \x07bell \x1besc".into() };
        let json = r.to_json();
        assert!(json.contains("tab\\there\\rcr \\u0007bell \\u001besc"));
        for c in json.chars() {
            assert!(
                c as u32 >= 0x20 || c == '\n',
                "rendered JSON must not contain raw control char {:#04x}",
                c as u32
            );
        }
        r.name = "a\tb".into();
        assert!(r.to_json().contains("\"a\\tb\""));
    }

    #[test]
    fn corrupted_final_snapshot_is_a_typed_error_not_a_panic() {
        let mut r = report();
        r.final_snapshot_z = Some(vec![0xDE, 0xAD, 0xBE, 0xEF]);
        assert!(r.final_snapshot().is_err(), "garbage stream bytes must surface as Err");
    }
}
