//! Per-job result artifacts.

use smappic_core::HostPerf;

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobExit {
    /// The job ran to architectural quiescence (`idle == true`) or
    /// exhausted its cycle budget (`idle == false`).
    Completed {
        /// True when the platform quiesced before the budget ran out.
        idle: bool,
    },
    /// The job panicked; the scheduler isolated the failure to this
    /// report and the worker kept serving other jobs.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The per-job Watchdog saw the progress signature freeze past its
    /// stall limit.
    Livelocked {
        /// Last cycle at which the job made architectural progress.
        stalled_since: u64,
        /// Cycle at which the watchdog declared livelock.
        detected_at: u64,
    },
}

/// The artifact a tenant gets back for one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission index (stable across runs of the same fleet).
    pub job: usize,
    /// The spec's name.
    pub name: String,
    /// Terminal status.
    pub exit: JobExit,
    /// Simulated cycles actually executed.
    pub cycles: u64,
    /// Host wall-clock seconds spent executing (summed across segments,
    /// excluding time parked in queues).
    pub wall_secs: f64,
    /// Times the job was preempted and parked as a snapshot.
    pub preemptions: u64,
    /// Resumes that landed on a different worker than the one that
    /// parked the job.
    pub migrations: u64,
    /// Worker ids that executed segments of this job, in order (repeats
    /// collapsed).
    pub workers: Vec<usize>,
    /// Host fast-path diagnostics accumulated across all segments.
    pub host_perf: HostPerf,
    /// Fingerprint of the job's architectural outcome (final cycle +
    /// platform statistics + architectural metrics). A pure function of
    /// the [`crate::JobSpec`]: identical regardless of worker count,
    /// preemption pattern, or steal order. Zero for panicked jobs (the
    /// platform unwound with the panic).
    pub digest: u64,
    /// Final snapshot wire bytes, when the scheduler was asked to keep
    /// them ([`crate::SchedulerConfig::capture_final_snapshots`]).
    pub final_snapshot: Option<Vec<u8>>,
    /// Perfetto trace path, when the spec asked for a trace and the
    /// scheduler was given an artifact directory.
    pub trace_path: Option<String>,
}

impl JobReport {
    /// True for [`JobExit::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self.exit, JobExit::Completed { .. })
    }

    /// Simulated cycles per host wall-clock second; 0 when no time was
    /// measured.
    pub fn cyc_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serde). Snapshot bytes are summarized by length, not
    /// inlined.
    pub fn to_json(&self) -> String {
        let exit = match &self.exit {
            JobExit::Completed { idle } => {
                format!("{{\"kind\": \"completed\", \"idle\": {idle}}}")
            }
            JobExit::Panicked { message } => {
                format!("{{\"kind\": \"panicked\", \"message\": \"{}\"}}", escape(message))
            }
            JobExit::Livelocked { stalled_since, detected_at } => format!(
                "{{\"kind\": \"livelocked\", \"stalled_since\": {stalled_since}, \
                 \"detected_at\": {detected_at}}}"
            ),
        };
        let workers: Vec<String> = self.workers.iter().map(usize::to_string).collect();
        let trace = match &self.trace_path {
            Some(p) => format!("\"{}\"", escape(p)),
            None => "null".into(),
        };
        format!(
            "{{\n  \"job\": {},\n  \"name\": \"{}\",\n  \"exit\": {},\n  \"cycles\": {},\n  \
             \"wall_secs\": {:.6},\n  \"cyc_per_sec\": {:.1},\n  \"preemptions\": {},\n  \
             \"migrations\": {},\n  \"workers\": [{}],\n  \"digest\": \"{:#018x}\",\n  \
             \"block_cache_hit_rate\": {:.4},\n  \"snapshot_bytes\": {},\n  \"trace\": {}\n}}",
            self.job,
            escape(&self.name),
            exit,
            self.cycles,
            self.wall_secs,
            self.cyc_per_sec(),
            self.preemptions,
            self.migrations,
            workers.join(", "),
            self.digest,
            self.host_perf.block_cache_hit_rate(),
            self.final_snapshot.as_ref().map_or(0, Vec::len),
            trace,
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_every_exit_kind() {
        let mut r = JobReport {
            job: 3,
            name: "t".into(),
            exit: JobExit::Completed { idle: true },
            cycles: 1000,
            wall_secs: 0.5,
            preemptions: 2,
            migrations: 1,
            workers: vec![0, 1],
            host_perf: HostPerf::default(),
            digest: 0xABCD,
            final_snapshot: None,
            trace_path: None,
        };
        assert!(r.to_json().contains("\"completed\""));
        assert!((r.cyc_per_sec() - 2000.0).abs() < 1e-9);
        r.exit = JobExit::Panicked { message: "boom \"quote\"".into() };
        assert!(r.to_json().contains("\\\"quote\\\""));
        r.exit = JobExit::Livelocked { stalled_since: 5, detected_at: 9 };
        assert!(r.to_json().contains("\"livelocked\""));
    }
}
