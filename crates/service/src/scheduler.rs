//! The job scheduler: a fixed pool of OS worker threads, per-worker run
//! queues with work stealing, and cooperative epoch-boundary preemption.
//!
//! ## Execution model
//!
//! Each submitted [`JobSpec`] becomes a task. Tasks are dealt round-robin
//! onto per-worker queues; an idle worker drains its own queue front,
//! then the global injector, then steals from the back of its peers'
//! queues. A worker executes a job in *segments*: it builds the platform
//! from the spec (or restores the parked snapshot), then advances in
//! quantum slices aligned to [`Platform::preemption_grain`] until the job
//! quiesces, exhausts its budget, livelocks (per-job [`Watchdog`]), or a
//! preemption point decides to yield — at which point the platform is
//! snapshotted to wire bytes, the task re-queued, and the worker moves
//! on. A resumed task may land on any worker: host state (fast-path
//! caches, sleep schedules) is derived, never serialized, so rebuilding
//! the platform elsewhere and restoring the snapshot is a *complete*
//! migration.
//!
//! ## Determinism
//!
//! Quantum slices are rounded up to grain multiples, so every cut lands
//! on an epoch boundary and the epoch schedule — and with it every
//! snapshot byte — matches an uninterrupted run (proven in
//! `tests/service_equivalence.rs`). Watchdog stall state rides in the
//! parked task, so livelock detection is independent of where segments
//! execute.
//!
//! ## Failure isolation
//!
//! The whole segment (build, restore, run) executes under
//! `catch_unwind`; a panicking job — a [`crate::PoisonEngine`], a bug in
//! an engine — becomes a [`JobExit::Panicked`] report and the worker
//! keeps serving the remaining jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use smappic_core::{HostPerf, Platform, Watchdog, WatchdogConfig};
use smappic_sim::{fnv1a, Cycle, Snapshot};

use crate::report::{JobExit, JobReport};
use crate::spec::JobSpec;

/// When a running job offers its preemption points to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Run every segment to completion (serial batch semantics).
    Never,
    /// Yield only while other tasks are waiting in a queue — the
    /// fair-sharing default.
    WhenContended,
    /// Yield at every quantum boundary (maximum churn; what the
    /// determinism suites use to stress migration).
    Always,
}

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// OS worker threads in the pool.
    pub workers: usize,
    /// Target cycles per scheduling quantum; rounded up to the job's
    /// [`Platform::preemption_grain`] so cuts stay on epoch boundaries.
    pub quantum: u64,
    /// Per-job livelock detection (state persists across migrations).
    pub watchdog: WatchdogConfig,
    /// Preemption policy.
    pub preempt: PreemptMode,
    /// Forbid the worker that parked a job from resuming it while peers
    /// exist — guarantees every preemption is a migration. Test knob.
    pub force_migrate: bool,
    /// Keep each completed job's final snapshot bytes in its report (the
    /// equivalence suite compares them; costs memory on big platforms).
    pub capture_final_snapshots: bool,
    /// Directory for per-job Perfetto traces (jobs with `trace: true`).
    pub trace_dir: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            quantum: 50_000,
            watchdog: WatchdogConfig::default(),
            preempt: PreemptMode::WhenContended,
            force_migrate: false,
            capture_final_snapshots: false,
            trace_dir: None,
        }
    }
}

/// Fingerprint of a platform's architectural outcome: final cycle,
/// aggregated statistics, and the architectural metrics registry. Host
/// diagnostics (wall time, fast-path counters) are deliberately excluded,
/// so the digest is a pure function of the job spec — identical across
/// worker counts, steal orders, and preemption patterns.
pub fn digest_platform(p: &Platform) -> u64 {
    let text =
        format!("{}\n{}\n{}", p.now(), p.stats(), p.metrics().architectural().snapshot_text());
    fnv1a(text.as_bytes())
}

/// A job in flight: the spec plus everything a resume needs.
#[derive(Debug)]
struct Task {
    id: usize,
    spec: JobSpec,
    /// Parked snapshot wire bytes; `None` before the first segment.
    state: Option<Vec<u8>>,
    /// Cycles executed so far.
    spent: u64,
    preemptions: u64,
    migrations: u64,
    /// Workers that executed segments, repeats collapsed.
    workers: Vec<usize>,
    /// Worker that parked the last segment (migration accounting).
    last_worker: Option<usize>,
    /// Worker forbidden from resuming this task (`force_migrate`).
    banned: Option<usize>,
    /// Watchdog stall state carried across segments.
    wd_sig: Option<u64>,
    wd_change_at: Cycle,
    wall_secs: f64,
    perf: HostPerf,
}

/// How one execution segment ended.
enum Segment {
    Done { p: Box<Platform>, idle: bool, spent: u64 },
    Livelocked { p: Box<Platform>, since: Cycle, spent: u64 },
    Parked { bytes: Vec<u8>, spent: u64, wd: (Option<u64>, Cycle), perf: HostPerf },
}

struct Shared {
    locals: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    /// Tasks currently sitting in any queue (drives `WhenContended`).
    queued: AtomicUsize,
    /// Jobs not yet reported; workers exit when it reaches zero.
    outstanding: AtomicUsize,
    reports: Mutex<Vec<JobReport>>,
}

/// The multi-tenant job scheduler. See the module docs for the execution
/// model; construct with a [`SchedulerConfig`] and call
/// [`Scheduler::run`].
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// A scheduler with the given tuning.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.workers >= 1, "the pool needs at least one worker");
        assert!(cfg.quantum >= 1, "the quantum must be positive");
        Self { cfg }
    }

    /// A one-worker, never-preempting scheduler: the serial
    /// job-at-a-time baseline `servebench` measures the pool against.
    pub fn serial() -> Self {
        Self::new(SchedulerConfig {
            workers: 1,
            preempt: PreemptMode::Never,
            ..SchedulerConfig::default()
        })
    }

    /// The configured tuning.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Runs every job to a terminal state and returns one report per
    /// spec, in submission order. Panicking jobs are isolated into
    /// [`JobExit::Panicked`] reports; the pool shuts down gracefully
    /// once every job has reported.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobReport> {
        for (i, s) in specs.iter().enumerate() {
            if let Err(e) = s.validate() {
                panic!("job {i} ({:?}) is invalid: {e}", s.name);
            }
        }
        let workers = self.cfg.workers;
        let shared = Shared {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(specs.len()),
            outstanding: AtomicUsize::new(specs.len()),
            reports: Mutex::new(Vec::with_capacity(specs.len())),
        };
        for (id, spec) in specs.iter().enumerate() {
            let task = Task {
                id,
                spec: spec.clone(),
                state: None,
                spent: 0,
                preemptions: 0,
                migrations: 0,
                workers: Vec::new(),
                last_worker: None,
                banned: None,
                wd_sig: None,
                wd_change_at: 0,
                wall_secs: 0.0,
                perf: HostPerf::default(),
            };
            shared.locals[id % workers].lock().expect("queue lock").push_back(task);
        }
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                let cfg = &self.cfg;
                scope.spawn(move || worker_loop(w, shared, cfg));
            }
        });
        let mut reports = shared.reports.into_inner().expect("report lock");
        reports.sort_by_key(|r| r.job);
        reports
    }
}

fn worker_loop(w: usize, sh: &Shared, cfg: &SchedulerConfig) {
    loop {
        match next_task(w, sh) {
            Some(task) => run_segment(w, task, sh, cfg),
            None => {
                if sh.outstanding.load(Ordering::SeqCst) == 0 {
                    return; // graceful shutdown: every job reported
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// Own queue front → injector → steal peers' backs. Tasks banned for
/// this worker (force-migrate) are left for a peer; with a single worker
/// the ban is void (nobody else could ever run them).
fn next_task(w: usize, sh: &Shared) -> Option<Task> {
    let many = sh.locals.len() > 1;
    if let Some(t) = sh.locals[w].lock().expect("queue lock").pop_front() {
        sh.queued.fetch_sub(1, Ordering::SeqCst);
        return Some(t);
    }
    {
        let mut inj = sh.injector.lock().expect("queue lock");
        for _ in 0..inj.len() {
            let t = inj.pop_front().expect("length checked");
            if many && t.banned == Some(w) {
                inj.push_back(t);
            } else {
                sh.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
    }
    for o in 0..sh.locals.len() {
        if o == w {
            continue;
        }
        let mut q = sh.locals[o].lock().expect("queue lock");
        if let Some(pos) = q.iter().rposition(|t| !(many && t.banned == Some(w))) {
            let t = q.remove(pos).expect("position just found");
            sh.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
    }
    None
}

/// Executes one segment of `task` on worker `w` and either files its
/// report or parks it back into the injector.
fn run_segment(w: usize, mut task: Task, sh: &Shared, cfg: &SchedulerConfig) {
    if task.workers.last() != Some(&w) {
        task.workers.push(w);
    }
    if let Some(prev) = task.last_worker {
        if prev != w {
            task.migrations += 1;
        }
    }
    task.banned = None;
    let spec = task.spec.clone();
    let budget = spec.budget;
    let resumed_from = task.state.take();
    let spent0 = task.spent;
    let wd_state = (task.wd_sig, task.wd_change_at);
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut p = Box::new(spec.build());
        if let Some(bytes) = &resumed_from {
            let snap = Snapshot::from_bytes(bytes).expect("parked snapshot parses");
            p.restore(&snap).expect("parked snapshot restores");
        }
        let parallel = spec.parallel();
        let mut wd = Watchdog::resume(cfg.watchdog.clone(), wd_state.0, wd_state.1);
        if resumed_from.is_none() {
            // Baseline sample so `stalled_since` is exact from cycle 0.
            let sig = p.progress_signature();
            let _ = wd.observe(p.now(), sig);
        }
        // Align the quantum to the grain: every cut lands on an epoch
        // boundary, keeping sliced and unsliced runs byte-identical.
        let grain = p.preemption_grain();
        let quantum = grain * cfg.quantum.div_ceil(grain).max(1);
        let mut spent = spent0;
        loop {
            let slice = quantum.min(budget - spent);
            spent += p.run_preemptible(slice, parallel, |_, _| false);
            if p.is_idle() {
                return Segment::Done { p, idle: true, spent };
            }
            if spent >= budget {
                return Segment::Done { p, idle: false, spent };
            }
            if let Some(since) = wd.observe(p.now(), p.progress_signature()) {
                return Segment::Livelocked { p, since, spent };
            }
            let yield_now = match cfg.preempt {
                PreemptMode::Never => false,
                PreemptMode::Always => true,
                PreemptMode::WhenContended => sh.queued.load(Ordering::SeqCst) > 0,
            };
            if yield_now {
                let bytes = p.snapshot().to_bytes();
                return Segment::Parked { bytes, spent, wd: wd.state(), perf: p.host_perf() };
            }
        }
    }));
    task.wall_secs += t0.elapsed().as_secs_f64();
    match result {
        Err(payload) => {
            let message = payload_message(payload.as_ref());
            file_report(
                sh,
                JobReport {
                    job: task.id,
                    name: task.spec.name.clone(),
                    exit: JobExit::Panicked { message },
                    cycles: task.spent,
                    wall_secs: task.wall_secs,
                    preemptions: task.preemptions,
                    migrations: task.migrations,
                    workers: task.workers,
                    host_perf: task.perf,
                    digest: 0,
                    final_snapshot: None,
                    trace_path: None,
                },
            );
        }
        Ok(Segment::Done { mut p, idle, spent }) => {
            let digest = digest_platform(&p);
            let final_snapshot = cfg.capture_final_snapshots.then(|| p.snapshot().to_bytes());
            let trace_path = if task.spec.trace {
                cfg.trace_dir.as_deref().and_then(|d| write_trace(&mut p, d, task.id, &spec.name))
            } else {
                None
            };
            let mut perf = task.perf;
            perf += p.host_perf();
            file_report(
                sh,
                JobReport {
                    job: task.id,
                    name: task.spec.name.clone(),
                    exit: JobExit::Completed { idle },
                    cycles: spent,
                    wall_secs: task.wall_secs,
                    preemptions: task.preemptions,
                    migrations: task.migrations,
                    workers: task.workers,
                    host_perf: perf,
                    digest,
                    final_snapshot,
                    trace_path,
                },
            );
        }
        Ok(Segment::Livelocked { p, since, spent }) => {
            let mut perf = task.perf;
            perf += p.host_perf();
            file_report(
                sh,
                JobReport {
                    job: task.id,
                    name: task.spec.name.clone(),
                    exit: JobExit::Livelocked { stalled_since: since, detected_at: p.now() },
                    cycles: spent,
                    wall_secs: task.wall_secs,
                    preemptions: task.preemptions,
                    migrations: task.migrations,
                    workers: task.workers,
                    host_perf: perf,
                    digest: digest_platform(&p),
                    final_snapshot: cfg.capture_final_snapshots.then(|| p.snapshot().to_bytes()),
                    trace_path: None,
                },
            );
        }
        Ok(Segment::Parked { bytes, spent, wd, perf }) => {
            task.state = Some(bytes);
            task.spent = spent;
            task.preemptions += 1;
            (task.wd_sig, task.wd_change_at) = wd;
            task.perf += perf;
            task.last_worker = Some(w);
            task.banned = cfg.force_migrate.then_some(w);
            sh.queued.fetch_add(1, Ordering::SeqCst);
            sh.injector.lock().expect("queue lock").push_back(task);
        }
    }
}

fn file_report(sh: &Shared, report: JobReport) {
    sh.reports.lock().expect("report lock").push(report);
    sh.outstanding.fetch_sub(1, Ordering::SeqCst);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn write_trace(p: &mut Platform, dir: &Path, job: usize, name: &str) -> Option<String> {
    std::fs::create_dir_all(dir).ok()?;
    let json = p.take_trace().to_perfetto_json(100);
    let path = dir.join(format!("job{job}-{name}.trace.json"));
    std::fs::write(&path, json).ok()?;
    Some(path.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn a_single_job_completes_and_digests_deterministically() {
        let spec = JobSpec::small("solo", WorkloadSpec::AmoHeavy { ops: 30, seed: 3 });
        let a = Scheduler::serial().run(std::slice::from_ref(&spec));
        let b = Scheduler::serial().run(std::slice::from_ref(&spec));
        assert_eq!(a.len(), 1);
        assert!(a[0].is_completed());
        assert!(matches!(a[0].exit, JobExit::Completed { idle: true }));
        assert_eq!(a[0].digest, b[0].digest);
        assert_eq!(a[0].cycles, b[0].cycles);
        assert_eq!(a[0].preemptions, 0);
    }

    #[test]
    fn preemption_re_queues_and_still_completes() {
        let mut spec = JobSpec::small("churn", WorkloadSpec::AmoHeavy { ops: 60, seed: 5 });
        spec.budget = 4_000_000;
        let cfg = SchedulerConfig {
            workers: 2,
            quantum: 2_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        };
        let reports = Scheduler::new(cfg).run(&[spec.clone()]);
        assert!(reports[0].is_completed());
        assert!(reports[0].preemptions > 0, "Always must preempt a long job");
        assert!(reports[0].migrations > 0, "force_migrate must move it across workers");
        let baseline = Scheduler::serial().run(&[spec]);
        assert_eq!(reports[0].digest, baseline[0].digest);
        assert_eq!(reports[0].cycles, baseline[0].cycles);
    }
}
