//! The job scheduler: a fixed pool of OS worker threads, per-worker run
//! queues with work stealing, and cooperative epoch-boundary preemption.
//!
//! ## Execution model
//!
//! Each submitted [`JobSpec`] becomes a task. Tasks are dealt round-robin
//! onto per-worker queues; an idle worker drains its own queue front,
//! then the global injector, then steals from the back of its peers'
//! queues. A worker executes a job in *segments*: it builds the platform
//! from the spec (or restores the parked image), then advances in
//! quantum slices aligned to [`Platform::preemption_grain`] until the job
//! quiesces, exhausts its budget, livelocks (per-job [`Watchdog`]), or a
//! preemption point decides to yield — at which point the platform is
//! parked, the task re-queued, and the worker moves on. A resumed task
//! may land on any worker: host state (fast-path caches, sleep
//! schedules) is derived, never serialized, so rebuilding the platform
//! elsewhere and restoring the image is a *complete* migration.
//!
//! ## Parked images
//!
//! A parked task holds a compressed `SMAPSTRM` full image plus, when it
//! pays, a compressed [`SnapDelta`] against that image: after the first
//! park only the sections the segment actually dirtied are re-stored.
//! When the delta grows past half the base's size the park rebases to a
//! fresh full image. The base uses the same wire format the checkpoint
//! policy spills to disk, so parking and crash recovery share one path.
//!
//! ## Crash-recoverable checkpoints
//!
//! With a [`CheckpointPolicy`], every job spills its state to a private
//! directory every N executed quanta — streamed straight to disk
//! (bounded memory) and published with an atomic rename, metadata last,
//! so a torn write is always detectable. [`Scheduler::resume`] rebuilds
//! a fleet from those directories after a crash: terminal jobs are
//! returned from their `report.txt` markers without re-execution, validly
//! spilled jobs restore mid-flight, and anything torn or missing restarts
//! from cycle 0 — correct because jobs are deterministic.
//!
//! ## Determinism
//!
//! Quantum slices are rounded up to grain multiples, so every cut lands
//! on an epoch boundary and the epoch schedule — and with it every
//! snapshot byte — matches an uninterrupted run (proven in
//! `tests/service_equivalence.rs`). Watchdog stall state rides in the
//! parked task and the on-disk metadata, so livelock detection is
//! independent of where segments execute.
//!
//! ## Failure isolation
//!
//! The whole segment (build, restore, run) executes under
//! `catch_unwind`; a panicking job — a [`crate::PoisonEngine`], a bug in
//! an engine — becomes a [`JobExit::Panicked`] report and the worker
//! keeps serving the remaining jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use smappic_core::{HostPerf, Platform, Watchdog, WatchdogConfig};
use smappic_sim::{codec, fnv1a, Cycle, SnapDelta, Snapshot, StreamSink};

use crate::report::{JobExit, JobReport};
use crate::spec::JobSpec;

/// When a running job offers its preemption points to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Run every segment to completion (serial batch semantics).
    Never,
    /// Yield only while other tasks are waiting in a queue — the
    /// fair-sharing default.
    WhenContended,
    /// Yield at every quantum boundary (maximum churn; what the
    /// determinism suites use to stress migration).
    Always,
}

/// Periodic spill-to-disk of every running job's state, for crash
/// recovery via [`Scheduler::resume`].
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Write a disk checkpoint every this many executed quanta (0
    /// disables periodic spills; terminal `report.txt` markers are still
    /// written).
    pub every_quanta: u64,
    /// Root directory; each job gets `job{id:04}-{spec digest:016x}/`
    /// beneath it.
    pub dir: PathBuf,
}

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// OS worker threads in the pool.
    pub workers: usize,
    /// Target cycles per scheduling quantum; rounded up to the job's
    /// [`Platform::preemption_grain`] so cuts stay on epoch boundaries.
    pub quantum: u64,
    /// Per-job livelock detection (state persists across migrations).
    pub watchdog: WatchdogConfig,
    /// Preemption policy.
    pub preempt: PreemptMode,
    /// Forbid the worker that parked a job from resuming it while peers
    /// exist — guarantees every preemption is a migration. Test knob.
    pub force_migrate: bool,
    /// Keep each completed job's final image (compressed) in its report
    /// (the equivalence suite compares them; costs memory on big
    /// platforms).
    pub capture_final_snapshots: bool,
    /// Spill job state to disk for crash recovery.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Directory for per-job Perfetto traces (jobs with `trace: true`).
    pub trace_dir: Option<PathBuf>,
    /// Simulate a crash: after this many disk checkpoints have been
    /// written fleet-wide, every worker stops dead — no parks, no
    /// reports — as if the process had been killed. Recovery-test knob.
    #[doc(hidden)]
    pub abandon_after_checkpoints: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            quantum: 50_000,
            watchdog: WatchdogConfig::default(),
            preempt: PreemptMode::WhenContended,
            force_migrate: false,
            capture_final_snapshots: false,
            checkpoint: None,
            trace_dir: None,
            abandon_after_checkpoints: None,
        }
    }
}

/// Fingerprint of a platform's architectural outcome: final cycle,
/// aggregated statistics, and the architectural metrics registry. Host
/// diagnostics (wall time, fast-path counters) are deliberately excluded,
/// so the digest is a pure function of the job spec — identical across
/// worker counts, steal orders, and preemption patterns.
pub fn digest_platform(p: &Platform) -> u64 {
    let text =
        format!("{}\n{}\n{}", p.now(), p.stats(), p.metrics().architectural().snapshot_text());
    fnv1a(text.as_bytes())
}

/// A parked job's state: a compressed full image (the same `SMAPSTRM`
/// wire form the checkpoint policy spills) plus, when it pays, a
/// compressed delta against it holding only the dirty sections.
#[derive(Debug)]
struct ParkState {
    /// Compressed stream bytes of the last full image.
    base: Vec<u8>,
    /// Codec-compressed `SMAPDLTA` wire bytes against `base`.
    delta: Option<Vec<u8>>,
}

impl ParkState {
    fn stored_bytes(&self) -> u64 {
        (self.base.len() + self.delta.as_ref().map_or(0, Vec::len)) as u64
    }
}

/// A job in flight: the spec plus everything a resume needs.
#[derive(Debug)]
struct Task {
    id: usize,
    spec: JobSpec,
    /// Parked image; `None` before the first segment.
    state: Option<ParkState>,
    /// Cycles executed so far.
    spent: u64,
    preemptions: u64,
    migrations: u64,
    /// Workers that executed segments, repeats collapsed.
    workers: Vec<usize>,
    /// Worker that parked the last segment (migration accounting).
    last_worker: Option<usize>,
    /// Worker forbidden from resuming this task (`force_migrate`).
    banned: Option<usize>,
    /// Watchdog stall state carried across segments.
    wd_sig: Option<u64>,
    wd_change_at: Cycle,
    wall_secs: f64,
    perf: HostPerf,
    /// Cumulative raw wire bytes a full snapshot would have cost at each
    /// park (the baseline the compression ratio is measured against).
    park_raw_bytes: u64,
    /// Cumulative bytes actually held while parked (base + delta).
    park_stored_bytes: u64,
}

impl Task {
    fn fresh(id: usize, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            state: None,
            spent: 0,
            preemptions: 0,
            migrations: 0,
            workers: Vec::new(),
            last_worker: None,
            banned: None,
            wd_sig: None,
            wd_change_at: 0,
            wall_secs: 0.0,
            perf: HostPerf::default(),
            park_raw_bytes: 0,
            park_stored_bytes: 0,
        }
    }
}

/// How one execution segment ended.
enum Segment {
    Done {
        p: Box<Platform>,
        idle: bool,
        spent: u64,
    },
    Livelocked {
        p: Box<Platform>,
        since: Cycle,
        spent: u64,
    },
    Parked {
        park: ParkState,
        raw: u64,
        spent: u64,
        wd: (Option<u64>, Cycle),
        perf: HostPerf,
    },
    /// The abandon knob fired mid-segment: drop the task without a
    /// report, simulating a killed process.
    Abandoned,
}

struct Shared {
    locals: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    /// Tasks currently sitting in any queue (drives `WhenContended`).
    queued: AtomicUsize,
    /// Jobs not yet reported; workers exit when it reaches zero.
    outstanding: AtomicUsize,
    /// Disk checkpoints written fleet-wide (feeds the abandon knob).
    ckpts: AtomicU64,
    /// Simulated-crash flag: when set, workers stop dead.
    abandoned: AtomicBool,
    reports: Mutex<Vec<JobReport>>,
}

/// The multi-tenant job scheduler. See the module docs for the execution
/// model; construct with a [`SchedulerConfig`] and call
/// [`Scheduler::run`].
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// A scheduler with the given tuning.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.workers >= 1, "the pool needs at least one worker");
        assert!(cfg.quantum >= 1, "the quantum must be positive");
        Self { cfg }
    }

    /// A one-worker, never-preempting scheduler: the serial
    /// job-at-a-time baseline `servebench` measures the pool against.
    pub fn serial() -> Self {
        Self::new(SchedulerConfig {
            workers: 1,
            preempt: PreemptMode::Never,
            ..SchedulerConfig::default()
        })
    }

    /// The configured tuning.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Runs every job to a terminal state and returns one report per
    /// spec, in submission order. Panicking jobs are isolated into
    /// [`JobExit::Panicked`] reports; the pool shuts down gracefully
    /// once every job has reported.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobReport> {
        self.launch(specs, false)
    }

    /// Like [`Scheduler::run`], but first scans the checkpoint directory
    /// for prior progress: jobs with a terminal `report.txt` marker are
    /// returned without re-execution, jobs with a valid
    /// `state.bin`/`meta.txt` pair resume from the spilled image, and
    /// everything else — missing, truncated, or digest-mismatched
    /// artifacts, or a directory whose `spec.txt` no longer matches the
    /// submitted spec — restarts from cycle 0, which is always correct
    /// because jobs are deterministic functions of their specs.
    ///
    /// # Panics
    ///
    /// Panics when no [`SchedulerConfig::checkpoint`] policy is
    /// configured — resuming without a directory to resume from is a
    /// caller bug.
    pub fn resume(&self, specs: &[JobSpec]) -> Vec<JobReport> {
        assert!(self.cfg.checkpoint.is_some(), "resume requires a checkpoint policy");
        self.launch(specs, true)
    }

    fn launch(&self, specs: &[JobSpec], resume: bool) -> Vec<JobReport> {
        for (i, s) in specs.iter().enumerate() {
            if let Err(e) = s.validate() {
                panic!("job {i} ({:?}) is invalid: {e}", s.name);
            }
        }
        let workers = self.cfg.workers;
        let mut preloaded: Vec<JobReport> = Vec::new();
        let mut tasks: Vec<Task> = Vec::new();
        for (id, spec) in specs.iter().enumerate() {
            if resume {
                let policy = self.cfg.checkpoint.as_ref().expect("checked in resume");
                match recover_job(&policy.dir, id, spec) {
                    Recovered::Terminal(r) => {
                        preloaded.push(*r);
                        continue;
                    }
                    Recovered::Parked(t) => {
                        tasks.push(*t);
                        continue;
                    }
                    Recovered::Fresh => {}
                }
            }
            tasks.push(Task::fresh(id, spec.clone()));
        }
        let shared = Shared {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(tasks.len()),
            outstanding: AtomicUsize::new(tasks.len()),
            ckpts: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
            reports: Mutex::new(Vec::with_capacity(specs.len())),
        };
        for task in tasks {
            let q = task.id % workers;
            shared.locals[q].lock().expect("queue lock").push_back(task);
        }
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                let cfg = &self.cfg;
                scope.spawn(move || worker_loop(w, shared, cfg));
            }
        });
        let mut reports = shared.reports.into_inner().expect("report lock");
        reports.extend(preloaded);
        reports.sort_by_key(|r| r.job);
        reports
    }
}

fn worker_loop(w: usize, sh: &Shared, cfg: &SchedulerConfig) {
    loop {
        if sh.abandoned.load(Ordering::SeqCst) {
            return; // simulated crash: stop serving immediately
        }
        match next_task(w, sh) {
            Some(task) => run_segment(w, task, sh, cfg),
            None => {
                if sh.outstanding.load(Ordering::SeqCst) == 0 {
                    return; // graceful shutdown: every job reported
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// Own queue front → injector → steal peers' backs. Tasks banned for
/// this worker (force-migrate) are left for a peer; with a single worker
/// the ban is void (nobody else could ever run them).
fn next_task(w: usize, sh: &Shared) -> Option<Task> {
    let many = sh.locals.len() > 1;
    if let Some(t) = sh.locals[w].lock().expect("queue lock").pop_front() {
        sh.queued.fetch_sub(1, Ordering::SeqCst);
        return Some(t);
    }
    {
        let mut inj = sh.injector.lock().expect("queue lock");
        for _ in 0..inj.len() {
            let t = inj.pop_front().expect("length checked");
            if many && t.banned == Some(w) {
                inj.push_back(t);
            } else {
                sh.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
    }
    for o in 0..sh.locals.len() {
        if o == w {
            continue;
        }
        let mut q = sh.locals[o].lock().expect("queue lock");
        if let Some(pos) = q.iter().rposition(|t| !(many && t.banned == Some(w))) {
            let t = q.remove(pos).expect("position just found");
            sh.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
    }
    None
}

/// Parks `snap`, preferring a compressed delta against the previous
/// park's full image; rebases to a fresh compressed stream when there is
/// no base or the delta stops paying (more than half the base's size).
fn park_state(prev: Option<&ParkState>, snap: &Snapshot) -> ParkState {
    if let Some(prev) = prev {
        if let Ok(base) = Snapshot::from_stream_bytes(&prev.base) {
            if let Ok(d) = SnapDelta::between(&base, snap) {
                let dz = codec::compress(&d.to_bytes());
                if dz.len().saturating_mul(2) <= prev.base.len() {
                    return ParkState { base: prev.base.clone(), delta: Some(dz) };
                }
            }
        }
    }
    ParkState { base: snap.to_stream_bytes(true), delta: None }
}

/// Final-image capture and size accounting: the compressed bytes (when
/// the scheduler keeps them), the raw wire size, and the compressed
/// size. All zero/absent when neither snapshots nor checkpoints were
/// requested — measuring would cost a full serialization walk.
fn final_sizes(p: &Platform, cfg: &SchedulerConfig) -> (Option<Vec<u8>>, u64, u64) {
    if !cfg.capture_final_snapshots && cfg.checkpoint.is_none() {
        return (None, 0, 0);
    }
    let snap = p.snapshot();
    let raw = snap.to_bytes().len() as u64;
    let z = snap.to_stream_bytes(true);
    let zlen = z.len() as u64;
    (cfg.capture_final_snapshots.then_some(z), raw, zlen)
}

/// Executes one segment of `task` on worker `w` and either files its
/// report or parks it back into the injector.
fn run_segment(w: usize, mut task: Task, sh: &Shared, cfg: &SchedulerConfig) {
    if task.workers.last() != Some(&w) {
        task.workers.push(w);
    }
    if let Some(prev) = task.last_worker {
        if prev != w {
            task.migrations += 1;
        }
    }
    task.banned = None;
    let spec = task.spec.clone();
    let budget = spec.budget;
    let resumed_from = task.state.take();
    let spent0 = task.spent;
    let wd_state = (task.wd_sig, task.wd_change_at);
    // Frozen copies for checkpoint metadata written mid-segment.
    let (job_id, ck_preempt, ck_migr, ck_wall) =
        (task.id, task.preemptions, task.migrations, task.wall_secs);
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut p = Box::new(spec.build());
        if let Some(park) = &resumed_from {
            let base = Snapshot::from_stream_bytes(&park.base).expect("parked stream parses");
            let snap = match &park.delta {
                Some(dz) => {
                    let raw = codec::decompress(dz).expect("parked delta decompresses");
                    let d = SnapDelta::from_bytes(&raw).expect("parked delta parses");
                    base.apply_delta(&d).expect("parked delta applies to its base")
                }
                None => base,
            };
            p.restore(&snap).expect("parked snapshot restores");
        }
        let parallel = spec.parallel();
        let mut wd = Watchdog::resume(cfg.watchdog.clone(), wd_state.0, wd_state.1);
        if resumed_from.is_none() {
            // Baseline sample so `stalled_since` is exact from cycle 0.
            let sig = p.progress_signature();
            let _ = wd.observe(p.now(), sig);
        }
        // Align the quantum to the grain: every cut lands on an epoch
        // boundary, keeping sliced and unsliced runs byte-identical.
        let grain = p.preemption_grain();
        let quantum = grain * cfg.quantum.div_ceil(grain).max(1);
        let mut spent = spent0;
        let mut quanta: u64 = 0;
        loop {
            let slice = quantum.min(budget - spent);
            spent += p.run_preemptible(slice, parallel, |_, _| false);
            quanta += 1;
            if p.is_idle() {
                return Segment::Done { p, idle: true, spent };
            }
            if spent >= budget {
                return Segment::Done { p, idle: false, spent };
            }
            if let Some(since) = wd.observe(p.now(), p.progress_signature()) {
                return Segment::Livelocked { p, since, spent };
            }
            if let Some(policy) = &cfg.checkpoint {
                if policy.every_quanta > 0 && quanta.is_multiple_of(policy.every_quanta) {
                    let meta = CkptMeta {
                        spent,
                        preemptions: ck_preempt,
                        migrations: ck_migr,
                        wall_secs: ck_wall + t0.elapsed().as_secs_f64(),
                        wd: wd.state(),
                    };
                    if write_checkpoint(&policy.dir, job_id, &spec, &p, &meta).is_ok() {
                        let n = sh.ckpts.fetch_add(1, Ordering::SeqCst) + 1;
                        if cfg.abandon_after_checkpoints.is_some_and(|k| n >= k) {
                            sh.abandoned.store(true, Ordering::SeqCst);
                        }
                    }
                }
            }
            if sh.abandoned.load(Ordering::SeqCst) {
                return Segment::Abandoned;
            }
            let yield_now = match cfg.preempt {
                PreemptMode::Never => false,
                PreemptMode::Always => true,
                PreemptMode::WhenContended => sh.queued.load(Ordering::SeqCst) > 0,
            };
            if yield_now {
                let snap = p.snapshot();
                let raw = snap.to_bytes().len() as u64;
                let park = park_state(resumed_from.as_ref(), &snap);
                return Segment::Parked { park, raw, spent, wd: wd.state(), perf: p.host_perf() };
            }
        }
    }));
    task.wall_secs += t0.elapsed().as_secs_f64();
    match result {
        Err(payload) => {
            let message = payload_message(payload.as_ref());
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                exit: JobExit::Panicked { message },
                cycles: task.spent,
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: task.perf,
                digest: 0,
                snapshot_bytes: 0,
                compressed_bytes: 0,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z: None,
                trace_path: None,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Done { mut p, idle, spent }) => {
            let digest = digest_platform(&p);
            let (final_snapshot_z, snapshot_bytes, compressed_bytes) = final_sizes(&p, cfg);
            let trace_path = if task.spec.trace {
                cfg.trace_dir.as_deref().and_then(|d| write_trace(&mut p, d, task.id, &spec.name))
            } else {
                None
            };
            let mut perf = task.perf;
            perf += p.host_perf();
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                exit: JobExit::Completed { idle },
                cycles: spent,
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: perf,
                digest,
                snapshot_bytes,
                compressed_bytes,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z,
                trace_path,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Livelocked { p, since, spent }) => {
            let (final_snapshot_z, snapshot_bytes, compressed_bytes) = final_sizes(&p, cfg);
            let mut perf = task.perf;
            perf += p.host_perf();
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                exit: JobExit::Livelocked { stalled_since: since, detected_at: p.now() },
                cycles: spent,
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: perf,
                digest: digest_platform(&p),
                snapshot_bytes,
                compressed_bytes,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z,
                trace_path: None,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Parked { park, raw, spent, wd, perf }) => {
            task.park_raw_bytes += raw;
            task.park_stored_bytes += park.stored_bytes();
            task.state = Some(park);
            task.spent = spent;
            task.preemptions += 1;
            (task.wd_sig, task.wd_change_at) = wd;
            task.perf += perf;
            task.last_worker = Some(w);
            task.banned = cfg.force_migrate.then_some(w);
            sh.queued.fetch_add(1, Ordering::SeqCst);
            sh.injector.lock().expect("queue lock").push_back(task);
        }
        Ok(Segment::Abandoned) => {
            // Simulated crash: the task vanishes unreported, exactly as
            // if the process had been killed. `outstanding` never
            // reaches zero; workers exit via the abandoned flag.
        }
    }
}

fn file_report(sh: &Shared, report: JobReport) {
    sh.reports.lock().expect("report lock").push(report);
    sh.outstanding.fetch_sub(1, Ordering::SeqCst);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn write_trace(p: &mut Platform, dir: &Path, job: usize, name: &str) -> Option<String> {
    std::fs::create_dir_all(dir).ok()?;
    let json = p.take_trace().to_perfetto_json(100);
    let path = dir.join(format!("job{job}-{name}.trace.json"));
    std::fs::write(&path, json).ok()?;
    Some(path.to_string_lossy().into_owned())
}

// ---------------------------------------------------------------------
// Disk checkpoints
// ---------------------------------------------------------------------

/// Progress metadata spilled alongside `state.bin`.
struct CkptMeta {
    spent: u64,
    preemptions: u64,
    migrations: u64,
    wall_secs: f64,
    wd: (Option<u64>, Cycle),
}

/// The per-job checkpoint directory: id for human navigation, spec
/// digest so a stale directory from a different fleet can never be
/// mistaken for this job's.
fn job_dir(root: &Path, id: usize, spec: &JobSpec) -> PathBuf {
    root.join(format!("job{id:04}-{:016x}", spec.digest()))
}

/// Streams the platform to `state.bin` (compressed, bounded memory) and
/// then writes `meta.txt`, each published with an atomic rename. Meta
/// goes second: a crash between the two renames leaves a stale meta
/// whose state digest no longer matches the stream, which recovery
/// rejects in favor of a fresh deterministic run.
fn write_checkpoint(
    root: &Path,
    id: usize,
    spec: &JobSpec,
    p: &Platform,
    meta: &CkptMeta,
) -> Result<(), String> {
    let io = |e: std::io::Error| e.to_string();
    let dir = job_dir(root, id, spec);
    std::fs::create_dir_all(&dir).map_err(io)?;
    let spec_path = dir.join("spec.txt");
    if !spec_path.exists() {
        std::fs::write(&spec_path, spec.to_text()).map_err(io)?;
    }
    let tmp = dir.join("state.bin.tmp");
    let digest = {
        let file = std::fs::File::create(&tmp).map_err(io)?;
        let mut sink = StreamSink::new(std::io::BufWriter::new(file), true);
        p.snapshot_to(&mut sink).map_err(|e| e.to_string())?;
        sink.state_digest()
    };
    std::fs::rename(&tmp, dir.join("state.bin")).map_err(io)?;
    let wd_sig = meta.wd.0.map_or_else(|| "-".to_string(), |s| format!("{s:#x}"));
    let text = format!(
        "smappic-ckpt v1\nstate_digest {digest:#018x}\nspent {}\npreemptions {}\n\
         migrations {}\nwall_secs {:.6}\nwd {wd_sig} {}\n",
        meta.spent, meta.preemptions, meta.migrations, meta.wall_secs, meta.wd.1
    );
    let mtmp = dir.join("meta.txt.tmp");
    std::fs::write(&mtmp, text).map_err(io)?;
    std::fs::rename(&mtmp, dir.join("meta.txt")).map_err(io)
}

/// Writes the terminal `report.txt` marker so a later
/// [`Scheduler::resume`] returns this job without re-executing it.
fn persist_terminal(cfg: &SchedulerConfig, spec: &JobSpec, r: &JobReport) {
    let Some(policy) = &cfg.checkpoint else { return };
    let _ = write_report_marker(&job_dir(&policy.dir, r.job, spec), spec, r);
}

fn write_report_marker(dir: &Path, spec: &JobSpec, r: &JobReport) -> Result<(), String> {
    let io = |e: std::io::Error| e.to_string();
    std::fs::create_dir_all(dir).map_err(io)?;
    let spec_path = dir.join("spec.txt");
    if !spec_path.exists() {
        std::fs::write(&spec_path, spec.to_text()).map_err(io)?;
    }
    let exit = match &r.exit {
        JobExit::Completed { idle } => format!("completed {idle}"),
        JobExit::Livelocked { stalled_since, detected_at } => {
            format!("livelocked {stalled_since} {detected_at}")
        }
        JobExit::Panicked { message } => format!("panicked {}", message.replace('\n', " ")),
    };
    let text = format!(
        "smappic-report v1\nexit {exit}\ncycles {}\ndigest {:#018x}\nwall_secs {:.6}\n\
         preemptions {}\nmigrations {}\nsnapshot_bytes {}\ncompressed_bytes {}\n",
        r.cycles,
        r.digest,
        r.wall_secs,
        r.preemptions,
        r.migrations,
        r.snapshot_bytes,
        r.compressed_bytes
    );
    let tmp = dir.join("report.txt.tmp");
    std::fs::write(&tmp, text).map_err(io)?;
    std::fs::rename(&tmp, dir.join("report.txt")).map_err(io)
}

/// What recovery found in one job's checkpoint directory.
enum Recovered {
    /// The job already reached a terminal state; its report was rebuilt
    /// from the `report.txt` marker.
    Terminal(Box<JobReport>),
    /// A valid mid-flight spill; the task resumes from it.
    Parked(Box<Task>),
    /// Nothing usable; the job restarts from cycle 0.
    Fresh,
}

/// Inspects one job's checkpoint directory. Accepts only artifacts that
/// fully validate — the spec text matches the submitted spec, the
/// spilled stream parses (its trailer digest rejects truncation), and
/// the meta's state digest matches the stream — and falls back to a
/// fresh run otherwise, which is always correct because jobs are
/// deterministic.
fn recover_job(root: &Path, id: usize, spec: &JobSpec) -> Recovered {
    let dir = job_dir(root, id, spec);
    match std::fs::read_to_string(dir.join("spec.txt")) {
        Ok(text) if text == spec.to_text() => {}
        _ => return Recovered::Fresh,
    }
    if let Ok(text) = std::fs::read_to_string(dir.join("report.txt")) {
        if let Some(r) = parse_report_marker(id, &spec.name, &text) {
            return Recovered::Terminal(Box::new(r));
        }
    }
    let Ok(state) = std::fs::read(dir.join("state.bin")) else { return Recovered::Fresh };
    let Ok(meta_text) = std::fs::read_to_string(dir.join("meta.txt")) else {
        return Recovered::Fresh;
    };
    let Some((digest, meta)) = parse_meta(&meta_text) else { return Recovered::Fresh };
    let Ok(snap) = Snapshot::from_stream_bytes(&state) else { return Recovered::Fresh };
    if snap.state_digest() != digest {
        return Recovered::Fresh;
    }
    let mut task = Task::fresh(id, spec.clone());
    task.state = Some(ParkState { base: state, delta: None });
    task.spent = meta.spent;
    task.preemptions = meta.preemptions;
    task.migrations = meta.migrations;
    task.wall_secs = meta.wall_secs;
    (task.wd_sig, task.wd_change_at) = meta.wd;
    Recovered::Parked(Box::new(task))
}

/// `key value...` lookup over the line-oriented checkpoint text formats.
fn kv<'a>(lines: &[&'a str], key: &str) -> Option<&'a str> {
    lines.iter().find_map(|l| l.strip_prefix(key)?.strip_prefix(' ').map(str::trim))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_meta(text: &str) -> Option<(u64, CkptMeta)> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"smappic-ckpt v1") {
        return None;
    }
    let digest = parse_u64(kv(&lines, "state_digest")?)?;
    let spent = parse_u64(kv(&lines, "spent")?)?;
    let preemptions = parse_u64(kv(&lines, "preemptions")?)?;
    let migrations = parse_u64(kv(&lines, "migrations")?)?;
    let wall_secs: f64 = kv(&lines, "wall_secs")?.parse().ok()?;
    let mut wd_parts = kv(&lines, "wd")?.split_whitespace();
    let sig = wd_parts.next()?;
    let wd_sig = if sig == "-" { None } else { Some(parse_u64(sig)?) };
    let wd_at = parse_u64(wd_parts.next()?)?;
    Some((digest, CkptMeta { spent, preemptions, migrations, wall_secs, wd: (wd_sig, wd_at) }))
}

fn parse_report_marker(job: usize, name: &str, text: &str) -> Option<JobReport> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"smappic-report v1") {
        return None;
    }
    let exit_line = kv(&lines, "exit")?;
    let exit = if let Some(rest) = exit_line.strip_prefix("completed ") {
        JobExit::Completed { idle: rest.trim() == "true" }
    } else if let Some(rest) = exit_line.strip_prefix("livelocked ") {
        let mut it = rest.split_whitespace();
        JobExit::Livelocked {
            stalled_since: parse_u64(it.next()?)?,
            detected_at: parse_u64(it.next()?)?,
        }
    } else if let Some(rest) = exit_line.strip_prefix("panicked ") {
        JobExit::Panicked { message: rest.to_string() }
    } else {
        return None;
    };
    Some(JobReport {
        job,
        name: name.to_string(),
        exit,
        cycles: parse_u64(kv(&lines, "cycles")?)?,
        wall_secs: kv(&lines, "wall_secs")?.parse().ok()?,
        preemptions: parse_u64(kv(&lines, "preemptions")?)?,
        migrations: parse_u64(kv(&lines, "migrations")?)?,
        workers: Vec::new(),
        host_perf: HostPerf::default(),
        digest: parse_u64(kv(&lines, "digest")?)?,
        snapshot_bytes: parse_u64(kv(&lines, "snapshot_bytes")?)?,
        compressed_bytes: parse_u64(kv(&lines, "compressed_bytes")?)?,
        park_raw_bytes: 0,
        park_stored_bytes: 0,
        final_snapshot_z: None,
        trace_path: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn a_single_job_completes_and_digests_deterministically() {
        let spec = JobSpec::small("solo", WorkloadSpec::AmoHeavy { ops: 30, seed: 3 });
        let a = Scheduler::serial().run(std::slice::from_ref(&spec));
        let b = Scheduler::serial().run(std::slice::from_ref(&spec));
        assert_eq!(a.len(), 1);
        assert!(a[0].is_completed());
        assert!(matches!(a[0].exit, JobExit::Completed { idle: true }));
        assert_eq!(a[0].digest, b[0].digest);
        assert_eq!(a[0].cycles, b[0].cycles);
        assert_eq!(a[0].preemptions, 0);
    }

    #[test]
    fn preemption_re_queues_and_still_completes() {
        let mut spec = JobSpec::small("churn", WorkloadSpec::AmoHeavy { ops: 60, seed: 5 });
        spec.budget = 4_000_000;
        let cfg = SchedulerConfig {
            workers: 2,
            quantum: 2_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        };
        let reports = Scheduler::new(cfg).run(&[spec.clone()]);
        assert!(reports[0].is_completed());
        assert!(reports[0].preemptions > 0, "Always must preempt a long job");
        assert!(reports[0].migrations > 0, "force_migrate must move it across workers");
        let baseline = Scheduler::serial().run(&[spec]);
        assert_eq!(reports[0].digest, baseline[0].digest);
        assert_eq!(reports[0].cycles, baseline[0].cycles);
    }

    #[test]
    fn parked_tasks_store_compressed_state() {
        let mut spec = JobSpec::small("parked", WorkloadSpec::AmoHeavy { ops: 60, seed: 7 });
        spec.budget = 4_000_000;
        let cfg = SchedulerConfig {
            workers: 2,
            quantum: 2_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        };
        let reports = Scheduler::new(cfg).run(&[spec]);
        let r = &reports[0];
        assert!(r.is_completed());
        assert!(r.preemptions > 0);
        assert!(r.park_raw_bytes > 0, "parks must account their raw baseline");
        assert!(
            r.park_stored_bytes < r.park_raw_bytes,
            "parked images (compressed stream + deltas, {} B) must undercut \
             the raw wire baseline ({} B)",
            r.park_stored_bytes,
            r.park_raw_bytes
        );
    }
}
