//! The job scheduler: a multi-tenant resource manager over a pool of OS
//! worker threads, with admission control, per-tenant quotas, priority
//! scheduling with aging, cooperative epoch-boundary preemption, and an
//! elastic pool sized against a live cost model.
//!
//! ## Execution model
//!
//! Each submitted [`JobSpec`] first passes *admission control*: a pure
//! function of the fleet and the [`SchedulerConfig`], evaluated in
//! submission order, that reserves each job's full cycle budget against
//! its tenant's quota and bounds the pending queue. A refused job gets a
//! [`JobExit::Rejected`] report with a typed [`RejectReason`] — it never
//! executes a cycle, and the same fleet is refused identically on every
//! run (including [`Scheduler::resume`]).
//!
//! Admitted jobs become tasks in one central ready queue ordered by
//! *effective priority* (base priority plus an aging boost, see below),
//! then earliest deadline, then submission order. An idle worker
//! dispatches the best runnable task — skipping tasks whose tenant is
//! already at its in-flight cap — and executes it in *segments*: it
//! builds the platform from the spec (or restores the parked image),
//! then advances in quantum slices aligned to
//! [`Platform::preemption_grain`] until the job quiesces, exhausts its
//! budget, livelocks (per-job [`Watchdog`]), or a preemption point
//! decides to yield — at which point the platform is parked, the task
//! re-queued, and the worker moves on. A resumed task may land on any
//! worker: host state (fast-path caches, sleep schedules) is derived,
//! never serialized, so rebuilding the platform elsewhere and restoring
//! the image is a *complete* migration.
//!
//! ## Priorities, aging, preemption
//!
//! Priorities span `0..=`[`JobSpec::MAX_PRIORITY`]; higher dispatches
//! first. Every [`SchedulerConfig::aging_quanta`] fleet-wide executed
//! quanta a waiting task's effective priority rises one step (saturating
//! at the maximum), so low priority means *later*, never *never* — the
//! no-starvation property test pins this. Under
//! [`PreemptMode::WhenOutranked`] a running job parks as soon as a
//! strictly higher-effective-priority task is waiting, freeing its
//! worker (and its tenant's in-flight slot) for the outranking job via
//! the ordinary snapshot/park path.
//!
//! ## Tenant quotas
//!
//! A [`TenantQuota`] caps a tenant two ways: `max_in_flight` bounds how
//! many of its jobs execute concurrently (enforced at dispatch), and
//! `cycle_budget` bounds its aggregate simulated cycles (enforced at
//! admission by reserving each job's full budget up front — a job can
//! never out-spend its own budget, so the quota can never be exceeded
//! mid-flight; per-quantum epoch-grain spend accounting feeds the
//! metrics that prove it).
//!
//! ## Elastic pool
//!
//! With an [`ElasticPolicy`] the pool spans `min_workers..=max_workers`
//! OS threads; surplus workers sleep. Between quanta the scheduler
//! re-evaluates a simple live cost model: demand is the queue depth plus
//! the jobs in flight, and capacity beyond the floor is kept only while
//! the marginal worker's measured throughput (an EWMA of simulated
//! cyc/s, fed by segment wall times and [`HostPerf`]-informed cycle
//! counts) values above `worker_cost`. Resizing moves one worker per
//! evaluation to damp oscillation. Because parking is deterministic and
//! jobs are pure functions of their specs, elasticity never leaks into
//! results — only into wall time.
//!
//! ## Parked images
//!
//! A parked task holds a compressed `SMAPSTRM` full image plus, when it
//! pays, a compressed [`SnapDelta`] against that image: after the first
//! park only the sections the segment actually dirtied are re-stored.
//! When the delta grows past half the base's size the park rebases to a
//! fresh full image. The base uses the same wire format the checkpoint
//! policy spills to disk, so parking and crash recovery share one path.
//!
//! ## Crash-recoverable checkpoints
//!
//! With a [`CheckpointPolicy`], every job spills its state to a private
//! directory every N executed quanta — streamed straight to disk
//! (bounded memory) and published with an atomic rename, metadata last,
//! so a torn write is always detectable. [`Scheduler::resume`] rebuilds
//! a fleet from those directories after a crash: terminal jobs are
//! returned from their `report.txt` markers without re-execution, validly
//! spilled jobs restore mid-flight, and anything torn or missing restarts
//! from cycle 0 — correct because jobs are deterministic.
//!
//! ## Determinism
//!
//! Quantum slices are rounded up to grain multiples, so every cut lands
//! on an epoch boundary and the epoch schedule — and with it every
//! snapshot byte — matches an uninterrupted run (proven in
//! `tests/service_equivalence.rs`). Watchdog stall state rides in the
//! parked task and the on-disk metadata, so livelock detection is
//! independent of where segments execute. Admission and quota decisions
//! are pure functions of `(specs, config)`, so rejection is as
//! deterministic as execution.
//!
//! ## Failure isolation
//!
//! The whole segment (build, restore, run) executes under
//! `catch_unwind`; a panicking job — a [`crate::PoisonEngine`], a bug in
//! an engine — becomes a [`JobExit::Panicked`] report and the worker
//! keeps serving the remaining jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use smappic_core::{HostPerf, Platform, Watchdog, WatchdogConfig};
use smappic_sim::{
    codec, fnv1a, Cycle, Histogram, MetricsRegistry, SnapDelta, Snapshot, StreamSink,
};

use crate::report::{JobExit, JobReport, RejectReason};
use crate::spec::JobSpec;

/// When a running job offers its preemption points to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Run every segment to completion (serial batch semantics).
    Never,
    /// Yield only while other tasks are waiting in a queue — the
    /// fair-sharing default.
    WhenContended,
    /// Yield only while a *strictly higher* effective-priority task is
    /// waiting — the multi-tenant priority-preemption policy. Equal
    /// priorities run to quantum exhaustion without churn.
    WhenOutranked,
    /// Yield at every quantum boundary (maximum churn; what the
    /// determinism suites use to stress migration).
    Always,
}

/// Per-tenant resource limits, keyed by [`JobSpec::tenant`]. Tenants
/// without a quota entry are unlimited.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// The tenant this quota binds.
    pub tenant: String,
    /// Maximum jobs of this tenant executing concurrently (0 =
    /// unlimited). Enforced at dispatch.
    pub max_in_flight: usize,
    /// Aggregate simulated-cycle budget across the tenant's admitted
    /// jobs. Each job's full spec budget is reserved at admission, so
    /// the cap is never exceeded mid-flight.
    pub cycle_budget: Option<u64>,
}

impl TenantQuota {
    /// A quota with only an in-flight cap.
    pub fn in_flight(tenant: &str, max_in_flight: usize) -> Self {
        Self { tenant: tenant.to_string(), max_in_flight, cycle_budget: None }
    }
}

/// Elastic worker-pool policy: the pool spans `min_workers..=max_workers`
/// threads and resizes between quanta against a live cost model (queue
/// depth + measured throughput). See the module docs.
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// Pool floor (always-on workers).
    pub min_workers: usize,
    /// Pool ceiling (OS threads actually spawned).
    pub max_workers: usize,
    /// Milliseconds between cost-model evaluations.
    pub eval_ms: u64,
    /// Cost of keeping one worker active, in abstract value units per
    /// second.
    pub worker_cost: f64,
    /// Value of one million simulated cycles, in the same units. Growth
    /// beyond the floor happens only while the marginal worker's EWMA
    /// throughput times this value covers `worker_cost`.
    pub mcycle_value: f64,
}

impl ElasticPolicy {
    /// A policy spanning `min..=max` workers with the default cost model
    /// (growth is worthwhile whenever measured throughput clears one
    /// worker-cost per million cycles per second).
    pub fn range(min_workers: usize, max_workers: usize) -> Self {
        Self { min_workers, max_workers, eval_ms: 2, worker_cost: 1.0, mcycle_value: 1.0 }
    }
}

/// Periodic spill-to-disk of every running job's state, for crash
/// recovery via [`Scheduler::resume`].
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Write a disk checkpoint every this many executed quanta (0
    /// disables periodic spills; terminal `report.txt` markers are still
    /// written).
    pub every_quanta: u64,
    /// Root directory; each job gets `job{id:04}-{spec digest:016x}/`
    /// beneath it.
    pub dir: PathBuf,
}

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// OS worker threads in the pool. Ignored when `elastic` is set (the
    /// policy's `max_workers` is spawned instead).
    pub workers: usize,
    /// Target cycles per scheduling quantum; rounded up to the job's
    /// [`Platform::preemption_grain`] so cuts stay on epoch boundaries.
    pub quantum: u64,
    /// Per-job livelock detection (state persists across migrations).
    pub watchdog: WatchdogConfig,
    /// Preemption policy.
    pub preempt: PreemptMode,
    /// Admission bound on the pending queue: at most this many jobs are
    /// admitted per fleet; the rest get [`JobExit::Rejected`] reports
    /// with [`RejectReason::QueueFull`]. 0 = unbounded.
    pub max_pending: usize,
    /// Per-tenant quotas. Tenants without an entry are unlimited.
    pub quotas: Vec<TenantQuota>,
    /// Aging rate: a waiting task's effective priority rises one step
    /// every this many fleet-wide executed quanta (0 disables aging).
    pub aging_quanta: u64,
    /// Elastic worker-pool policy; `None` keeps a fixed pool of
    /// `workers` threads.
    pub elastic: Option<ElasticPolicy>,
    /// Forbid the worker that parked a job from resuming it while peers
    /// exist — guarantees every preemption is a migration. Test knob.
    pub force_migrate: bool,
    /// Keep each completed job's final image (compressed) in its report
    /// (the equivalence suite compares them; costs memory on big
    /// platforms).
    pub capture_final_snapshots: bool,
    /// Spill job state to disk for crash recovery.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Directory for per-job Perfetto traces (jobs with `trace: true`).
    pub trace_dir: Option<PathBuf>,
    /// Simulate a crash: after this many disk checkpoints have been
    /// written fleet-wide, every worker stops dead — no parks, no
    /// reports — as if the process had been killed. Recovery-test knob.
    #[doc(hidden)]
    pub abandon_after_checkpoints: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            quantum: 50_000,
            watchdog: WatchdogConfig::default(),
            preempt: PreemptMode::WhenContended,
            max_pending: 0,
            quotas: Vec::new(),
            aging_quanta: 64,
            elastic: None,
            force_migrate: false,
            capture_final_snapshots: false,
            checkpoint: None,
            trace_dir: None,
            abandon_after_checkpoints: None,
        }
    }
}

/// A fleet's full outcome: one report per submitted spec (in submission
/// order) plus the scheduler's own observability registry — queue-depth
/// and per-tenant wait/run histograms, admission and preemption
/// counters, elastic-pool sizing — in the same [`MetricsRegistry`] idiom
/// the platform uses for architectural metrics.
#[derive(Debug)]
pub struct FleetResult {
    /// One report per submitted spec, in submission order.
    pub reports: Vec<JobReport>,
    /// Scheduler metrics (`sched.*` namespace).
    pub metrics: MetricsRegistry,
}

/// Fingerprint of a platform's architectural outcome: final cycle,
/// aggregated statistics, and the architectural metrics registry. Host
/// diagnostics (wall time, fast-path counters) are deliberately excluded,
/// so the digest is a pure function of the job spec — identical across
/// worker counts, steal orders, and preemption patterns.
pub fn digest_platform(p: &Platform) -> u64 {
    let text =
        format!("{}\n{}\n{}", p.now(), p.stats(), p.metrics().architectural().snapshot_text());
    fnv1a(text.as_bytes())
}

/// A parked job's state: a compressed full image (the same `SMAPSTRM`
/// wire form the checkpoint policy spills) plus, when it pays, a
/// compressed delta against it holding only the dirty sections.
#[derive(Debug)]
struct ParkState {
    /// Compressed stream bytes of the last full image.
    base: Vec<u8>,
    /// Codec-compressed `SMAPDLTA` wire bytes against `base`.
    delta: Option<Vec<u8>>,
}

impl ParkState {
    fn stored_bytes(&self) -> u64 {
        (self.base.len() + self.delta.as_ref().map_or(0, Vec::len)) as u64
    }
}

/// A job in flight: the spec plus everything a resume needs.
#[derive(Debug)]
struct Task {
    id: usize,
    spec: JobSpec,
    /// Interned index into [`Shared::tenants`].
    tenant: usize,
    /// Parked image; `None` before the first segment.
    state: Option<ParkState>,
    /// Cycles executed so far.
    spent: u64,
    preemptions: u64,
    migrations: u64,
    /// Workers that executed segments, repeats collapsed.
    workers: Vec<usize>,
    /// Worker that parked the last segment (migration accounting).
    last_worker: Option<usize>,
    /// Worker forbidden from resuming this task (`force_migrate`).
    banned: Option<usize>,
    /// Watchdog stall state carried across segments.
    wd_sig: Option<u64>,
    wd_change_at: Cycle,
    wall_secs: f64,
    perf: HostPerf,
    /// Cumulative raw wire bytes a full snapshot would have cost at each
    /// park (the baseline the compression ratio is measured against).
    park_raw_bytes: u64,
    /// Cumulative bytes actually held while parked (base + delta).
    park_stored_bytes: u64,
}

impl Task {
    fn fresh(id: usize, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            tenant: 0,
            state: None,
            spent: 0,
            preemptions: 0,
            migrations: 0,
            workers: Vec::new(),
            last_worker: None,
            banned: None,
            wd_sig: None,
            wd_change_at: 0,
            wall_secs: 0.0,
            perf: HostPerf::default(),
            park_raw_bytes: 0,
            park_stored_bytes: 0,
        }
    }
}

/// How one execution segment ended.
enum Segment {
    Done {
        p: Box<Platform>,
        idle: bool,
        spent: u64,
    },
    Livelocked {
        p: Box<Platform>,
        since: Cycle,
        spent: u64,
    },
    Parked {
        park: ParkState,
        raw: u64,
        spent: u64,
        wd: (Option<u64>, Cycle),
        perf: HostPerf,
    },
    /// The abandon knob fired mid-segment: drop the task without a
    /// report, simulating a killed process.
    Abandoned,
}

/// One tenant's immutable limits plus its epoch-grain spend accounting.
struct TenantState {
    name: String,
    max_in_flight: usize,
    /// Cycles reserved at admission across this tenant's admitted jobs.
    reserved: u64,
    /// Cycles actually executed so far, bumped once per quantum slice
    /// (epoch grain). Always <= `reserved` <= the quota's cycle budget.
    spent: AtomicU64,
}

/// A task waiting in the ready queue.
struct Queued {
    task: Task,
    /// Submission-order tiebreak (monotonic enqueue sequence).
    seq: u64,
    /// Fleet-wide quanta clock at enqueue; drives the aging boost.
    enq_quanta: u64,
    since: Instant,
}

/// The central priority ready queue plus the dispatch-side accounting
/// that must move atomically with it (per-tenant in-flight counts,
/// queue-depth and latency histograms).
struct ReadyQueue {
    items: Vec<Queued>,
    seq: u64,
    /// In-flight jobs per tenant (indexes [`Shared::tenants`]).
    running: Vec<usize>,
    /// High-water in-flight mark per tenant (proves caps held).
    running_peak: Vec<usize>,
    depth: Histogram,
    depth_peak: u64,
    wait_us: Vec<Histogram>,
    run_us: Vec<Histogram>,
    dispatches: u64,
}

/// Elastic-pool state behind its own lock (touched at eval cadence, not
/// per dispatch).
struct ElasticState {
    last_eval: Option<Instant>,
    /// EWMA of fleet-aggregate simulated cycles per wall second.
    ewma_cps: f64,
    grow: u64,
    shrink: u64,
    sizes: Histogram,
}

struct Shared {
    ready: Mutex<ReadyQueue>,
    tenants: Vec<TenantState>,
    /// OS threads actually spawned (the elastic ceiling, or `workers`).
    pool: usize,
    /// Workers currently allowed to dispatch; indexes >= this sleep.
    active: AtomicUsize,
    /// Tasks currently sitting in the ready queue (drives `WhenContended`).
    queued: AtomicUsize,
    /// Best waiting effective priority + 1; 0 when the queue is empty
    /// (drives `WhenOutranked` without taking the queue lock).
    top_waiting: AtomicU64,
    /// Segments executing right now (demand signal for the cost model).
    running: AtomicUsize,
    /// Fleet-wide executed quanta: the aging clock.
    quanta: AtomicU64,
    /// Jobs not yet reported; workers exit when it reaches zero.
    outstanding: AtomicUsize,
    /// Disk checkpoints written fleet-wide (feeds the abandon knob).
    ckpts: AtomicU64,
    /// Simulated-crash flag: when set, workers stop dead.
    abandoned: AtomicBool,
    elastic: Mutex<ElasticState>,
    reports: Mutex<Vec<JobReport>>,
}

/// The multi-tenant job scheduler. See the module docs for the execution
/// model; construct with a [`SchedulerConfig`] and call
/// [`Scheduler::run`] (or [`Scheduler::run_fleet`] for the reports plus
/// the scheduler's own metrics).
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
}

impl Scheduler {
    /// A scheduler with the given tuning.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.workers >= 1, "the pool needs at least one worker");
        assert!(cfg.quantum >= 1, "the quantum must be positive");
        if let Some(e) = &cfg.elastic {
            assert!(e.min_workers >= 1, "the elastic pool needs at least one worker");
            assert!(e.max_workers >= e.min_workers, "elastic max_workers must be >= min_workers");
        }
        Self { cfg }
    }

    /// A one-worker, never-preempting scheduler: the serial
    /// job-at-a-time baseline `servebench` measures the pool against.
    pub fn serial() -> Self {
        Self::new(SchedulerConfig {
            workers: 1,
            preempt: PreemptMode::Never,
            ..SchedulerConfig::default()
        })
    }

    /// The configured tuning.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Runs every job to a terminal state and returns one report per
    /// spec, in submission order. Panicking jobs are isolated into
    /// [`JobExit::Panicked`] reports, refused jobs into
    /// [`JobExit::Rejected`]; the pool shuts down gracefully once every
    /// job has reported.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobReport> {
        self.run_fleet(specs).reports
    }

    /// Like [`Scheduler::run`], but also returns the scheduler's own
    /// [`MetricsRegistry`] (queue depth, per-tenant wait/run histograms,
    /// admission/preemption counters, elastic sizing).
    pub fn run_fleet(&self, specs: &[JobSpec]) -> FleetResult {
        self.launch(specs, false)
    }

    /// Like [`Scheduler::run`], but first scans the checkpoint directory
    /// for prior progress: jobs with a terminal `report.txt` marker are
    /// returned without re-execution, jobs with a valid
    /// `state.bin`/`meta.txt` pair resume from the spilled image, and
    /// everything else — missing, truncated, or digest-mismatched
    /// artifacts, or a directory whose `spec.txt` no longer matches the
    /// submitted spec — restarts from cycle 0, which is always correct
    /// because jobs are deterministic functions of their specs.
    /// Admission is re-evaluated over the full fleet, so a job rejected
    /// in the original run is rejected identically on resume.
    ///
    /// # Panics
    ///
    /// Panics when no [`SchedulerConfig::checkpoint`] policy is
    /// configured — resuming without a directory to resume from is a
    /// caller bug.
    pub fn resume(&self, specs: &[JobSpec]) -> Vec<JobReport> {
        self.resume_fleet(specs).reports
    }

    /// [`Scheduler::resume`] with the scheduler metrics included.
    pub fn resume_fleet(&self, specs: &[JobSpec]) -> FleetResult {
        assert!(self.cfg.checkpoint.is_some(), "resume requires a checkpoint policy");
        self.launch(specs, true)
    }

    fn launch(&self, specs: &[JobSpec], resume: bool) -> FleetResult {
        for (i, s) in specs.iter().enumerate() {
            if let Err(e) = s.validate() {
                panic!("job {i} ({:?}) is invalid: {e}", s.name);
            }
        }
        let (tenants, tenant_of) = intern_tenants(specs, &self.cfg.quotas);
        let rejections = admit(specs, &tenant_of, &tenants, &self.cfg);
        let mut tenants: Vec<TenantState> = tenants;
        let mut preloaded: Vec<JobReport> = Vec::new();
        let mut tasks: Vec<Task> = Vec::new();
        let mut rejected_queue_full = 0u64;
        let mut rejected_quota = 0u64;
        let mut tenant_admitted = vec![0u64; tenants.len()];
        let mut tenant_rejected = vec![0u64; tenants.len()];
        for (id, spec) in specs.iter().enumerate() {
            let tid = tenant_of[id];
            if let Some(reason) = &rejections[id] {
                match reason {
                    RejectReason::QueueFull { .. } => rejected_queue_full += 1,
                    RejectReason::CycleQuota { .. } => rejected_quota += 1,
                }
                tenant_rejected[tid] += 1;
                let report = rejected_report(id, spec, reason.clone());
                persist_terminal(&self.cfg, spec, &report);
                preloaded.push(report);
                continue;
            }
            tenant_admitted[tid] += 1;
            tenants[tid].reserved += spec.budget;
            if resume {
                let policy = self.cfg.checkpoint.as_ref().expect("checked in resume");
                match recover_job(&policy.dir, id, spec) {
                    Recovered::Terminal(r) => {
                        // Cycles already executed in the prior run count
                        // against the tenant's epoch-grain spend.
                        tenants[tid].spent.fetch_add(r.cycles, Ordering::SeqCst);
                        preloaded.push(*r);
                        continue;
                    }
                    Recovered::Parked(mut t) => {
                        tenants[tid].spent.fetch_add(t.spent, Ordering::SeqCst);
                        t.tenant = tid;
                        tasks.push(*t);
                        continue;
                    }
                    Recovered::Fresh => {}
                }
            }
            let mut t = Task::fresh(id, spec.clone());
            t.tenant = tid;
            tasks.push(t);
        }
        let pool = self.cfg.elastic.as_ref().map_or(self.cfg.workers, |e| e.max_workers);
        let active0 = self.cfg.elastic.as_ref().map_or(pool, |e| e.min_workers);
        let n_tenants = tenants.len();
        let shared = Shared {
            ready: Mutex::new(ReadyQueue {
                items: Vec::with_capacity(tasks.len()),
                seq: 0,
                running: vec![0; n_tenants],
                running_peak: vec![0; n_tenants],
                depth: Histogram::new(),
                depth_peak: 0,
                wait_us: (0..n_tenants).map(|_| Histogram::new()).collect(),
                run_us: (0..n_tenants).map(|_| Histogram::new()).collect(),
                dispatches: 0,
            }),
            tenants,
            pool,
            active: AtomicUsize::new(active0),
            queued: AtomicUsize::new(0),
            top_waiting: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            quanta: AtomicU64::new(0),
            outstanding: AtomicUsize::new(tasks.len()),
            ckpts: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
            elastic: Mutex::new(ElasticState {
                last_eval: None,
                ewma_cps: 0.0,
                grow: 0,
                shrink: 0,
                sizes: Histogram::new(),
            }),
            reports: Mutex::new(Vec::with_capacity(specs.len())),
        };
        for task in tasks {
            enqueue(&shared, &self.cfg, task);
        }
        std::thread::scope(|scope| {
            for w in 0..pool {
                let shared = &shared;
                let cfg = &self.cfg;
                scope.spawn(move || worker_loop(w, shared, cfg));
            }
        });
        let mut reports = shared.reports.into_inner().expect("report lock");
        reports.extend(preloaded);
        reports.sort_by_key(|r| r.job);

        // Scheduler observability, in the platform's MetricsRegistry
        // idiom. Counters are architectural-determinism-free by nature
        // (they describe the host-side schedule), so everything lives
        // under the `sched.` namespace.
        let rq = shared.ready.into_inner().expect("queue lock");
        let es = shared.elastic.into_inner().expect("elastic lock");
        let mut m = MetricsRegistry::new();
        m.add_counter("sched.jobs", specs.len() as u64);
        m.add_counter("sched.admitted", (specs.len() - rejections.iter().flatten().count()) as u64);
        m.add_counter("sched.rejected", rejections.iter().flatten().count() as u64);
        m.add_counter("sched.rejected.queue_full", rejected_queue_full);
        m.add_counter("sched.rejected.cycle_quota", rejected_quota);
        m.add_counter("sched.dispatches", rq.dispatches);
        m.add_counter("sched.queue.peak_depth", rq.depth_peak);
        m.add_counter("sched.quanta", shared.quanta.load(Ordering::SeqCst));
        m.add_counter("sched.workers.pool", pool as u64);
        m.merge_histogram("sched.queue.depth", &rq.depth);
        m.add_counter("sched.preemptions", reports.iter().map(|r| r.preemptions).sum());
        m.add_counter("sched.migrations", reports.iter().map(|r| r.migrations).sum());
        if self.cfg.elastic.is_some() {
            m.add_counter("sched.elastic.grow", es.grow);
            m.add_counter("sched.elastic.shrink", es.shrink);
            m.merge_histogram("sched.workers.active", &es.sizes);
        }
        for (tid, t) in shared.tenants.iter().enumerate() {
            let k = |suffix: &str| format!("sched.tenant.{}.{suffix}", t.name);
            m.add_counter(&k("admitted"), tenant_admitted[tid]);
            m.add_counter(&k("rejected"), tenant_rejected[tid]);
            m.add_counter(&k("reserved_cycles"), t.reserved);
            m.add_counter(&k("spent_cycles"), t.spent.load(Ordering::SeqCst));
            m.add_counter(&k("peak_in_flight"), rq.running_peak[tid] as u64);
            m.merge_histogram(&k("wait_us"), &rq.wait_us[tid]);
            m.merge_histogram(&k("run_us"), &rq.run_us[tid]);
        }
        FleetResult { reports, metrics: m }
    }
}

/// Interns every tenant named by the fleet or by a quota (so quota'd
/// tenants report metrics even when the fleet never references them).
/// Returns the tenant table plus each spec's tenant index.
fn intern_tenants(specs: &[JobSpec], quotas: &[TenantQuota]) -> (Vec<TenantState>, Vec<usize>) {
    let mut tenants: Vec<TenantState> = Vec::new();
    let mut index = |name: &str| -> usize {
        if let Some(i) = tenants.iter().position(|t| t.name == name) {
            return i;
        }
        let quota = quotas.iter().find(|q| q.tenant == name);
        tenants.push(TenantState {
            name: name.to_string(),
            max_in_flight: quota.map_or(0, |q| q.max_in_flight),
            reserved: 0,
            spent: AtomicU64::new(0),
        });
        tenants.len() - 1
    };
    for q in quotas {
        index(&q.tenant);
    }
    let tenant_of = specs.iter().map(|s| index(&s.tenant)).collect();
    (tenants, tenant_of)
}

/// Admission control: a pure function of `(specs, config)` evaluated in
/// submission order. Per job: first the tenant cycle quota (the full
/// spec budget must fit in what the tenant has left — reserved only if
/// the job is actually admitted), then the pending-queue bound. Pure and
/// order-deterministic, so original and resumed runs refuse identically.
fn admit(
    specs: &[JobSpec],
    tenant_of: &[usize],
    tenants: &[TenantState],
    cfg: &SchedulerConfig,
) -> Vec<Option<RejectReason>> {
    let mut remaining: Vec<Option<u64>> = tenants
        .iter()
        .map(|t| cfg.quotas.iter().find(|q| q.tenant == t.name).and_then(|q| q.cycle_budget))
        .collect();
    let mut admitted = 0usize;
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let tid = tenant_of[i];
            if let Some(rem) = remaining[tid] {
                if spec.budget > rem {
                    return Some(RejectReason::CycleQuota {
                        tenant: spec.tenant.clone(),
                        needed: spec.budget,
                        remaining: rem,
                    });
                }
            }
            if cfg.max_pending > 0 && admitted >= cfg.max_pending {
                return Some(RejectReason::QueueFull { limit: cfg.max_pending });
            }
            if let Some(rem) = &mut remaining[tid] {
                *rem -= spec.budget;
            }
            admitted += 1;
            None
        })
        .collect()
}

/// The terminal report for a job admission refused: zero cycles, zero
/// digest, a typed reason.
fn rejected_report(id: usize, spec: &JobSpec, reason: RejectReason) -> JobReport {
    JobReport {
        job: id,
        name: spec.name.clone(),
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        exit: JobExit::Rejected { reason },
        cycles: 0,
        deadline_missed: false,
        wall_secs: 0.0,
        preemptions: 0,
        migrations: 0,
        workers: Vec::new(),
        host_perf: HostPerf::default(),
        digest: 0,
        snapshot_bytes: 0,
        compressed_bytes: 0,
        park_raw_bytes: 0,
        park_stored_bytes: 0,
        final_snapshot_z: None,
        trace_path: None,
    }
}

/// Effective priority: the base boosted one step per `aging` fleet-wide
/// quanta spent waiting, saturating at the maximum — the no-starvation
/// rule.
fn effective_priority(base: u8, enq_quanta: u64, now_quanta: u64, aging: u64) -> u8 {
    if aging == 0 {
        return base;
    }
    let boost = now_quanta.saturating_sub(enq_quanta) / aging;
    (base as u64 + boost).min(JobSpec::MAX_PRIORITY as u64) as u8
}

/// Recomputes [`Shared::top_waiting`] from the queue contents.
fn refresh_top(rq: &ReadyQueue, sh: &Shared, cfg: &SchedulerConfig) {
    let now_q = sh.quanta.load(Ordering::SeqCst);
    let best = rq
        .items
        .iter()
        .map(|q| effective_priority(q.task.spec.priority, q.enq_quanta, now_q, cfg.aging_quanta))
        .max();
    sh.top_waiting.store(best.map_or(0, |b| b as u64 + 1), Ordering::SeqCst);
}

/// Parks a task into the ready queue (initial submission and preemption
/// share this path).
fn enqueue(sh: &Shared, cfg: &SchedulerConfig, task: Task) {
    let mut rq = sh.ready.lock().expect("queue lock");
    rq.seq += 1;
    let q = Queued {
        seq: rq.seq,
        enq_quanta: sh.quanta.load(Ordering::SeqCst),
        since: Instant::now(),
        task,
    };
    rq.items.push(q);
    let depth = rq.items.len() as u64;
    rq.depth.record(depth);
    rq.depth_peak = rq.depth_peak.max(depth);
    sh.queued.fetch_add(1, Ordering::SeqCst);
    refresh_top(&rq, sh, cfg);
}

/// Dispatches the best runnable task for worker `w`: highest effective
/// priority, then earliest deadline, then submission order — skipping
/// tasks whose tenant is at its in-flight cap and tasks banned for this
/// worker (force-migrate; void when only one worker could ever run them).
fn next_task(w: usize, sh: &Shared, cfg: &SchedulerConfig) -> Option<Task> {
    /// Dispatch order: effective priority, then EDF, then submission.
    type DispatchKey = (u8, std::cmp::Reverse<u64>, std::cmp::Reverse<u64>);
    let mut rq = sh.ready.lock().expect("queue lock");
    if rq.items.is_empty() {
        return None;
    }
    let now_q = sh.quanta.load(Ordering::SeqCst);
    let many = sh.pool > 1 && sh.active.load(Ordering::SeqCst) > 1;
    let mut best: Option<(usize, DispatchKey)> = None;
    for (i, q) in rq.items.iter().enumerate() {
        let t = &q.task;
        if many && t.banned == Some(w) {
            continue;
        }
        let ts = &sh.tenants[t.tenant];
        if ts.max_in_flight > 0 && rq.running[t.tenant] >= ts.max_in_flight {
            continue;
        }
        let eff = effective_priority(t.spec.priority, q.enq_quanta, now_q, cfg.aging_quanta);
        let key = (
            eff,
            std::cmp::Reverse(t.spec.deadline_cycles.unwrap_or(u64::MAX)),
            std::cmp::Reverse(q.seq),
        );
        if best.as_ref().is_none_or(|(_, bk)| key > *bk) {
            best = Some((i, key));
        }
    }
    let (i, _) = best?;
    let q = rq.items.swap_remove(i);
    let tid = q.task.tenant;
    rq.running[tid] += 1;
    rq.running_peak[tid] = rq.running_peak[tid].max(rq.running[tid]);
    rq.dispatches += 1;
    let wait = q.since.elapsed().as_micros().min(u64::MAX as u128) as u64;
    rq.wait_us[tid].record(wait);
    sh.queued.fetch_sub(1, Ordering::SeqCst);
    sh.running.fetch_add(1, Ordering::SeqCst);
    refresh_top(&rq, sh, cfg);
    Some(q.task)
}

/// Dispatch-side bookkeeping when a segment ends for any reason: the
/// tenant's in-flight slot frees and the segment wall time is recorded.
fn segment_finished(sh: &Shared, tid: usize, wall_secs: f64) {
    sh.running.fetch_sub(1, Ordering::SeqCst);
    let mut rq = sh.ready.lock().expect("queue lock");
    rq.running[tid] = rq.running[tid].saturating_sub(1);
    rq.run_us[tid].record((wall_secs * 1e6) as u64);
}

/// One cost-model evaluation: resize the active pool toward demand,
/// gated on the marginal worker paying for itself. Cheap enough to call
/// every loop iteration — the time gate and `try_lock` make it a no-op
/// almost always.
fn elastic_tick(sh: &Shared, pol: &ElasticPolicy) {
    let Ok(mut st) = sh.elastic.try_lock() else { return };
    let now = Instant::now();
    if let Some(last) = st.last_eval {
        if now.duration_since(last) < Duration::from_millis(pol.eval_ms) {
            return;
        }
    }
    st.last_eval = Some(now);
    let demand = sh.queued.load(Ordering::SeqCst) + sh.running.load(Ordering::SeqCst);
    let active = sh.active.load(Ordering::SeqCst);
    let mut desired = demand.clamp(pol.min_workers, pol.max_workers);
    if desired > active && st.ewma_cps > 0.0 {
        // The live cost model: growth is worthwhile only while the
        // marginal worker's expected throughput share values above its
        // cost. Before any measurement exists the model is optimistic
        // (a fleet that never runs can never measure).
        let per_worker_value = st.ewma_cps / active.max(1) as f64 / 1e6 * pol.mcycle_value;
        if per_worker_value < pol.worker_cost {
            desired = active;
        }
    }
    // One step per evaluation damps oscillation.
    let next = match desired.cmp(&active) {
        std::cmp::Ordering::Greater => active + 1,
        std::cmp::Ordering::Less => active - 1,
        std::cmp::Ordering::Equal => active,
    }
    .clamp(pol.min_workers, pol.max_workers);
    match next.cmp(&active) {
        std::cmp::Ordering::Greater => st.grow += 1,
        std::cmp::Ordering::Less => st.shrink += 1,
        std::cmp::Ordering::Equal => {}
    }
    if next != active {
        sh.active.store(next, Ordering::SeqCst);
    }
    st.sizes.record(next as u64);
}

/// Feeds the cost model one finished segment's measured throughput.
fn note_throughput(sh: &Shared, cycles: u64, wall: f64) {
    if cycles == 0 || wall <= 0.0 {
        return;
    }
    if let Ok(mut st) = sh.elastic.lock() {
        let cps = cycles as f64 / wall;
        st.ewma_cps = if st.ewma_cps > 0.0 { 0.7 * st.ewma_cps + 0.3 * cps } else { cps };
    }
}

fn worker_loop(w: usize, sh: &Shared, cfg: &SchedulerConfig) {
    loop {
        if sh.abandoned.load(Ordering::SeqCst) {
            return; // simulated crash: stop serving immediately
        }
        if sh.outstanding.load(Ordering::SeqCst) == 0 {
            return; // graceful shutdown: every job reported
        }
        if let Some(pol) = &cfg.elastic {
            elastic_tick(sh, pol);
            if w >= sh.active.load(Ordering::SeqCst) {
                // Deactivated by the cost model: sleep until re-grown.
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
        }
        match next_task(w, sh, cfg) {
            Some(task) => run_segment(w, task, sh, cfg),
            None => std::thread::sleep(Duration::from_micros(50)),
        }
    }
}

/// Parks `snap`, preferring a compressed delta against the previous
/// park's full image; rebases to a fresh compressed stream when there is
/// no base or the delta stops paying (more than half the base's size).
fn park_state(prev: Option<&ParkState>, snap: &Snapshot) -> ParkState {
    if let Some(prev) = prev {
        if let Ok(base) = Snapshot::from_stream_bytes(&prev.base) {
            if let Ok(d) = SnapDelta::between(&base, snap) {
                let dz = codec::compress(&d.to_bytes());
                if dz.len().saturating_mul(2) <= prev.base.len() {
                    return ParkState { base: prev.base.clone(), delta: Some(dz) };
                }
            }
        }
    }
    ParkState { base: snap.to_stream_bytes(true), delta: None }
}

/// Final-image capture and size accounting: the compressed bytes (when
/// the scheduler keeps them), the raw wire size, and the compressed
/// size. All zero/absent when neither snapshots nor checkpoints were
/// requested — measuring would cost a full serialization walk.
fn final_sizes(p: &Platform, cfg: &SchedulerConfig) -> (Option<Vec<u8>>, u64, u64) {
    if !cfg.capture_final_snapshots && cfg.checkpoint.is_none() {
        return (None, 0, 0);
    }
    let snap = p.snapshot();
    let raw = snap.to_bytes().len() as u64;
    let z = snap.to_stream_bytes(true);
    let zlen = z.len() as u64;
    (cfg.capture_final_snapshots.then_some(z), raw, zlen)
}

/// Executes one segment of `task` on worker `w` and either files its
/// report or parks it back into the ready queue.
fn run_segment(w: usize, mut task: Task, sh: &Shared, cfg: &SchedulerConfig) {
    if task.workers.last() != Some(&w) {
        task.workers.push(w);
    }
    if let Some(prev) = task.last_worker {
        if prev != w {
            task.migrations += 1;
        }
    }
    task.banned = None;
    let spec = task.spec.clone();
    let budget = spec.budget;
    let tid = task.tenant;
    let resumed_from = task.state.take();
    let spent0 = task.spent;
    let wd_state = (task.wd_sig, task.wd_change_at);
    // Frozen copies for checkpoint metadata written mid-segment.
    let (job_id, ck_preempt, ck_migr, ck_wall) =
        (task.id, task.preemptions, task.migrations, task.wall_secs);
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut p = Box::new(spec.build());
        if let Some(park) = &resumed_from {
            let base = Snapshot::from_stream_bytes(&park.base).expect("parked stream parses");
            let snap = match &park.delta {
                Some(dz) => {
                    let raw = codec::decompress(dz).expect("parked delta decompresses");
                    let d = SnapDelta::from_bytes(&raw).expect("parked delta parses");
                    base.apply_delta(&d).expect("parked delta applies to its base")
                }
                None => base,
            };
            p.restore(&snap).expect("parked snapshot restores");
        }
        let parallel = spec.parallel();
        let mut wd = Watchdog::resume(cfg.watchdog.clone(), wd_state.0, wd_state.1);
        if resumed_from.is_none() {
            // Baseline sample so `stalled_since` is exact from cycle 0.
            let sig = p.progress_signature();
            let _ = wd.observe(p.now(), sig);
        }
        // Align the quantum to the grain: every cut lands on an epoch
        // boundary, keeping sliced and unsliced runs byte-identical.
        let grain = p.preemption_grain();
        let quantum = grain * cfg.quantum.div_ceil(grain).max(1);
        let mut spent = spent0;
        let mut quanta: u64 = 0;
        loop {
            let slice = quantum.min(budget - spent);
            let before = spent;
            spent += p.run_preemptible(slice, parallel, |_, _| false);
            quanta += 1;
            // Epoch-grain accounting: the aging clock ticks and the
            // tenant's spend advances once per quantum slice.
            sh.quanta.fetch_add(1, Ordering::SeqCst);
            sh.tenants[tid].spent.fetch_add(spent - before, Ordering::SeqCst);
            if cfg.aging_quanta > 0 {
                // Keep `top_waiting` fresh as waiting tasks age, without
                // blocking on the queue lock in the hot loop.
                if let Ok(rq) = sh.ready.try_lock() {
                    refresh_top(&rq, sh, cfg);
                }
            }
            if p.is_idle() {
                return Segment::Done { p, idle: true, spent };
            }
            if spent >= budget {
                return Segment::Done { p, idle: false, spent };
            }
            if let Some(since) = wd.observe(p.now(), p.progress_signature()) {
                return Segment::Livelocked { p, since, spent };
            }
            if let Some(policy) = &cfg.checkpoint {
                if policy.every_quanta > 0 && quanta.is_multiple_of(policy.every_quanta) {
                    let meta = CkptMeta {
                        spent,
                        preemptions: ck_preempt,
                        migrations: ck_migr,
                        wall_secs: ck_wall + t0.elapsed().as_secs_f64(),
                        wd: wd.state(),
                    };
                    if write_checkpoint(&policy.dir, job_id, &spec, &p, &meta).is_ok() {
                        let n = sh.ckpts.fetch_add(1, Ordering::SeqCst) + 1;
                        if cfg.abandon_after_checkpoints.is_some_and(|k| n >= k) {
                            sh.abandoned.store(true, Ordering::SeqCst);
                        }
                    }
                }
            }
            if sh.abandoned.load(Ordering::SeqCst) {
                return Segment::Abandoned;
            }
            let yield_now = match cfg.preempt {
                PreemptMode::Never => false,
                PreemptMode::Always => true,
                PreemptMode::WhenContended => sh.queued.load(Ordering::SeqCst) > 0,
                PreemptMode::WhenOutranked => {
                    let top = sh.top_waiting.load(Ordering::SeqCst);
                    top > 0 && top - 1 > spec.priority as u64
                }
            };
            if yield_now {
                let snap = p.snapshot();
                let raw = snap.to_bytes().len() as u64;
                let park = park_state(resumed_from.as_ref(), &snap);
                return Segment::Parked { park, raw, spent, wd: wd.state(), perf: p.host_perf() };
            }
        }
    }));
    let seg_wall = t0.elapsed().as_secs_f64();
    task.wall_secs += seg_wall;
    segment_finished(sh, tid, seg_wall);
    let deadline_missed = |cycles: u64| spec.deadline_cycles.is_some_and(|d| cycles > d);
    match result {
        Err(payload) => {
            let message = payload_message(payload.as_ref());
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                tenant: task.spec.tenant.clone(),
                priority: task.spec.priority,
                exit: JobExit::Panicked { message },
                cycles: task.spent,
                deadline_missed: deadline_missed(task.spent),
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: task.perf,
                digest: 0,
                snapshot_bytes: 0,
                compressed_bytes: 0,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z: None,
                trace_path: None,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Done { mut p, idle, spent }) => {
            if cfg.elastic.is_some() {
                note_throughput(sh, spent - spent0, seg_wall);
            }
            let digest = digest_platform(&p);
            let (final_snapshot_z, snapshot_bytes, compressed_bytes) = final_sizes(&p, cfg);
            let trace_path = if task.spec.trace {
                cfg.trace_dir.as_deref().and_then(|d| write_trace(&mut p, d, task.id, &spec.name))
            } else {
                None
            };
            let mut perf = task.perf;
            perf += p.host_perf();
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                tenant: task.spec.tenant.clone(),
                priority: task.spec.priority,
                exit: JobExit::Completed { idle },
                cycles: spent,
                deadline_missed: deadline_missed(spent),
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: perf,
                digest,
                snapshot_bytes,
                compressed_bytes,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z,
                trace_path,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Livelocked { p, since, spent }) => {
            let (final_snapshot_z, snapshot_bytes, compressed_bytes) = final_sizes(&p, cfg);
            let mut perf = task.perf;
            perf += p.host_perf();
            let report = JobReport {
                job: task.id,
                name: task.spec.name.clone(),
                tenant: task.spec.tenant.clone(),
                priority: task.spec.priority,
                exit: JobExit::Livelocked { stalled_since: since, detected_at: p.now() },
                cycles: spent,
                deadline_missed: deadline_missed(spent),
                wall_secs: task.wall_secs,
                preemptions: task.preemptions,
                migrations: task.migrations,
                workers: task.workers,
                host_perf: perf,
                digest: digest_platform(&p),
                snapshot_bytes,
                compressed_bytes,
                park_raw_bytes: task.park_raw_bytes,
                park_stored_bytes: task.park_stored_bytes,
                final_snapshot_z,
                trace_path: None,
            };
            persist_terminal(cfg, &spec, &report);
            file_report(sh, report);
        }
        Ok(Segment::Parked { park, raw, spent, wd, perf }) => {
            if cfg.elastic.is_some() {
                note_throughput(sh, spent - spent0, seg_wall);
            }
            task.park_raw_bytes += raw;
            task.park_stored_bytes += park.stored_bytes();
            task.state = Some(park);
            task.spent = spent;
            task.preemptions += 1;
            (task.wd_sig, task.wd_change_at) = wd;
            task.perf += perf;
            task.last_worker = Some(w);
            task.banned = cfg.force_migrate.then_some(w);
            enqueue(sh, cfg, task);
        }
        Ok(Segment::Abandoned) => {
            // Simulated crash: the task vanishes unreported, exactly as
            // if the process had been killed. `outstanding` never
            // reaches zero; workers exit via the abandoned flag.
        }
    }
}

fn file_report(sh: &Shared, report: JobReport) {
    sh.reports.lock().expect("report lock").push(report);
    sh.outstanding.fetch_sub(1, Ordering::SeqCst);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn write_trace(p: &mut Platform, dir: &Path, job: usize, name: &str) -> Option<String> {
    std::fs::create_dir_all(dir).ok()?;
    let json = p.take_trace().to_perfetto_json(100);
    let path = dir.join(format!("job{job}-{name}.trace.json"));
    std::fs::write(&path, json).ok()?;
    Some(path.to_string_lossy().into_owned())
}

// ---------------------------------------------------------------------
// Disk checkpoints
// ---------------------------------------------------------------------

/// Progress metadata spilled alongside `state.bin`.
struct CkptMeta {
    spent: u64,
    preemptions: u64,
    migrations: u64,
    wall_secs: f64,
    wd: (Option<u64>, Cycle),
}

/// The per-job checkpoint directory: id for human navigation, spec
/// digest so a stale directory from a different fleet can never be
/// mistaken for this job's.
fn job_dir(root: &Path, id: usize, spec: &JobSpec) -> PathBuf {
    root.join(format!("job{id:04}-{:016x}", spec.digest()))
}

/// Streams the platform to `state.bin` (compressed, bounded memory) and
/// then writes `meta.txt`, each published with an atomic rename. Meta
/// goes second: a crash between the two renames leaves a stale meta
/// whose state digest no longer matches the stream, which recovery
/// rejects in favor of a fresh deterministic run.
fn write_checkpoint(
    root: &Path,
    id: usize,
    spec: &JobSpec,
    p: &Platform,
    meta: &CkptMeta,
) -> Result<(), String> {
    let io = |e: std::io::Error| e.to_string();
    let dir = job_dir(root, id, spec);
    std::fs::create_dir_all(&dir).map_err(io)?;
    let spec_path = dir.join("spec.txt");
    if !spec_path.exists() {
        std::fs::write(&spec_path, spec.to_text()).map_err(io)?;
    }
    let tmp = dir.join("state.bin.tmp");
    let digest = {
        let file = std::fs::File::create(&tmp).map_err(io)?;
        let mut sink = StreamSink::new(std::io::BufWriter::new(file), true);
        p.snapshot_to(&mut sink).map_err(|e| e.to_string())?;
        sink.state_digest()
    };
    std::fs::rename(&tmp, dir.join("state.bin")).map_err(io)?;
    let wd_sig = meta.wd.0.map_or_else(|| "-".to_string(), |s| format!("{s:#x}"));
    let text = format!(
        "smappic-ckpt v1\nstate_digest {digest:#018x}\nspent {}\npreemptions {}\n\
         migrations {}\nwall_secs {:.6}\nwd {wd_sig} {}\n",
        meta.spent, meta.preemptions, meta.migrations, meta.wall_secs, meta.wd.1
    );
    let mtmp = dir.join("meta.txt.tmp");
    std::fs::write(&mtmp, text).map_err(io)?;
    std::fs::rename(&mtmp, dir.join("meta.txt")).map_err(io)
}

/// Writes the terminal `report.txt` marker so a later
/// [`Scheduler::resume`] returns this job without re-executing it.
fn persist_terminal(cfg: &SchedulerConfig, spec: &JobSpec, r: &JobReport) {
    let Some(policy) = &cfg.checkpoint else { return };
    let _ = write_report_marker(&job_dir(&policy.dir, r.job, spec), spec, r);
}

fn write_report_marker(dir: &Path, spec: &JobSpec, r: &JobReport) -> Result<(), String> {
    let io = |e: std::io::Error| e.to_string();
    std::fs::create_dir_all(dir).map_err(io)?;
    let spec_path = dir.join("spec.txt");
    if !spec_path.exists() {
        std::fs::write(&spec_path, spec.to_text()).map_err(io)?;
    }
    let exit = match &r.exit {
        JobExit::Completed { idle } => format!("completed {idle}"),
        JobExit::Livelocked { stalled_since, detected_at } => {
            format!("livelocked {stalled_since} {detected_at}")
        }
        JobExit::Panicked { message } => format!("panicked {}", message.replace('\n', " ")),
        JobExit::Rejected { reason } => match reason {
            RejectReason::QueueFull { limit } => format!("rejected queue_full {limit}"),
            RejectReason::CycleQuota { tenant, needed, remaining } => {
                format!("rejected cycle_quota {tenant} {needed} {remaining}")
            }
        },
    };
    let text = format!(
        "smappic-report v1\nexit {exit}\ncycles {}\ndigest {:#018x}\nwall_secs {:.6}\n\
         preemptions {}\nmigrations {}\nsnapshot_bytes {}\ncompressed_bytes {}\n",
        r.cycles,
        r.digest,
        r.wall_secs,
        r.preemptions,
        r.migrations,
        r.snapshot_bytes,
        r.compressed_bytes
    );
    let tmp = dir.join("report.txt.tmp");
    std::fs::write(&tmp, text).map_err(io)?;
    std::fs::rename(&tmp, dir.join("report.txt")).map_err(io)
}

/// What recovery found in one job's checkpoint directory.
enum Recovered {
    /// The job already reached a terminal state; its report was rebuilt
    /// from the `report.txt` marker.
    Terminal(Box<JobReport>),
    /// A valid mid-flight spill; the task resumes from it.
    Parked(Box<Task>),
    /// Nothing usable; the job restarts from cycle 0.
    Fresh,
}

/// Inspects one job's checkpoint directory. Accepts only artifacts that
/// fully validate — the spec text matches the submitted spec, the
/// spilled stream parses (its trailer digest rejects truncation), and
/// the meta's state digest matches the stream — and falls back to a
/// fresh run otherwise, which is always correct because jobs are
/// deterministic.
fn recover_job(root: &Path, id: usize, spec: &JobSpec) -> Recovered {
    let dir = job_dir(root, id, spec);
    match std::fs::read_to_string(dir.join("spec.txt")) {
        Ok(text) if text == spec.to_text() => {}
        _ => return Recovered::Fresh,
    }
    if let Ok(text) = std::fs::read_to_string(dir.join("report.txt")) {
        if let Some(r) = parse_report_marker(id, spec, &text) {
            return Recovered::Terminal(Box::new(r));
        }
    }
    let Ok(state) = std::fs::read(dir.join("state.bin")) else { return Recovered::Fresh };
    let Ok(meta_text) = std::fs::read_to_string(dir.join("meta.txt")) else {
        return Recovered::Fresh;
    };
    let Some((digest, meta)) = parse_meta(&meta_text) else { return Recovered::Fresh };
    let Ok(snap) = Snapshot::from_stream_bytes(&state) else { return Recovered::Fresh };
    if snap.state_digest() != digest {
        return Recovered::Fresh;
    }
    let mut task = Task::fresh(id, spec.clone());
    task.state = Some(ParkState { base: state, delta: None });
    task.spent = meta.spent;
    task.preemptions = meta.preemptions;
    task.migrations = meta.migrations;
    task.wall_secs = meta.wall_secs;
    (task.wd_sig, task.wd_change_at) = meta.wd;
    Recovered::Parked(Box::new(task))
}

/// `key value...` lookup over the line-oriented checkpoint text formats.
fn kv<'a>(lines: &[&'a str], key: &str) -> Option<&'a str> {
    lines.iter().find_map(|l| l.strip_prefix(key)?.strip_prefix(' ').map(str::trim))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_meta(text: &str) -> Option<(u64, CkptMeta)> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"smappic-ckpt v1") {
        return None;
    }
    let digest = parse_u64(kv(&lines, "state_digest")?)?;
    let spent = parse_u64(kv(&lines, "spent")?)?;
    let preemptions = parse_u64(kv(&lines, "preemptions")?)?;
    let migrations = parse_u64(kv(&lines, "migrations")?)?;
    let wall_secs: f64 = kv(&lines, "wall_secs")?.parse().ok()?;
    let mut wd_parts = kv(&lines, "wd")?.split_whitespace();
    let sig = wd_parts.next()?;
    let wd_sig = if sig == "-" { None } else { Some(parse_u64(sig)?) };
    let wd_at = parse_u64(wd_parts.next()?)?;
    Some((digest, CkptMeta { spent, preemptions, migrations, wall_secs, wd: (wd_sig, wd_at) }))
}

fn parse_report_marker(job: usize, spec: &JobSpec, text: &str) -> Option<JobReport> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"smappic-report v1") {
        return None;
    }
    let exit_line = kv(&lines, "exit")?;
    let exit = if let Some(rest) = exit_line.strip_prefix("completed ") {
        JobExit::Completed { idle: rest.trim() == "true" }
    } else if let Some(rest) = exit_line.strip_prefix("livelocked ") {
        let mut it = rest.split_whitespace();
        JobExit::Livelocked {
            stalled_since: parse_u64(it.next()?)?,
            detected_at: parse_u64(it.next()?)?,
        }
    } else if let Some(rest) = exit_line.strip_prefix("panicked ") {
        JobExit::Panicked { message: rest.to_string() }
    } else if let Some(rest) = exit_line.strip_prefix("rejected ") {
        let mut it = rest.split_whitespace();
        match it.next()? {
            "queue_full" => JobExit::Rejected {
                reason: RejectReason::QueueFull { limit: parse_u64(it.next()?)? as usize },
            },
            "cycle_quota" => JobExit::Rejected {
                reason: RejectReason::CycleQuota {
                    tenant: it.next()?.to_string(),
                    needed: parse_u64(it.next()?)?,
                    remaining: parse_u64(it.next()?)?,
                },
            },
            _ => return None,
        }
    } else {
        return None;
    };
    let cycles = parse_u64(kv(&lines, "cycles")?)?;
    Some(JobReport {
        job,
        name: spec.name.clone(),
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        exit,
        cycles,
        deadline_missed: spec.deadline_cycles.is_some_and(|d| cycles > d),
        wall_secs: kv(&lines, "wall_secs")?.parse().ok()?,
        preemptions: parse_u64(kv(&lines, "preemptions")?)?,
        migrations: parse_u64(kv(&lines, "migrations")?)?,
        workers: Vec::new(),
        host_perf: HostPerf::default(),
        digest: parse_u64(kv(&lines, "digest")?)?,
        snapshot_bytes: parse_u64(kv(&lines, "snapshot_bytes")?)?,
        compressed_bytes: parse_u64(kv(&lines, "compressed_bytes")?)?,
        park_raw_bytes: 0,
        park_stored_bytes: 0,
        final_snapshot_z: None,
        trace_path: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn a_single_job_completes_and_digests_deterministically() {
        let spec = JobSpec::small("solo", WorkloadSpec::AmoHeavy { ops: 30, seed: 3 });
        let a = Scheduler::serial().run(std::slice::from_ref(&spec));
        let b = Scheduler::serial().run(std::slice::from_ref(&spec));
        assert_eq!(a.len(), 1);
        assert!(a[0].is_completed());
        assert!(matches!(a[0].exit, JobExit::Completed { idle: true }));
        assert_eq!(a[0].digest, b[0].digest);
        assert_eq!(a[0].cycles, b[0].cycles);
        assert_eq!(a[0].preemptions, 0);
    }

    #[test]
    fn preemption_re_queues_and_still_completes() {
        let mut spec = JobSpec::small("churn", WorkloadSpec::AmoHeavy { ops: 60, seed: 5 });
        spec.budget = 4_000_000;
        let cfg = SchedulerConfig {
            workers: 2,
            quantum: 2_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        };
        let reports = Scheduler::new(cfg).run(&[spec.clone()]);
        assert!(reports[0].is_completed());
        assert!(reports[0].preemptions > 0, "Always must preempt a long job");
        assert!(reports[0].migrations > 0, "force_migrate must move it across workers");
        let baseline = Scheduler::serial().run(&[spec]);
        assert_eq!(reports[0].digest, baseline[0].digest);
        assert_eq!(reports[0].cycles, baseline[0].cycles);
    }

    #[test]
    fn parked_tasks_store_compressed_state() {
        let mut spec = JobSpec::small("parked", WorkloadSpec::AmoHeavy { ops: 60, seed: 7 });
        spec.budget = 4_000_000;
        let cfg = SchedulerConfig {
            workers: 2,
            quantum: 2_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        };
        let reports = Scheduler::new(cfg).run(&[spec]);
        let r = &reports[0];
        assert!(r.is_completed());
        assert!(r.preemptions > 0);
        assert!(r.park_raw_bytes > 0, "parks must account their raw baseline");
        assert!(
            r.park_stored_bytes < r.park_raw_bytes,
            "parked images (compressed stream + deltas, {} B) must undercut \
             the raw wire baseline ({} B)",
            r.park_stored_bytes,
            r.park_raw_bytes
        );
    }

    #[test]
    fn admission_bounds_the_queue_and_quotas_reserve_cycles() {
        let mk = |name: &str, tenant: &str| {
            let mut s = JobSpec::small(name, WorkloadSpec::AmoHeavy { ops: 10, seed: 1 });
            s.tenant = tenant.into();
            s.budget = 1_000_000;
            s
        };
        let specs = vec![mk("a0", "a"), mk("a1", "a"), mk("b0", "b"), mk("b1", "b")];
        let cfg = SchedulerConfig {
            workers: 2,
            max_pending: 3,
            quotas: vec![TenantQuota {
                tenant: "a".into(),
                max_in_flight: 1,
                cycle_budget: Some(1_500_000),
            }],
            ..SchedulerConfig::default()
        };
        let fleet = Scheduler::new(cfg).run_fleet(&specs);
        // a1 falls to tenant a's cycle quota (1.5M budget, 1M reserved by
        // a0); b1 falls off the bounded queue (a0, b0, b1 would be the
        // 3 admitted... a1 is quota-rejected first so b1 is admitted).
        assert!(fleet.reports[0].is_completed());
        assert!(matches!(
            &fleet.reports[1].exit,
            JobExit::Rejected { reason: RejectReason::CycleQuota { tenant, needed, remaining } }
                if tenant == "a" && *needed == 1_000_000 && *remaining == 500_000
        ));
        assert!(fleet.reports[2].is_completed());
        assert!(fleet.reports[3].is_completed());
        assert_eq!(fleet.metrics.counter("sched.admitted"), 3);
        assert_eq!(fleet.metrics.counter("sched.rejected.cycle_quota"), 1);
        assert_eq!(fleet.metrics.counter("sched.tenant.a.peak_in_flight"), 1);
        assert!(fleet.metrics.counter("sched.tenant.a.spent_cycles") <= 1_500_000);
    }

    #[test]
    fn aging_boosts_effective_priority_monotonically() {
        assert_eq!(effective_priority(0, 0, 0, 64), 0);
        assert_eq!(effective_priority(0, 0, 64, 64), 1);
        assert_eq!(effective_priority(0, 0, 64 * 99, 64), JobSpec::MAX_PRIORITY);
        assert_eq!(effective_priority(0, 0, u64::MAX, 0), 0, "aging 0 disables the boost");
        assert_eq!(effective_priority(6, 100, 164, 64), 7);
    }

    #[test]
    fn elastic_pool_completes_the_fleet_with_identical_digests() {
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| {
                let mut s = JobSpec::small(
                    &format!("e{i}"),
                    WorkloadSpec::AmoHeavy { ops: 40, seed: 10 + i },
                );
                s.budget = 3_000_000;
                s
            })
            .collect();
        let cfg = SchedulerConfig {
            workers: 1, // ignored: elastic policy wins
            quantum: 5_000,
            preempt: PreemptMode::Always,
            elastic: Some(ElasticPolicy { eval_ms: 0, ..ElasticPolicy::range(1, 3) }),
            ..SchedulerConfig::default()
        };
        let fleet = Scheduler::new(cfg).run_fleet(&specs);
        let baseline = Scheduler::serial().run(&specs);
        for (e, b) in fleet.reports.iter().zip(&baseline) {
            assert!(e.is_completed());
            assert_eq!(e.digest, b.digest, "elastic resizing must not leak into results");
            assert_eq!(e.cycles, b.cycles);
        }
        assert!(fleet.metrics.counter("sched.elastic.grow") > 0, "demand of 4 must grow the pool");
    }
}
