//! # smappic-service — the multi-tenant prototyping service
//!
//! SMAPPIC's pitch is architecture prototyping *as a cloud service*: many
//! tenants submit prototype jobs, a resource manager rents out platforms
//! on demand (cloudFPGA's cFRM is the shape), and throughput is measured
//! in jobs/hour, not in the latency of any one platform. This crate is
//! that service layer over the simulated platform:
//!
//! - [`JobSpec`] — a declarative job description: topology (star /
//!   Ethernet rack / hybrid via [`smappic_core::Config`]), workload,
//!   optional deterministic fault plan, stepper choice, a cycle budget,
//!   and the multi-tenancy fields (tenant, priority, optional deadline).
//!   Round-trips losslessly through a line-oriented text format
//!   ([`JobSpec::to_text`] / [`JobSpec::from_text`]) so any job can be
//!   replayed from its report.
//! - [`Scheduler`] — a multi-tenant resource manager over a pool of OS
//!   worker threads. Fleets pass *admission control* (a bounded pending
//!   queue plus per-tenant [`TenantQuota`]s; refused jobs get typed
//!   [`JobExit::Rejected`] reports), then dispatch from one central
//!   ready queue ordered by effective priority (base priority + aging)
//!   and deadline. Jobs are preempted cooperatively at epoch-grain
//!   boundaries ([`smappic_core::Platform::run_preemptible`]) — under
//!   [`PreemptMode::WhenOutranked`], as soon as a higher-priority task
//!   waits — parked as a compressed stream image plus a delta of the
//!   dirty sections, and may resume on a *different* worker —
//!   bit-identically, proven by `tests/service_equivalence.rs` at the
//!   repo root. An [`ElasticPolicy`] grows and shrinks the active pool
//!   against a live cost model. A per-job [`smappic_core::Watchdog`]
//!   converts livelocks into structured exits, and a panicking job (see
//!   [`PoisonEngine`]) is isolated into its own error report while
//!   sibling jobs complete untouched. With a [`CheckpointPolicy`], jobs
//!   spill their state to disk every N quanta and a killed fleet resumes
//!   from those directories via [`Scheduler::resume`].
//! - [`JobReport`] — the per-job artifact: exit status, cycles, cyc/s,
//!   [`smappic_core::HostPerf`] accumulated across migrations, an
//!   architectural digest (identical for identical specs regardless of
//!   worker count or steal order), snapshot size accounting (raw vs
//!   compressed), and optionally the final image and a Perfetto trace
//!   path. [`Scheduler::run_fleet`] additionally returns a
//!   [`FleetResult`] carrying the scheduler's own metrics registry
//!   (queue depth, per-tenant wait/run histograms, admission counters).
//!
//! ## Determinism contract
//!
//! A job's architectural results depend only on its [`JobSpec`] — never
//! on the worker pool size, preemption pattern, or steal order. The
//! scheduler guarantees this by (1) cutting jobs only at multiples of
//! [`smappic_core::Platform::preemption_grain`], so the epoch schedule of
//! a sliced run matches an unsliced one byte-for-byte, and (2) parking
//! jobs as full snapshots, which PR 5 proved restore bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod scheduler;
mod spec;
mod workload;

pub use report::{JobExit, JobReport, RejectReason};
pub use scheduler::{
    digest_platform, CheckpointPolicy, ElasticPolicy, FleetResult, PreemptMode, Scheduler,
    SchedulerConfig, TenantQuota,
};
pub use spec::{FaultProfileSpec, JobFaults, JobSpec, StepperSpec, TopoSpec, WorkloadSpec};
pub use workload::PoisonEngine;
