//! Scheduler property suite (hand-rolled property loops over `SimRng`,
//! the workspace's in-tree proptest idiom):
//!
//! 1. every submitted job reaches a terminal state exactly once — no
//!    lost and no duplicated jobs, however hard the pool preempts and
//!    steals;
//! 2. `JobSpec` text round-trips losslessly for randomized specs;
//! 3. reports are independent of worker count and steal order: the same
//!    fleet produces the same digests/cycles/exits on 1, 2, and 3
//!    workers with maximal preemption churn.

use smappic_core::WatchdogConfig;
use smappic_service::{
    FaultProfileSpec, JobExit, JobFaults, JobSpec, PreemptMode, Scheduler, SchedulerConfig,
    StepperSpec, TopoSpec, WorkloadSpec,
};
use smappic_sim::SimRng;

/// A randomized — but always valid — job spec.
fn random_spec(rng: &mut SimRng, i: usize) -> JobSpec {
    let topology = match rng.gen_range(3) {
        0 => TopoSpec::Star,
        1 => TopoSpec::Ethernet { group_size: rng.gen_range(3) as usize + 1 },
        _ => TopoSpec::Hybrid { group_size: rng.gen_range(2) as usize + 1 },
    };
    let fpgas = match topology {
        TopoSpec::Star => rng.gen_range(2) as usize + 1,
        _ => rng.gen_range(4) as usize + 1,
    };
    let nodes = 1;
    let tiles = rng.gen_range(2) as usize + 1;
    let stepper = match rng.gen_range(3) {
        0 => StepperSpec::Reference,
        1 => StepperSpec::Serial,
        _ => StepperSpec::Parallel,
    };
    let workload = match rng.gen_range(3) {
        0 => WorkloadSpec::AmoHeavy { ops: rng.gen_range(30) + 5, seed: rng.next_u64() },
        1 => WorkloadSpec::Bursty { ops: rng.gen_range(12) + 3, seed: rng.next_u64() },
        _ => WorkloadSpec::Sort {
            keys: rng.gen_range(48) as usize + 16,
            threads: (rng.gen_range(2) as usize + 1).min(fpgas * nodes * tiles),
        },
    };
    let faults = if rng.chance(0.4) {
        Some(JobFaults {
            profile: if rng.chance(0.5) {
                FaultProfileSpec::Quiet
            } else {
                FaultProfileSpec::Light
            },
            seed: rng.next_u64(),
            links_only: rng.chance(0.5),
        })
    } else {
        None
    };
    let budget = 1_500_000 + rng.gen_range(500_000);
    JobSpec {
        name: format!("prop-{i}"),
        fpgas,
        nodes,
        tiles,
        topology,
        stepper,
        workload,
        faults,
        budget,
        trace: false,
        tenant: format!("tenant-{}", rng.gen_range(3)),
        priority: rng.gen_range(JobSpec::MAX_PRIORITY as u64 + 1) as u8,
        deadline_cycles: rng.chance(0.3).then_some(budget / 2 + rng.gen_range(budget)),
    }
}

#[test]
fn jobspec_text_round_trips_for_random_specs() {
    let mut rng = SimRng::new(0x0b_57_ac_1e);
    for i in 0..300 {
        let mut spec = random_spec(&mut rng, i);
        spec.trace = rng.chance(0.3);
        if rng.chance(0.2) {
            spec.faults = Some(JobFaults {
                profile: FaultProfileSpec::Blackhole { at: rng.next_u64() >> 32 },
                seed: rng.next_u64(),
                links_only: false,
            });
        }
        let text = spec.to_text();
        let parsed = JobSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("iteration {i}: {e}\nspec text:\n{text}"));
        assert_eq!(parsed, spec, "iteration {i} round-trip mismatch");
        assert_eq!(parsed.to_text(), text, "iteration {i} re-serialization mismatch");
    }
}

#[test]
fn every_job_reaches_a_terminal_state_exactly_once() {
    let mut rng = SimRng::new(0x7e_2a_11);
    for round in 0..4 {
        let n = rng.gen_range(4) as usize + 3;
        let mut specs: Vec<JobSpec> = (0..n).map(|i| random_spec(&mut rng, i)).collect();
        // One poison job per fleet: a panicking tenant must not cost any
        // other tenant its report.
        let poison_at = rng.gen_range(n as u64) as usize;
        specs[poison_at] = JobSpec {
            stepper: StepperSpec::Serial,
            workload: WorkloadSpec::Poison { after: 3_000 + rng.gen_range(4_000) },
            faults: None,
            ..specs[poison_at].clone()
        };
        let cfg = SchedulerConfig {
            workers: rng.gen_range(3) as usize + 1,
            quantum: 3_000,
            preempt: PreemptMode::Always,
            force_migrate: rng.chance(0.5),
            ..SchedulerConfig::default()
        };
        let force_migrate = cfg.force_migrate;
        let workers = cfg.workers;
        let reports = Scheduler::new(cfg).run(&specs);

        assert_eq!(reports.len(), n, "round {round}: one report per job, none lost");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.job, i, "round {round}: no duplicated/missorted jobs");
            assert_eq!(r.name, specs[i].name);
            if i == poison_at {
                let JobExit::Panicked { message } = &r.exit else {
                    panic!("round {round}: poison job must report Panicked, got {:?}", r.exit);
                };
                assert!(message.contains("poison engine detonated"), "got {message:?}");
            } else {
                assert!(
                    matches!(r.exit, JobExit::Completed { .. }),
                    "round {round}: job {i} must complete, got {:?}",
                    r.exit
                );
                assert_ne!(r.digest, 0, "round {round}: completed jobs carry a digest");
            }
            // With one worker the force-migrate ban is void (nobody else
            // could ever resume the job), so the guarantee needs peers.
            if force_migrate && workers > 1 && r.preemptions > 0 {
                assert_eq!(
                    r.preemptions, r.migrations,
                    "round {round}: with force_migrate every preemption is a migration"
                );
            }
        }
    }
}

#[test]
fn reports_are_independent_of_worker_count_and_steal_order() {
    let mut rng = SimRng::new(0xd1_6e_57);
    let specs: Vec<JobSpec> = (0..4).map(|i| random_spec(&mut rng, i)).collect();
    let outcomes: Vec<Vec<(u64, u64, bool)>> = [
        SchedulerConfig { workers: 1, preempt: PreemptMode::Never, ..SchedulerConfig::default() },
        SchedulerConfig {
            workers: 2,
            quantum: 4_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            ..SchedulerConfig::default()
        },
        SchedulerConfig {
            workers: 3,
            quantum: 9_000,
            preempt: PreemptMode::Always,
            ..SchedulerConfig::default()
        },
        // A contended pool preempts data-dependently (queue occupancy),
        // yet must still land on the same architectural outcome.
        SchedulerConfig {
            workers: 2,
            quantum: 6_000,
            preempt: PreemptMode::WhenContended,
            ..SchedulerConfig::default()
        },
    ]
    .into_iter()
    .map(|cfg| {
        Scheduler::new(cfg)
            .run(&specs)
            .iter()
            .map(|r| (r.digest, r.cycles, r.is_completed()))
            .collect()
    })
    .collect();
    for (i, other) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            &outcomes[0], other,
            "pool variant {i} changed architectural outcomes — scheduling leaked into results"
        );
    }
}

#[test]
fn livelock_detection_is_schedule_invariant() {
    // A blackholed link freezes cross-FPGA progress; the per-job
    // watchdog must report the livelock at the same simulated cycle
    // whether the job ran straight or was preempted/migrated throughout.
    let spec = JobSpec {
        name: "stuck".into(),
        fpgas: 2,
        nodes: 1,
        tiles: 2,
        topology: TopoSpec::Star,
        stepper: StepperSpec::Serial,
        workload: WorkloadSpec::AmoHeavy { ops: 4_000, seed: 9 },
        faults: Some(JobFaults {
            profile: FaultProfileSpec::Blackhole { at: 2_000 },
            seed: 0,
            links_only: true,
        }),
        budget: 5_000_000,
        trace: false,
        tenant: JobSpec::DEFAULT_TENANT.into(),
        priority: JobSpec::DEFAULT_PRIORITY,
        deadline_cycles: None,
    };
    let wd = WatchdogConfig { stall_limit: 30_000, check_interval: 1_000 };
    let straight = Scheduler::new(SchedulerConfig {
        workers: 1,
        preempt: PreemptMode::Never,
        watchdog: wd.clone(),
        quantum: 5_000,
        ..SchedulerConfig::default()
    })
    .run(std::slice::from_ref(&spec));
    let churned = Scheduler::new(SchedulerConfig {
        workers: 2,
        preempt: PreemptMode::Always,
        force_migrate: true,
        watchdog: wd,
        quantum: 5_000,
        ..SchedulerConfig::default()
    })
    .run(std::slice::from_ref(&spec));
    let (s, c) = (&straight[0], &churned[0]);
    let JobExit::Livelocked { stalled_since: s_since, detected_at: s_at } = s.exit else {
        panic!("straight run must livelock, got {:?}", s.exit);
    };
    let JobExit::Livelocked { stalled_since: c_since, detected_at: c_at } = c.exit else {
        panic!("churned run must livelock, got {:?}", c.exit);
    };
    assert!(c.migrations > 0, "the churned run must actually migrate");
    assert_eq!((s_since, s_at), (c_since, c_at), "watchdog state must survive migration");
    assert_eq!(s.digest, c.digest, "the stuck state itself must be identical");
}
