//! Crash-recoverable checkpoints: a fleet that dies mid-run resumes from
//! its per-job checkpoint directories and finishes with digests
//! identical to an uninterrupted run.
//!
//! The "crash" is the scheduler's hidden abandon knob: after N disk
//! checkpoints have been written fleet-wide, every worker stops dead —
//! no parks, no reports — which is exactly what SIGKILL leaves behind.
//! (The CI checkpoint job additionally kills a real `servebench` process
//! and recovers it across processes.)

use std::path::PathBuf;

use smappic_service::{
    CheckpointPolicy, JobSpec, PreemptMode, Scheduler, SchedulerConfig, WorkloadSpec,
};

fn fleet() -> Vec<JobSpec> {
    (0..4)
        .map(|i| {
            let mut s = JobSpec::small(
                &format!("ckpt{i}"),
                WorkloadSpec::AmoHeavy { ops: 60, seed: 0xC0 + i },
            );
            s.budget = 4_000_000;
            s
        })
        .collect()
}

fn ckpt_config(dir: PathBuf) -> SchedulerConfig {
    SchedulerConfig {
        workers: 2,
        quantum: 2_000,
        preempt: PreemptMode::Always,
        checkpoint: Some(CheckpointPolicy { every_quanta: 1, dir }),
        ..SchedulerConfig::default()
    }
}

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smappic-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_crashed_fleet_resumes_from_disk_with_identical_digests() {
    let specs = fleet();
    let baseline = Scheduler::serial().run(&specs);
    assert!(baseline.iter().all(|r| r.is_completed()));

    let dir = scratch("crash");
    let crashed = Scheduler::new(SchedulerConfig {
        abandon_after_checkpoints: Some(3),
        ..ckpt_config(dir.clone())
    })
    .run(&specs);
    assert!(
        crashed.len() < specs.len(),
        "the simulated crash must leave jobs unreported ({} of {} reported)",
        crashed.len(),
        specs.len()
    );

    let resumed = Scheduler::new(ckpt_config(dir.clone())).resume(&specs);
    assert_eq!(resumed.len(), specs.len(), "every job must report after recovery");
    for (r, b) in resumed.iter().zip(&baseline) {
        assert_eq!(r.job, b.job);
        assert!(r.is_completed(), "job {} must complete after recovery: {:?}", r.job, r.exit);
        assert_eq!(r.digest, b.digest, "job {} digest must match the uninterrupted run", r.job);
        assert_eq!(r.cycles, b.cycles, "job {} cycle count must match", r.job);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn terminal_markers_short_circuit_a_second_resume() {
    let specs = fleet();
    let dir = scratch("markers");
    let first = Scheduler::new(ckpt_config(dir.clone())).run(&specs);
    assert!(first.iter().all(|r| r.is_completed()));

    // Every job left a report.txt marker; resuming must return all of
    // them from disk without executing a single segment.
    let resumed = Scheduler::new(ckpt_config(dir.clone())).resume(&specs);
    assert_eq!(resumed.len(), specs.len());
    for (r, f) in resumed.iter().zip(&first) {
        assert_eq!(r.digest, f.digest);
        assert_eq!(r.cycles, f.cycles);
        assert_eq!(r.exit, f.exit);
        assert!(r.workers.is_empty(), "a marker-recovered report never touched a worker");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoints_fall_back_to_a_fresh_deterministic_run() {
    let specs = fleet();
    let baseline = Scheduler::serial().run(&specs);

    let dir = scratch("torn");
    let _ = Scheduler::new(SchedulerConfig {
        abandon_after_checkpoints: Some(4),
        ..ckpt_config(dir.clone())
    })
    .run(&specs);

    // Tear every spilled image: truncate state.bin to half its size. The
    // stream trailer (count + state digest) never arrives, so recovery
    // must reject each of them and restart the jobs from cycle 0.
    let mut torn = 0;
    for entry in std::fs::read_dir(&dir).expect("checkpoint root exists") {
        let state = entry.expect("dir entry").path().join("state.bin");
        if let Ok(bytes) = std::fs::read(&state) {
            std::fs::write(&state, &bytes[..bytes.len() / 2]).expect("truncate");
            torn += 1;
        }
    }
    assert!(torn > 0, "the crashed run must have spilled at least one image");

    let resumed = Scheduler::new(ckpt_config(dir.clone())).resume(&specs);
    assert_eq!(resumed.len(), specs.len());
    for (r, b) in resumed.iter().zip(&baseline) {
        assert!(r.is_completed());
        assert_eq!(r.digest, b.digest, "job {} must rerun to the same digest", r.job);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
