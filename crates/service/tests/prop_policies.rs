//! Property suite for the multi-tenant policies (hand-rolled property
//! loops over `SimRng`, the workspace's in-tree proptest idiom):
//!
//! 1. quotas are never exceeded under random fleets — per-tenant
//!    in-flight peaks respect `max_in_flight`, executed cycles respect
//!    `cycle_budget`, and admission never loses a job;
//! 2. no starvation — under sustained high-priority churn with aging on,
//!    every admitted low-priority job still reaches a terminal state and
//!    actually executes;
//! 3. rejection determinism — the same fleet + config rejects the same
//!    jobs with the same typed reasons regardless of worker count or
//!    elastic resizing;
//! 4. digest identity across 1/2/4 workers with elastic resizing on —
//!    the core determinism contract survives the resource manager.

use smappic_service::{
    ElasticPolicy, JobExit, JobSpec, PreemptMode, RejectReason, Scheduler, SchedulerConfig,
    TenantQuota, WorkloadSpec,
};
use smappic_sim::SimRng;

/// A small randomized job for a named tenant.
fn tenant_job(rng: &mut SimRng, i: usize, tenant: &str) -> JobSpec {
    let mut spec = JobSpec::small(
        &format!("pol-{i}"),
        WorkloadSpec::AmoHeavy { ops: rng.gen_range(25) + 5, seed: rng.next_u64() },
    );
    spec.tenant = tenant.to_string();
    spec.priority = rng.gen_range(JobSpec::MAX_PRIORITY as u64 + 1) as u8;
    spec.budget = 1_000_000 + rng.gen_range(1_000_000);
    if rng.chance(0.25) {
        spec.deadline_cycles = Some(spec.budget / 2 + rng.gen_range(spec.budget));
    }
    spec
}

#[test]
fn quotas_are_never_exceeded_under_random_fleets() {
    let mut rng = SimRng::new(0x9_07_a5);
    for round in 0..4 {
        let tenants = ["alpha", "beta", "gamma"];
        let n = rng.gen_range(6) as usize + 6;
        let specs: Vec<JobSpec> = (0..n)
            .map(|i| {
                let t = tenants[rng.gen_range(3) as usize];
                tenant_job(&mut rng, i, t)
            })
            .collect();
        let quota_budget = 2_000_000 + rng.gen_range(4_000_000);
        let max_in_flight = rng.gen_range(2) as usize + 1;
        let max_pending = rng.gen_range(n as u64) as usize + 2;
        let cfg = SchedulerConfig {
            workers: rng.gen_range(3) as usize + 2,
            quantum: 4_000,
            preempt: PreemptMode::Always,
            max_pending,
            quotas: vec![TenantQuota {
                tenant: "alpha".into(),
                max_in_flight,
                cycle_budget: Some(quota_budget),
            }],
            ..SchedulerConfig::default()
        };
        let fleet = Scheduler::new(cfg).run_fleet(&specs);

        // Zero lost jobs: exactly one report per spec, in order.
        assert_eq!(fleet.reports.len(), n, "round {round}: no lost jobs");
        for (i, r) in fleet.reports.iter().enumerate() {
            assert_eq!(r.job, i, "round {round}: reports in submission order");
        }
        // The bounded queue held.
        let admitted = fleet.reports.iter().filter(|r| !r.is_rejected()).count();
        assert!(admitted <= max_pending, "round {round}: admitted {admitted} > {max_pending}");
        assert_eq!(fleet.metrics.counter("sched.admitted"), admitted as u64);
        // Alpha's cycle quota held: executed cycles across its admitted
        // jobs never exceed the budget (full-budget reservation makes
        // this a hard invariant, not a race).
        let alpha_cycles: u64 = fleet
            .reports
            .iter()
            .filter(|r| r.tenant == "alpha" && !r.is_rejected())
            .map(|r| r.cycles)
            .sum();
        assert!(
            alpha_cycles <= quota_budget,
            "round {round}: alpha executed {alpha_cycles} of a {quota_budget} quota"
        );
        assert!(fleet.metrics.counter("sched.tenant.alpha.reserved_cycles") <= quota_budget);
        assert!(fleet.metrics.counter("sched.tenant.alpha.spent_cycles") <= quota_budget);
        // Alpha's in-flight cap held at every dispatch.
        let peak = fleet.metrics.counter("sched.tenant.alpha.peak_in_flight");
        assert!(
            peak <= max_in_flight as u64,
            "round {round}: alpha peak in-flight {peak} > cap {max_in_flight}"
        );
        // Every rejection is structured and consistent with the config.
        for r in &fleet.reports {
            if let JobExit::Rejected { reason } = &r.exit {
                match reason {
                    RejectReason::QueueFull { limit } => assert_eq!(*limit, max_pending),
                    RejectReason::CycleQuota { tenant, needed, remaining } => {
                        assert_eq!(tenant, "alpha", "only alpha carries a cycle quota");
                        assert!(needed > remaining, "round {round}: rejection must be justified");
                    }
                }
            }
        }
    }
}

#[test]
fn no_starvation_under_sustained_high_priority_churn() {
    // A wall of priority-7 jobs plus a few priority-0 jobs. Under
    // WhenOutranked with aging on, low priority must mean *later*, never
    // *never*: every admitted job reaches a terminal state and actually
    // executes its cycles.
    let mut rng = SimRng::new(0x57_a2_4e);
    let mut specs = Vec::new();
    for i in 0..10 {
        let mut s = JobSpec::small(
            &format!("hi-{i}"),
            WorkloadSpec::AmoHeavy { ops: rng.gen_range(20) + 10, seed: rng.next_u64() },
        );
        s.tenant = "pushy".into();
        s.priority = JobSpec::MAX_PRIORITY;
        s.budget = 2_000_000;
        specs.push(s);
    }
    for i in 0..3 {
        let mut s =
            JobSpec::small(&format!("lo-{i}"), WorkloadSpec::AmoHeavy { ops: 15, seed: 0x10 + i });
        s.tenant = "patient".into();
        s.priority = 0;
        s.budget = 2_000_000;
        specs.push(s);
    }
    let cfg = SchedulerConfig {
        workers: 2,
        quantum: 3_000,
        preempt: PreemptMode::WhenOutranked,
        aging_quanta: 8,
        ..SchedulerConfig::default()
    };
    let fleet = Scheduler::new(cfg).run_fleet(&specs);
    assert_eq!(fleet.reports.len(), specs.len());
    for r in &fleet.reports {
        assert!(r.is_completed(), "{} must reach a terminal state, got {:?}", r.name, r.exit);
        assert!(r.cycles > 0, "{} must actually execute", r.name);
    }
    let lo_wait = fleet.metrics.histogram("sched.tenant.patient.wait_us");
    assert!(lo_wait.is_some_and(|h| h.count() >= 3), "low-priority jobs were dispatched");
}

#[test]
fn priority_preemption_parks_a_running_lower_priority_job() {
    // The tenant-gate scenario: two max-priority jobs share a tenant
    // capped at one in flight, so the second one *waits* while a
    // priority-0 filler runs on the free worker. Under WhenOutranked the
    // filler must park (via the ordinary snapshot path) while outranked.
    let mk = |name: &str, tenant: &str, priority: u8, ops: u64| {
        let mut s = JobSpec::small(name, WorkloadSpec::AmoHeavy { ops, seed: 0xCAFE });
        s.tenant = tenant.into();
        s.priority = priority;
        s.budget = 6_000_000;
        s
    };
    let specs = vec![
        mk("gate-0", "gate", JobSpec::MAX_PRIORITY, 60),
        mk("gate-1", "gate", JobSpec::MAX_PRIORITY, 60),
        mk("filler", "free", 0, 60),
    ];
    let cfg = SchedulerConfig {
        workers: 2,
        quantum: 2_000,
        preempt: PreemptMode::WhenOutranked,
        aging_quanta: 0, // keep effective == base so the scenario is pure
        quotas: vec![TenantQuota::in_flight("gate", 1)],
        ..SchedulerConfig::default()
    };
    let fleet = Scheduler::new(cfg).run_fleet(&specs);
    for r in &fleet.reports {
        assert!(r.is_completed(), "{} must complete, got {:?}", r.name, r.exit);
    }
    let filler = &fleet.reports[2];
    assert!(
        filler.preemptions > 0,
        "the low-priority filler must be parked while a max-priority job waits"
    );
    // The high-priority jobs were never outranked, so they never parked.
    assert_eq!(fleet.reports[0].preemptions, 0);
    assert_eq!(fleet.reports[1].preemptions, 0);
    // And determinism survives the preemption churn.
    let baseline = Scheduler::serial().run(&specs);
    for (r, b) in fleet.reports.iter().zip(&baseline) {
        assert_eq!(r.digest, b.digest, "{}: preemption leaked into results", r.name);
    }
}

#[test]
fn rejection_is_deterministic_across_pool_shapes() {
    let mut rng = SimRng::new(0xde_7e_21);
    let specs: Vec<JobSpec> = (0..12)
        .map(|i| tenant_job(&mut rng, i, ["quotad", "free"][(i % 2 != 0) as usize]))
        .collect();
    let policy = |workers: usize, elastic: Option<ElasticPolicy>| SchedulerConfig {
        workers,
        quantum: 4_000,
        preempt: PreemptMode::WhenContended,
        max_pending: 7,
        quotas: vec![TenantQuota {
            tenant: "quotad".into(),
            max_in_flight: 1,
            cycle_budget: Some(5_000_000),
        }],
        elastic,
        ..SchedulerConfig::default()
    };
    let outcomes: Vec<Vec<Option<RejectReason>>> = [
        policy(1, None),
        policy(2, None),
        policy(4, Some(ElasticPolicy { eval_ms: 0, ..ElasticPolicy::range(1, 4) })),
    ]
    .into_iter()
    .map(|cfg| {
        Scheduler::new(cfg)
            .run(&specs)
            .into_iter()
            .map(|r| match r.exit {
                JobExit::Rejected { reason } => Some(reason),
                _ => None,
            })
            .collect()
    })
    .collect();
    assert!(outcomes[0].iter().any(Option::is_some), "the scenario must actually reject something");
    assert_eq!(outcomes[0], outcomes[1], "worker count changed the rejected set");
    assert_eq!(outcomes[0], outcomes[2], "elastic resizing changed the rejected set");
}

#[test]
fn digests_are_identical_across_1_2_4_workers_with_elastic_resizing() {
    let mut rng = SimRng::new(0xe1_a5_7c);
    let specs: Vec<JobSpec> =
        (0..5).map(|i| tenant_job(&mut rng, i, ["a", "b"][(i % 2 != 0) as usize])).collect();
    let outcomes: Vec<Vec<(u64, u64, bool)>> = [
        SchedulerConfig { workers: 1, preempt: PreemptMode::Never, ..SchedulerConfig::default() },
        SchedulerConfig {
            workers: 2,
            quantum: 4_000,
            preempt: PreemptMode::Always,
            force_migrate: true,
            quotas: vec![TenantQuota::in_flight("a", 1)],
            ..SchedulerConfig::default()
        },
        SchedulerConfig {
            workers: 4,
            quantum: 6_000,
            preempt: PreemptMode::WhenOutranked,
            aging_quanta: 4,
            elastic: Some(ElasticPolicy { eval_ms: 0, ..ElasticPolicy::range(1, 4) }),
            ..SchedulerConfig::default()
        },
    ]
    .into_iter()
    .map(|cfg| {
        Scheduler::new(cfg)
            .run(&specs)
            .iter()
            .map(|r| (r.digest, r.cycles, r.is_completed()))
            .collect()
    })
    .collect();
    for (i, other) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            &outcomes[0], other,
            "pool variant {i} changed architectural outcomes — the resource manager \
             leaked into results"
        );
    }
}

#[test]
fn saturation_gate_oversubscribed_fleet_bounded_queue_zero_lost_jobs() {
    // The CI saturation gate: submit far more jobs than the queue bound
    // admits. Every spec must come back exactly once — admitted jobs
    // complete, the surplus is rejected with a structured reason — and
    // the recorded queue depth never exceeds the bound.
    let mut rng = SimRng::new(0x5a_70);
    let specs: Vec<JobSpec> = (0..40)
        .map(|i| {
            let mut s = tenant_job(&mut rng, i, ["t0", "t1", "t2"][i % 3]);
            s.workload = WorkloadSpec::AmoHeavy { ops: 8, seed: i as u64 };
            s
        })
        .collect();
    let bound = 10;
    let cfg = SchedulerConfig {
        workers: 3,
        quantum: 5_000,
        preempt: PreemptMode::WhenOutranked,
        max_pending: bound,
        ..SchedulerConfig::default()
    };
    let fleet = Scheduler::new(cfg).run_fleet(&specs);
    assert_eq!(fleet.reports.len(), specs.len(), "zero lost jobs");
    let mut completed = 0;
    let mut rejected = 0;
    for (i, r) in fleet.reports.iter().enumerate() {
        assert_eq!(r.job, i);
        match &r.exit {
            JobExit::Completed { .. } => completed += 1,
            JobExit::Rejected { reason: RejectReason::QueueFull { limit } } => {
                assert_eq!(*limit, bound);
                rejected += 1;
            }
            other => panic!("job {i}: unexpected exit {other:?}"),
        }
    }
    assert_eq!(completed, bound, "exactly the queue bound runs");
    assert_eq!(rejected, specs.len() - bound, "the surplus is rejected, not dropped");
    assert!(fleet.metrics.counter("sched.queue.peak_depth") <= bound as u64);
    assert_eq!(fleet.metrics.counter("sched.rejected.queue_full"), rejected as u64);
}
