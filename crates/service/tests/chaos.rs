//! Service chaos suite: a job that kills its worker mid-run (a panic
//! deep inside the platform's engine tick path) must be isolated into a
//! structured per-job error report while every sibling job completes
//! with results identical to an undisturbed fleet. Same for a job that
//! livelocks on an unrecoverable fault: the per-job Watchdog converts it
//! into a structured exit instead of hanging the pool.

use smappic_core::WatchdogConfig;
use smappic_service::{
    FaultProfileSpec, JobExit, JobFaults, JobSpec, PreemptMode, Scheduler, SchedulerConfig,
    StepperSpec, TopoSpec, WorkloadSpec,
};

fn good_job(i: usize) -> JobSpec {
    JobSpec::small(
        &format!("tenant-{i}"),
        WorkloadSpec::AmoHeavy { ops: 35 + 5 * i as u64, seed: 0xC0FFEE + i as u64 },
    )
}

#[test]
fn a_panicking_job_is_isolated_and_siblings_are_untouched() {
    let mut fleet: Vec<JobSpec> = (0..4).map(good_job).collect();
    // Detonate mid-run, after the scheduler has had a chance to preempt
    // and migrate the job at least once (the fuse spans several quanta).
    let mut saboteur = JobSpec::small("saboteur", WorkloadSpec::Poison { after: 9_000 });
    saboteur.budget = 1_000_000;
    fleet.insert(2, saboteur);
    let cfg = SchedulerConfig {
        workers: 2,
        quantum: 3_000,
        preempt: PreemptMode::Always,
        ..SchedulerConfig::default()
    };
    let reports = Scheduler::new(cfg).run(&fleet);
    assert_eq!(reports.len(), fleet.len(), "every job reports, even the saboteur");

    let saboteur = &reports[2];
    let JobExit::Panicked { message } = &saboteur.exit else {
        panic!("the poison job must end Panicked, got {:?}", saboteur.exit);
    };
    assert!(
        message.contains("poison engine detonated after 9000 ticks"),
        "the report must carry the panic payload, got {message:?}"
    );
    assert!(
        saboteur.preemptions > 0,
        "the fuse outlives several quanta, so the saboteur must have been parked and resumed \
         before detonating (the panic unwound from a *resumed* platform)"
    );

    // Every sibling completed, with exactly the results of a fleet that
    // never contained the saboteur.
    let undisturbed = Scheduler::new(SchedulerConfig {
        workers: 1,
        preempt: PreemptMode::Never,
        ..SchedulerConfig::default()
    })
    .run(&(0..4).map(good_job).collect::<Vec<_>>());
    for (i, clean) in undisturbed.iter().enumerate() {
        let r = &reports[if i < 2 { i } else { i + 1 }];
        assert!(
            matches!(r.exit, JobExit::Completed { idle: true }),
            "sibling {i} must quiesce, got {:?}",
            r.exit
        );
        assert_eq!(r.digest, clean.digest, "sibling {i} was perturbed by the saboteur");
        assert_eq!(r.cycles, clean.cycles, "sibling {i} cycle count drifted");
    }
}

#[test]
fn a_livelocked_job_reports_structured_error_while_the_pool_drains() {
    let stuck = JobSpec {
        name: "stuck".into(),
        fpgas: 2,
        nodes: 1,
        tiles: 2,
        topology: TopoSpec::Star,
        stepper: StepperSpec::Serial,
        workload: WorkloadSpec::AmoHeavy { ops: 4_000, seed: 11 },
        faults: Some(JobFaults {
            profile: FaultProfileSpec::Blackhole { at: 2_000 },
            seed: 1,
            links_only: true,
        }),
        budget: 10_000_000,
        trace: false,
        tenant: JobSpec::DEFAULT_TENANT.into(),
        priority: JobSpec::DEFAULT_PRIORITY,
        deadline_cycles: None,
    };
    let fleet = vec![good_job(0), stuck, good_job(1)];
    let reports = Scheduler::new(SchedulerConfig {
        workers: 2,
        quantum: 4_000,
        watchdog: WatchdogConfig { stall_limit: 30_000, check_interval: 1_000 },
        preempt: PreemptMode::WhenContended,
        ..SchedulerConfig::default()
    })
    .run(&fleet);

    let JobExit::Livelocked { stalled_since, detected_at } = reports[1].exit else {
        panic!("the blackholed job must be Livelocked, got {:?}", reports[1].exit);
    };
    assert!(stalled_since >= 2_000, "progress froze only after the blackhole cut in");
    assert!(detected_at >= stalled_since + 30_000, "the stall limit gates detection");
    assert!(
        reports[1].cycles < 10_000_000,
        "the watchdog must fire long before the budget is burned"
    );
    for i in [0usize, 2] {
        assert!(
            matches!(reports[i].exit, JobExit::Completed { idle: true }),
            "sibling {i} must complete, got {:?}",
            reports[i].exit
        );
    }
}
